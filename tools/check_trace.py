#!/usr/bin/env python
"""Validate a Chrome/Perfetto ``trace.json`` produced by ``repro run --trace``.

Checks the structural contract the trace plane promises (see
``src/repro/core/trace.py`` and ARCHITECTURE.md "Observability"):

* the document is ``{"traceEvents": [...], "displayTimeUnit": "ms"}``;
* every complete (``"ph": "X"``) event carries a non-empty ``name``,
  integer ``pid``/``tid``, and non-negative ``ts``/``dur`` microsecond
  fields (re-anchored worker clocks must never produce negative
  timestamps after normalization);
* metadata (``"ph": "M"``) events precede all complete events, so the
  process/thread labels resolve before any slice references them;
* every span name the caller requires (``--require``) is present.

Importable (``load`` / ``validate``) for the test suite, and a CLI for
CI smoke jobs::

    python tools/check_trace.py /tmp/trace.json \
        --require pipeline,stage:k3-pagerank

Exit codes: 0 valid, 1 contract violation, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Sequence


class TraceContractError(ValueError):
    """The trace document violates the exporter's structural contract."""


def load(path) -> Dict[str, object]:
    """Read and JSON-parse a trace file (no validation)."""
    return json.loads(Path(path).read_text())


def validate(
    doc: Dict[str, object], require: Sequence[str] = ()
) -> Dict[str, int]:
    """Check the contract; return summary counts or raise.

    Returns ``{"events": N, "spans": N, "processes": N}`` on success and
    raises :class:`TraceContractError` naming the first violation.
    """
    if not isinstance(doc, dict):
        raise TraceContractError(f"trace must be an object, got {type(doc).__name__}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise TraceContractError("trace has no traceEvents list")
    if doc.get("displayTimeUnit") != "ms":
        raise TraceContractError(
            f"displayTimeUnit must be 'ms', got {doc.get('displayTimeUnit')!r}"
        )
    names: set = set()
    pids: set = set()
    seen_complete = False
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise TraceContractError(f"event #{index} is not an object")
        phase = event.get("ph")
        if phase == "M":
            if seen_complete:
                raise TraceContractError(
                    f"metadata event #{index} appears after complete events"
                )
            continue
        if phase != "X":
            raise TraceContractError(
                f"event #{index} has unexpected phase {phase!r} "
                f"(exporter emits only M and X)"
            )
        seen_complete = True
        name = event.get("name")
        if not name or not isinstance(name, str):
            raise TraceContractError(f"event #{index} has no name")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                raise TraceContractError(
                    f"event #{index} ({name}): {field} must be an int, "
                    f"got {event.get(field)!r}"
                )
        for field in ("ts", "dur"):
            value = event.get(field)
            if not isinstance(value, (int, float)) or value < 0:
                raise TraceContractError(
                    f"event #{index} ({name}): {field} must be a "
                    f"non-negative number, got {value!r}"
                )
        names.add(name)
        pids.add(event["pid"])
    missing = [name for name in require if name not in names]
    if missing:
        raise TraceContractError(
            f"required span names missing from trace: {', '.join(missing)} "
            f"(have: {', '.join(sorted(names))})"
        )
    return {
        "events": len(events),
        "spans": len(names),
        "processes": len(pids),
    }


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", help="trace.json to validate")
    parser.add_argument(
        "--require", default="",
        help="comma-separated span names that must appear in the trace",
    )
    args = parser.parse_args(argv)
    require = [part.strip() for part in args.require.split(",") if part.strip()]
    try:
        doc = load(args.path)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    try:
        summary = validate(doc, require)
    except TraceContractError as exc:
        print(f"error: {args.path}: {exc}", file=sys.stderr)
        return 1
    print(
        f"{args.path}: ok — {summary['events']} events, "
        f"{summary['spans']} distinct span names, "
        f"{summary['processes']} process(es)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
