"""Micro-benchmark: vectorized vs string-kernel TSV edge codec.

Quantifies the :mod:`repro.edgeio.format` rewrite independently of the
pipeline: random edge arrays at the requested Graph500 scales are
encoded with the vectorized bytes-assembly path and the legacy
``np.char`` string path, then the produced payload is decoded with the
buffer-level tokenizer and the legacy ``payload.split()`` tokenizer.
Throughput is reported in MB/s of TSV payload, with the speedup per
direction, and every fast-path result is asserted identical to its
legacy counterpart before any number is printed.

Usage::

    python tools/bench_codec.py [--scales 14,16,18] [--edge-factor 16]
        [--repeats 3] [--seed 1]

The per-scale label space matches the pipeline: scale ``s`` draws
``edge_factor * 2**s`` edges with labels uniform in ``[0, 2**s)``.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.edgeio.format import (
    _decode_edges_split,
    _encode_edges_strings,
    decode_edges,
    encode_edges,
)


def _best_seconds(fn, repeats: int) -> float:
    """Best-of-N wall time (standard micro-benchmark discipline)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def bench_scale(scale: int, edge_factor: int, seed: int, repeats: int) -> dict:
    """Measure both codec paths at one scale; returns the row dict."""
    rng = np.random.default_rng(seed)
    num_edges = edge_factor * (1 << scale)
    u = rng.integers(0, 1 << scale, num_edges, dtype=np.int64)
    v = rng.integers(0, 1 << scale, num_edges, dtype=np.int64)

    payload = encode_edges(u, v)
    legacy_payload = _encode_edges_strings(u, v)
    if payload != legacy_payload:
        raise AssertionError(
            f"scale {scale}: vectorized encode output differs from the "
            f"string-kernel path"
        )
    fast_u, fast_v = decode_edges(payload)
    legacy_u, legacy_v = _decode_edges_split(payload)
    if not (np.array_equal(fast_u, legacy_u)
            and np.array_equal(fast_v, legacy_v)):
        raise AssertionError(
            f"scale {scale}: buffer-level decode differs from the "
            f"split-tokenizer path"
        )

    mb = len(payload) / 1e6
    encode_fast = _best_seconds(lambda: encode_edges(u, v), repeats)
    encode_slow = _best_seconds(
        lambda: _encode_edges_strings(u, v), repeats
    )
    decode_fast = _best_seconds(lambda: decode_edges(payload), repeats)
    decode_slow = _best_seconds(
        lambda: _decode_edges_split(payload), repeats
    )
    return {
        "scale": scale,
        "num_edges": num_edges,
        "payload_mb": mb,
        "encode_fast_mbs": mb / encode_fast,
        "encode_slow_mbs": mb / encode_slow,
        "encode_speedup": encode_slow / encode_fast,
        "decode_fast_mbs": mb / decode_fast,
        "decode_slow_mbs": mb / decode_slow,
        "decode_speedup": decode_slow / decode_fast,
    }


def _csv_ints(text: str):
    return [int(part) for part in text.split(",") if part.strip()]


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--scales", type=_csv_ints, default=[14, 16, 18],
                        help="Graph500 scales to measure (default 14,16,18)")
    parser.add_argument("--edge-factor", type=int, default=16)
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N per measurement")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--min-encode-speedup", type=float, default=0.0,
                        help="exit 1 unless every scale's encode speedup "
                             "meets this factor (CI gates 3.0)")
    args = parser.parse_args(argv[1:])

    header = (
        f"{'scale':>5} {'edges':>10} {'MB':>7} "
        f"{'enc fast':>9} {'enc str':>9} {'enc x':>6} "
        f"{'dec fast':>9} {'dec split':>9} {'dec x':>6}"
    )
    print(header)
    print("-" * len(header))
    slow_scales = []
    for scale in args.scales:
        row = bench_scale(scale, args.edge_factor, args.seed, args.repeats)
        print(
            f"{row['scale']:>5} {row['num_edges']:>10,} "
            f"{row['payload_mb']:>7.1f} "
            f"{row['encode_fast_mbs']:>7.0f}/s {row['encode_slow_mbs']:>7.0f}/s "
            f"{row['encode_speedup']:>5.1f}x "
            f"{row['decode_fast_mbs']:>7.0f}/s {row['decode_slow_mbs']:>7.0f}/s "
            f"{row['decode_speedup']:>5.1f}x",
            flush=True,
        )
        if row["encode_speedup"] < args.min_encode_speedup:
            slow_scales.append((scale, row["encode_speedup"]))
    print("(throughput in MB/s of TSV payload; fast paths asserted "
          "byte/bit-identical to the legacy paths before timing)")
    if slow_scales:
        print(
            "error: encode speedup below "
            f"{args.min_encode_speedup:g}x at: "
            + ", ".join(f"scale {s} ({x:.1f}x)" for s, x in slow_scales),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
