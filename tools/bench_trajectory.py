"""CI perf-trajectory gate: run a pinned smoke benchmark, record it,
and fail on gross regressions.

Runs a small fixed matrix of pipeline configurations through
``repro run --json`` (the real CLI, so the measurement includes the
whole submitted-workload path the paper cares about), writes a
``BENCH_<context>.json`` document with per-kernel seconds and edges/s
plus end-to-end wall time, and compares each case's wall time against
a checked-in baseline: more than ``--max-regression`` times slower
fails the gate.

``--async-lanes process`` reruns the same case matrix with the async
cases' codec tasks offloaded to lane worker processes (the
``overlap_saved_s`` each async case reported is recorded per case, so
two contexts — one per lane kind — make the offload's win comparable
point by point).  ``--shard-plane shm`` additionally routes the async
cases' shard hand-offs through the shared-memory plane (record it
under a third context, e.g. ``ci-shmplane``; the per-case
``handoff_mode`` and ``shm_bytes_saved`` land in the document).

The baseline (``benchmarks/baselines/bench_trajectory.json``) is
deliberately generous — CI runners are slow and noisy, and this gate
exists to catch *order-of-magnitude* regressions on the hot paths
(an accidentally quadratic kernel, a cache that stopped hitting), not
to flag scheduler jitter.  Tighten it as the trajectory accumulates.

Usage::

    python tools/bench_trajectory.py --context ci \
        [--output BENCH_ci.json] [--baseline path.json] \
        [--max-regression 2.0] [--no-gate] \
        [--async-lanes thread|process] [--shard-plane pipe|shm]

Exits 0 when every case is within budget, 1 on a regression, 2 on a
benchmark that failed to run at all.

**Aggregate mode** merges a directory of ``BENCH_<context>.json``
artifacts (e.g. downloaded from CI) into one time-series document,
sorted by each point's ``created`` timestamp (CI stamps one point per
commit, so this is commit order)::

    python tools/bench_trajectory.py --aggregate artifacts/ \
        [--output TRAJECTORY.json] \
        [--tighten-baseline benchmarks/baselines/bench_trajectory.json] \
        [--tighten-threshold 0.8]

The merged document carries, per case, the full ``(created, context,
wall_seconds)`` series plus min/median/max summaries, and the tool
prints a suggested tightened baseline (per-case median × 1.5 across
the accumulated points).  To tighten the checked-in gate, review that
suggestion against the series — a downward-trending case can take the
new number verbatim; a noisy one should keep more headroom — and copy
the chosen ``wall_seconds`` values into
``benchmarks/baselines/bench_trajectory.json``.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The pinned matrix: name -> extra `repro run` arguments.  Scales 12
#: and 14 are big enough to time and small enough for a CI smoke job;
#: serial and async cover the two hot execution paths.
CASES = {
    "s12-serial-scipy": ["--scale", "12", "--backend", "scipy"],
    "s12-async-scipy": ["--scale", "12", "--backend", "scipy",
                        "--execution", "async"],
    "s14-serial-scipy": ["--scale", "14", "--backend", "scipy"],
    "s14-async-scipy": ["--scale", "14", "--backend", "scipy",
                        "--execution", "async"],
}


def case_matrix(async_lanes: str, shard_plane: str = "pipe") -> dict:
    """The pinned matrix, with the async cases on the requested lane.

    ``shard_plane="shm"`` additionally routes the async cases' shard
    hand-offs through the shared-memory plane (only meaningful with
    ``async_lanes="process"`` — in-process hand-offs are already
    zero-copy).
    """
    matrix = {}
    for name, extra in CASES.items():
        extra = list(extra)
        if "--execution" in extra:
            if async_lanes != "thread":
                extra += ["--async-lanes", async_lanes]
            if shard_plane != "pipe":
                extra += ["--shard-plane", shard_plane]
        matrix[name] = extra
    return matrix


def run_case(name: str, extra_args: list) -> dict:
    """Run one pinned configuration and distil its measurement."""
    command = [
        sys.executable, "-m", "repro.cli.main", "run",
        *extra_args, "--no-verify", "--json",
    ]
    started = time.monotonic()
    proc = subprocess.run(
        command, cwd=REPO_ROOT, capture_output=True, text=True,
    )
    elapsed = time.monotonic() - started
    if proc.returncode != 0:
        raise RuntimeError(
            f"case {name!r} failed (exit {proc.returncode}):\n"
            f"{proc.stderr.strip()}"
        )
    doc = json.loads(proc.stdout)
    kernels = {
        k["kernel"]: {
            "seconds": k["seconds"],
            "edges_per_second": k["edges_per_second"],
        }
        for k in doc["kernels"]
    }
    case = {
        "wall_seconds": doc.get("wall_seconds", doc["total_seconds"]),
        "total_seconds": doc["total_seconds"],
        "benchmark_seconds": doc["benchmark_seconds"],
        "process_seconds": elapsed,  # incl. interpreter + imports
        "kernels": kernels,
    }
    last = doc["kernels"][-1]["details"] if doc.get("kernels") else {}
    if "overlap_saved_s" in last:
        # Async cases: record the overlap the schedule recovered and
        # the lane attribution, so thread- vs process-lane contexts
        # compare on more than end-to-end wall.
        case["overlap_saved_s"] = last["overlap_saved_s"]
        case["async_lanes"] = last.get("async_lanes", "thread")
        case["lane_busy_seconds"] = last.get("lane_busy_seconds", {})
        if "handoff_mode" in last:
            # Shard-plane cases: how the shards actually crossed (shm
            # may have degraded to pipe) and the pipe bytes avoided.
            case["handoff_mode"] = last["handoff_mode"]
            case["shm_bytes_saved"] = last.get("shm_bytes_saved", 0)
    return case


def tighten_baseline(
    baseline_path: Path, suggested: dict, threshold: float
) -> list:
    """Rewrite baseline cases the accumulated trajectory has outgrown.

    A case is tightened only when the suggested budget (median × 1.5)
    is at most ``threshold`` × the checked-in budget — small drifts are
    left alone so the gate file does not churn on noise.  Returns the
    names of the cases rewritten (empty means the file was untouched).
    """
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    tightened = []
    for name, entry in baseline.get("cases", {}).items():
        proposal = suggested.get(name)
        if proposal is None:
            continue
        current = entry["wall_seconds"]
        new = proposal["wall_seconds"]
        if new <= threshold * current:
            entry["wall_seconds"] = new
            tightened.append(name)
            print(f"  tightened {name}: {current:.3f}s -> {new:.3f}s")
    if tightened:
        baseline_path.write_text(
            json.dumps(baseline, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"baseline rewritten: {baseline_path} "
              f"({len(tightened)} case(s))")
    else:
        print("no baseline case met the tightening threshold "
              f"(suggested <= {threshold:g}x current); file untouched")
    return tightened


def aggregate(
    directory: Path, output: Path,
    tighten: Path = None, tighten_threshold: float = 0.8,
) -> int:
    """Merge ``BENCH_*.json`` artifacts into one sorted time series.

    Points are ordered by their ``created`` timestamp (one CI point per
    commit makes that commit order); the merged document carries the
    per-case series plus min/median/max, and a suggested tightened
    baseline (per-case median × 1.5) is printed for review.  With
    ``tighten`` set, cases whose suggestion is at most
    ``tighten_threshold`` × the checked-in budget are rewritten in
    place (the scheduled auto-tightening workflow turns that diff into
    a PR).
    """
    import statistics

    points = []
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"skipping {path.name}: {exc}", file=sys.stderr)
            continue
        if not isinstance(doc.get("cases"), dict):
            print(f"skipping {path.name}: no cases", file=sys.stderr)
            continue
        points.append(doc)
    if not points:
        print(f"error: no readable BENCH_*.json under {directory}",
              file=sys.stderr)
        return 2
    points.sort(key=lambda doc: doc.get("created", ""))

    series: dict = {}
    for doc in points:
        for name, case in doc["cases"].items():
            series.setdefault(name, []).append({
                "created": doc.get("created"),
                "context": doc.get("context"),
                "wall_seconds": case["wall_seconds"],
                **(
                    {"overlap_saved_s": case["overlap_saved_s"]}
                    if "overlap_saved_s" in case else {}
                ),
            })
    cases = {}
    suggested = {}
    for name, entries in sorted(series.items()):
        walls = [e["wall_seconds"] for e in entries]
        cases[name] = {
            "points": entries,
            "wall_min": min(walls),
            "wall_median": statistics.median(walls),
            "wall_max": max(walls),
        }
        suggested[name] = {
            "wall_seconds": round(statistics.median(walls) * 1.5, 3)
        }
    document = {
        "schema": 1,
        "kind": "trajectory",
        "num_points": len(points),
        "first_created": points[0].get("created"),
        "last_created": points[-1].get("created"),
        "cases": cases,
    }
    output.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"aggregated {len(points)} trajectory points into {output}")
    print("suggested tightened baseline (median x 1.5; review the "
          "series before copying into "
          "benchmarks/baselines/bench_trajectory.json):")
    print(json.dumps({"cases": suggested}, indent=2, sort_keys=True))
    if tighten is not None:
        if not tighten.exists():
            print(f"error: no baseline at {tighten} to tighten",
                  file=sys.stderr)
            return 2
        tighten_baseline(tighten, suggested, tighten_threshold)
    return 0


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--context", default="local",
                        help="label baked into the output filename and "
                             "document (e.g. 'ci', a git sha)")
    parser.add_argument("--output", default=None,
                        help="output path (default BENCH_<context>.json; "
                             "TRAJECTORY.json with --aggregate)")
    parser.add_argument(
        "--baseline",
        default=str(REPO_ROOT / "benchmarks" / "baselines"
                    / "bench_trajectory.json"),
        help="checked-in baseline to gate against")
    parser.add_argument("--max-regression", type=float, default=2.0,
                        help="fail when a case's wall time exceeds "
                             "baseline * this factor")
    parser.add_argument("--no-gate", action="store_true",
                        help="record only; never fail on regressions")
    parser.add_argument("--async-lanes", default="thread",
                        choices=["thread", "process"],
                        help="codec lane for the async cases (process "
                             "reruns the same matrix with lane-pool "
                             "offload; pair with a distinct --context)")
    parser.add_argument("--shard-plane", default="pipe",
                        choices=["pipe", "shm"],
                        help="shard hand-off plane for the async cases "
                             "(shm routes edge arrays through shared "
                             "memory; pair with --async-lanes process "
                             "and a distinct --context)")
    parser.add_argument("--aggregate", default=None, metavar="DIR",
                        help="merge BENCH_*.json files under DIR into a "
                             "time-series document instead of running "
                             "the benchmark")
    parser.add_argument("--tighten-baseline", default=None, metavar="PATH",
                        help="with --aggregate: rewrite this baseline "
                             "file in place where the suggested budget "
                             "is materially tighter")
    parser.add_argument("--tighten-threshold", type=float, default=0.8,
                        help="tighten a case only when suggested <= "
                             "this fraction of the checked-in budget "
                             "(default 0.8)")
    args = parser.parse_args(argv[1:])

    if args.aggregate is not None:
        return aggregate(
            Path(args.aggregate),
            Path(args.output or "TRAJECTORY.json"),
            tighten=(
                Path(args.tighten_baseline)
                if args.tighten_baseline else None
            ),
            tighten_threshold=args.tighten_threshold,
        )

    results = {}
    for name, extra in case_matrix(args.async_lanes, args.shard_plane).items():
        print(f"running {name} ...", flush=True)
        try:
            results[name] = run_case(name, extra)
        except (RuntimeError, json.JSONDecodeError, KeyError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"  wall {results[name]['wall_seconds']:.3f}s", flush=True)

    document = {
        "schema": 1,
        "context": args.context,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "async_lanes": args.async_lanes,
        "shard_plane": args.shard_plane,
        "cases": results,
    }
    output = Path(args.output or f"BENCH_{args.context}.json")
    output.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"trajectory written to {output}")

    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; gate skipped")
        return 0
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    failures = []
    for name, measured in results.items():
        reference = baseline.get("cases", {}).get(name)
        if reference is None:
            print(f"  {name}: no baseline entry (new case?)")
            continue
        budget = reference["wall_seconds"] * args.max_regression
        verdict = "ok" if measured["wall_seconds"] <= budget else "REGRESSED"
        print(
            f"  {name}: wall {measured['wall_seconds']:.3f}s vs baseline "
            f"{reference['wall_seconds']:.3f}s "
            f"(budget {budget:.3f}s) {verdict}"
        )
        if verdict != "ok":
            failures.append(name)
    if failures and not args.no_gate:
        print(
            f"error: wall-time regression >"
            f"{args.max_regression:g}x in: {', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
