"""CI smoke client for `repro-pipeline serve`.

Submits a workload over HTTP, polls the job to completion, and asserts
the result payload is sane.  Usage::

    python tools/http_smoke_client.py PORT [SCENARIO] [TIMEOUT_S]

``SCENARIO`` is a scenario name (default ``smoke``), posted as
``{"scenario": ...}``.  The special name ``sweep`` instead posts a
small sweep grid over the smoke scenario —
``{"scenario": "smoke", "sweep": {"scales": [6, 7],
"backends": ["numpy", "scipy"]}}`` — and polls the *parent* job,
asserting every cell succeeded and the assembled sweep table carries
one record row per (cell, kernel) plus a rank digest per cell.

The special name ``observability`` exercises the trace plane: it
submits the smoke scenario with ``{"trace": true}`` overrides, fetches
``GET /jobs/<id>/trace`` (asserting the Chrome export carries the
pipeline/stage/job lifecycle span names), then scrapes ``GET /metrics``
(asserting the Prometheus families the service promises) and checks
``/healthz`` reports queue depth and per-worker in-flight maps.
Against a ``--worker-kind remote`` service it additionally requires
the remote families (connected-worker gauge, per-worker info/heartbeat
series, requeue and artifact-sync counters) and per-worker health rows
carrying kind/transport/heartbeat age.

Exits nonzero (via assertion) if the job fails, is cancelled, or does
not finish in time.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.request

#: The grid the ``sweep`` mode submits (2 backends x 2 scales).
SWEEP_GRID = {"scales": [6, 7], "backends": ["numpy", "scipy"]}

#: Span names the ``observability`` mode requires in a job's trace.
REQUIRED_SPANS = (
    "pipeline",
    "stage:k0-generate",
    "stage:k1-sort",
    "stage:k2-filter",
    "stage:k3-pagerank",
    "job:queue",
    "job:run",
)

#: Metric families the ``observability`` mode requires in /metrics.
REQUIRED_METRICS = (
    "repro_jobs_finished_total",
    "repro_queue_depth",
    "repro_workers_spawned_total",
    "repro_jobs_requeued_total",
    "repro_artifact_cache_probes_total",
    "repro_artifact_sync_total",
    "repro_shm_bytes_saved_total",
    "repro_kernel_seconds_bucket",
)

#: Families additionally required when the service is remote-kind.
REQUIRED_REMOTE_METRICS = (
    "repro_remote_workers_connected",
    "repro_remote_registrations_rejected_total",
    "repro_remote_results_dropped_total",
    "repro_worker_info",
    "repro_worker_heartbeat_age_seconds",
)


def _post_job(base: str, body: dict) -> dict:
    request = urllib.request.Request(
        f"{base}/jobs",
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    return json.loads(urllib.request.urlopen(request, timeout=30).read())


def _poll_terminal(base: str, job_id: str, timeout_s: float) -> dict:
    deadline = time.monotonic() + timeout_s
    doc = {}
    while time.monotonic() < deadline:
        doc = json.loads(
            urllib.request.urlopen(f"{base}/jobs/{job_id}", timeout=30).read()
        )
        if doc["state"] not in ("pending", "running"):
            return doc
        time.sleep(0.2)
    raise AssertionError(f"job {job_id} did not finish in {timeout_s}s: {doc}")


def main(argv: list) -> int:
    port = int(argv[1])
    scenario = argv[2] if len(argv) > 2 else "smoke"
    timeout_s = float(argv[3]) if len(argv) > 3 else 300.0
    base = f"http://127.0.0.1:{port}"

    if scenario == "sweep":
        body = {"scenario": "smoke", "sweep": SWEEP_GRID}
    elif scenario == "observability":
        body = {"scenario": "smoke", "overrides": {"trace": True}}
    else:
        body = {"scenario": scenario}
    job = _post_job(base, body)
    job_id = job["job_id"]
    print(f"submitted {body} as {job_id} (kind={job.get('kind', 'run')})")

    doc = _poll_terminal(base, job_id, timeout_s)
    assert doc["state"] == "succeeded", doc

    result = json.loads(
        urllib.request.urlopen(
            f"{base}/jobs/{job_id}/result", timeout=30
        ).read()
    )
    if scenario == "sweep":
        cells = result["cells"]
        expected = len(SWEEP_GRID["scales"]) * len(SWEEP_GRID["backends"])
        assert len(cells) == expected, result
        assert all(c["state"] == "succeeded" for c in cells), cells
        assert all(c["rank_sha256"] for c in cells), cells
        assert len(result["records"]) == expected * 4, result
        digests = {(c["backend"], c["scale"]): c["rank_sha256"][:16]
                   for c in cells}
        print(f"sweep succeeded; per-cell digests {digests}")
    else:
        assert len(result["records"]) == 4, result
        assert result["rank_sha256"], result
        print(f"job succeeded; rank digest {result['rank_sha256'][:16]}…")

    if scenario == "observability":
        trace = json.loads(
            urllib.request.urlopen(
                f"{base}/jobs/{job_id}/trace", timeout=30
            ).read()
        )
        events = trace["traceEvents"]
        names = {e["name"] for e in events if e.get("ph") == "X"}
        missing = [n for n in REQUIRED_SPANS if n not in names]
        assert not missing, f"trace missing spans {missing}; have {sorted(names)}"
        assert all(
            e["ts"] >= 0 and e["dur"] >= 0
            for e in events if e.get("ph") == "X"
        ), "trace has negative timestamps/durations"
        print(f"trace ok: {len(events)} events, {len(names)} span names")

        metrics = urllib.request.urlopen(
            f"{base}/metrics", timeout=30
        ).read().decode("utf-8")
        missing = [m for m in REQUIRED_METRICS if m not in metrics]
        assert not missing, f"/metrics missing families {missing}"
        assert 'repro_jobs_finished_total{state="succeeded"}' in metrics, \
            metrics
        print(f"metrics ok: {len(metrics.splitlines())} lines")

        health = json.loads(
            urllib.request.urlopen(f"{base}/healthz", timeout=30).read()
        )
        assert "queue_depth" in health and "workers" in health, health
        print(f"healthz ok: {health}")

        if health.get("worker_kind") == "remote":
            missing = [m for m in REQUIRED_REMOTE_METRICS
                       if m not in metrics]
            assert not missing, f"/metrics missing remote families {missing}"
            assert health.get("workers_connected", 0) >= 1, health
            assert health.get("worker_listen"), health
            assert health["workers"], "remote service has no worker rows"
            for name, row in health["workers"].items():
                assert row["kind"] == "remote", (name, row)
                assert row["transport"] == "tcp", (name, row)
                assert isinstance(
                    row["heartbeat_age_s"], (int, float)
                ), (name, row)
            print(f"remote observability ok: "
                  f"{health['workers_connected']} workers connected")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
