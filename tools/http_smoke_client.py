"""CI smoke client for `repro-pipeline serve`.

Submits a scenario over HTTP, polls the job to completion, and asserts
the result payload is sane.  Usage::

    python tools/http_smoke_client.py PORT [SCENARIO] [TIMEOUT_S]

Exits nonzero (via assertion) if the job fails, is cancelled, or does
not finish in time.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.request


def main(argv: list) -> int:
    port = int(argv[1])
    scenario = argv[2] if len(argv) > 2 else "smoke"
    timeout_s = float(argv[3]) if len(argv) > 3 else 300.0
    base = f"http://127.0.0.1:{port}"

    request = urllib.request.Request(
        f"{base}/jobs",
        data=json.dumps({"scenario": scenario}).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    job = json.loads(urllib.request.urlopen(request, timeout=30).read())
    job_id = job["job_id"]
    print(f"submitted {scenario!r} as {job_id}")

    deadline = time.monotonic() + timeout_s
    doc = job
    while time.monotonic() < deadline:
        doc = json.loads(
            urllib.request.urlopen(f"{base}/jobs/{job_id}", timeout=30).read()
        )
        if doc["state"] not in ("pending", "running"):
            break
        time.sleep(0.2)
    assert doc["state"] == "succeeded", doc

    result = json.loads(
        urllib.request.urlopen(
            f"{base}/jobs/{job_id}/result", timeout=30
        ).read()
    )
    assert len(result["records"]) == 4, result
    assert result["rank_sha256"], result
    print(f"job succeeded; rank digest {result['rank_sha256'][:16]}…")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
