"""Micro-benchmark: pipe vs shm vs mmap shard hand-off throughput.

Quantifies the zero-copy shard plane (:mod:`repro.core.shmplane`)
independently of the pipeline: random edge arrays at the requested
Graph500 scales make one full hand-off round trip per plane —

* ``pipe``  — ``pickle.dumps`` + ``pickle.loads`` of the ``(u, v)``
  pair, the bytes a :class:`~repro.core.lanes.ProcessLanePool` dispatch
  ships through a worker pipe each way;
* ``shm``   — :meth:`ShardBuffer.create` (one memcpy into the segment),
  :meth:`ShardBuffer.attach` by name, and materialisation of the
  read-only views — everything a cross-process hand-off costs except
  the (constant-size) name transfer;
* ``mmap``  — :func:`repro.edgeio.binary.write_binary_shard` once, then
  a memory-mapped :func:`read_binary_shard` per measurement — the
  artifact-cache read path under ``cache_mmap``.

Every plane's round-tripped arrays are asserted bit-identical to the
source before any number is printed.  Throughput is MB/s of edge
payload at 16 bytes/edge (two int64 columns).

Usage::

    python tools/bench_handoff.py [--scales 14,16,18] [--edge-factor 16]
        [--repeats 3] [--seed 1] [--min-shm-speedup 0.0]
"""

from __future__ import annotations

import argparse
import pickle
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.shmplane import ShardBuffer, shm_available
from repro.edgeio.binary import read_binary_shard, write_binary_shard

#: Edge payload bytes per edge: two little-endian int64 labels.
BYTES_PER_EDGE = 16


def _best_seconds(fn, repeats: int) -> float:
    """Best-of-N wall time (standard micro-benchmark discipline)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _roundtrip_pipe(u: np.ndarray, v: np.ndarray):
    return pickle.loads(pickle.dumps((u, v), protocol=pickle.HIGHEST_PROTOCOL))


def _roundtrip_shm(u: np.ndarray, v: np.ndarray):
    buffer = ShardBuffer.create(u, v)
    try:
        reader = ShardBuffer.attach(buffer.name)
        try:
            ru, rv = reader.arrays()
            # Touch both views so lazily-faulted pages are paid for
            # here, like a consumer would pay them.
            return np.array(ru), np.array(rv)
        finally:
            reader.close()
    finally:
        buffer.release()


def _roundtrip_mmap(path: Path):
    u, v = read_binary_shard(path, mmap=True)
    return np.array(u), np.array(v)


def bench_scale(scale: int, edge_factor: int, seed: int, repeats: int,
                scratch: Path) -> dict:
    """Measure every hand-off plane at one scale; returns the row dict."""
    rng = np.random.default_rng(seed)
    num_edges = edge_factor * (1 << scale)
    u = rng.integers(0, 1 << scale, num_edges, dtype=np.int64)
    v = rng.integers(0, 1 << scale, num_edges, dtype=np.int64)

    # Parity before timing: every plane must round-trip bit-identically.
    pu, pv = _roundtrip_pipe(u, v)
    if not (np.array_equal(pu, u) and np.array_equal(pv, v)):
        raise AssertionError(f"scale {scale}: pipe round trip differs")
    su, sv = _roundtrip_shm(u, v)
    if not (np.array_equal(su, u) and np.array_equal(sv, v)):
        raise AssertionError(f"scale {scale}: shm round trip differs")
    shard = scratch / f"handoff-{scale}.npy"
    write_binary_shard(shard, u, v)
    mu, mv = _roundtrip_mmap(shard)
    if not (np.array_equal(mu, u) and np.array_equal(mv, v)):
        raise AssertionError(f"scale {scale}: mmap round trip differs")

    mb = num_edges * BYTES_PER_EDGE / 1e6
    pipe_s = _best_seconds(lambda: _roundtrip_pipe(u, v), repeats)
    shm_s = _best_seconds(lambda: _roundtrip_shm(u, v), repeats)
    mmap_s = _best_seconds(lambda: _roundtrip_mmap(shard), repeats)
    shard.unlink()
    return {
        "scale": scale,
        "num_edges": num_edges,
        "payload_mb": mb,
        "pipe_mbs": mb / pipe_s,
        "shm_mbs": mb / shm_s,
        "mmap_mbs": mb / mmap_s,
        "shm_speedup": pipe_s / shm_s,
        "mmap_speedup": pipe_s / mmap_s,
    }


def _csv_ints(text: str):
    return [int(part) for part in text.split(",") if part.strip()]


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--scales", type=_csv_ints, default=[14, 16, 18],
                        help="Graph500 scales to measure (default 14,16,18)")
    parser.add_argument("--edge-factor", type=int, default=16)
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N per measurement")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--min-shm-speedup", type=float, default=0.0,
                        help="exit 1 unless every scale's shm speedup over "
                             "pipe meets this factor")
    args = parser.parse_args(argv[1:])

    if not shm_available():
        print("error: shared memory is unavailable on this host; only the "
              "pipe and mmap planes could be measured", file=sys.stderr)
        return 1

    header = (
        f"{'scale':>5} {'edges':>10} {'MB':>7} "
        f"{'pipe':>9} {'shm':>9} {'shm x':>6} "
        f"{'mmap':>9} {'mmap x':>6}"
    )
    print(header)
    print("-" * len(header))
    slow_scales = []
    with tempfile.TemporaryDirectory(prefix="bench-handoff-") as tmp:
        scratch = Path(tmp)
        for scale in args.scales:
            row = bench_scale(scale, args.edge_factor, args.seed,
                              args.repeats, scratch)
            print(
                f"{row['scale']:>5} {row['num_edges']:>10,} "
                f"{row['payload_mb']:>7.1f} "
                f"{row['pipe_mbs']:>7.0f}/s {row['shm_mbs']:>7.0f}/s "
                f"{row['shm_speedup']:>5.1f}x "
                f"{row['mmap_mbs']:>7.0f}/s {row['mmap_speedup']:>5.1f}x",
                flush=True,
            )
            if row["shm_speedup"] < args.min_shm_speedup:
                slow_scales.append((scale, row["shm_speedup"]))
    print("(throughput in MB/s of edge payload at 16 bytes/edge; every "
          "plane asserted bit-identical to the source before timing)")
    if slow_scales:
        print(
            "error: shm hand-off speedup below "
            f"{args.min_shm_speedup:g}x at: "
            + ", ".join(f"scale {s} ({x:.1f}x)" for s, x in slow_scales),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
