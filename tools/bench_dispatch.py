"""Dispatch-overhead bench: thread vs process vs remote(localhost).

Measures what each worker transport *adds* to a job: the same RunSpec
document is dispatched through a :class:`ThreadWorkerPool` (in-process
baseline), a :class:`ProcessWorkerPool` (pipe to a long-lived child),
and a :class:`RemoteWorkerPool` with a localhost TCP agent (the full
distributed plane: framing, heartbeats, dispatch bookkeeping — minus
real network latency, which a localhost loop cannot model).  Per kind
it records the best-of-N dispatch wall time and the overhead versus
the thread baseline; bit-identical rank digests across the three kinds
are asserted on every run, so the bench doubles as a parity check.

The output document is ``bench_trajectory``-compatible (``{"schema",
"context", "created", "cases": {name: {"wall_seconds", ...}}}``) so
CI's aggregate step folds dispatch overhead into the same trajectory
series as the kernel benches.  Record it under the ``ci-remote``
context::

    python tools/bench_dispatch.py --context ci-remote \
        [--output BENCH_ci-remote.json] [--scales 12,14] [--repeats 3]

Warm-up dispatches (pool spawn, agent registration, interpreter
start-up) are excluded from the timed repeats — the bench targets
steady-state dispatch, not cold starts.  Exits 0 on success, 2 when a
case fails to run or parity breaks.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import RunSpec  # noqa: E402
from repro.service.agent import WorkerAgent  # noqa: E402
from repro.service.pool import (  # noqa: E402
    ProcessWorkerPool,
    ThreadWorkerPool,
)
from repro.service.remote import RemoteWorkerPool  # noqa: E402

#: The dispatch matrix: small enough that transport overhead is a
#: visible fraction of the job, big enough that the job is real.
DEFAULT_SCALES = (12, 14)
BACKEND = "scipy"


def _spec(scale: int) -> RunSpec:
    return RunSpec(scale=scale, backend=BACKEND)


def _time_dispatches(pool, spec_doc, repeats: int):
    """Best-of-N wall seconds for one pool, plus the digest seen."""
    digest = None
    best = float("inf")
    for _ in range(repeats):
        started = time.monotonic()
        payload, _outcome = pool.run_spec(spec_doc, None)
        elapsed = time.monotonic() - started
        best = min(best, elapsed)
        digest = payload["rank_sha256"]
    return best, digest


def bench_scale(scale: int, repeats: int) -> dict:
    """All three kinds at one scale; returns cases keyed by kind."""
    spec_doc = _spec(scale).to_dict()
    cases = {}
    digests = {}

    thread_pool = ThreadWorkerPool(1)
    thread_pool.run_spec(spec_doc, None)  # warm (imports, page cache)
    best, digests["thread"] = _time_dispatches(
        thread_pool, spec_doc, repeats
    )
    thread_baseline = best
    cases["thread"] = {"wall_seconds": best, "overhead_seconds": 0.0}
    thread_pool.shutdown()

    process_pool = ProcessWorkerPool(1)
    try:
        process_pool.run_spec(spec_doc, None)  # warm (spawn + imports)
        best, digests["process"] = _time_dispatches(
            process_pool, spec_doc, repeats
        )
        cases["process"] = {
            "wall_seconds": best,
            "overhead_seconds": max(0.0, best - thread_baseline),
        }
    finally:
        process_pool.shutdown()

    remote_pool = RemoteWorkerPool(1, heartbeat_timeout=30.0)
    host, port = remote_pool.address
    agent = WorkerAgent(host, port, worker_id="bench-agent", quiet=True)
    agent_thread = threading.Thread(target=agent.run, daemon=True)
    agent_thread.start()
    try:
        remote_pool.run_spec(spec_doc, None)  # warm (registration)
        best, digests["remote"] = _time_dispatches(
            remote_pool, spec_doc, repeats
        )
        cases["remote"] = {
            "wall_seconds": best,
            "overhead_seconds": max(0.0, best - thread_baseline),
        }
    finally:
        remote_pool.shutdown()
        agent_thread.join(timeout=10)

    if len(set(digests.values())) != 1:
        raise RuntimeError(
            f"rank digests diverged across worker kinds at scale "
            f"{scale}: { {k: v[:16] for k, v in digests.items()} }"
        )
    for case in cases.values():
        case["rank_sha256"] = digests["thread"]
    return cases


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--context", default="ci-remote",
                        help="label baked into the output filename and "
                             "document")
    parser.add_argument("--output", default=None,
                        help="output path (default BENCH_<context>.json)")
    parser.add_argument("--scales", default=",".join(
                            str(s) for s in DEFAULT_SCALES),
                        help="comma-separated Graph500 scales")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed dispatches per (scale, kind); best "
                             "is recorded")
    args = parser.parse_args(argv[1:])

    scales = [int(s) for s in args.scales.split(",") if s.strip()]
    results = {}
    for scale in scales:
        print(f"dispatch bench at scale {scale} ...", flush=True)
        try:
            cases = bench_scale(scale, args.repeats)
        except (RuntimeError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        for kind, case in cases.items():
            name = f"s{scale}-dispatch-{kind}"
            results[name] = case
            print(
                f"  {kind:8s} wall {case['wall_seconds']:.3f}s "
                f"(+{case['overhead_seconds']:.3f}s vs thread)",
                flush=True,
            )

    document = {
        "schema": 1,
        "context": args.context,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "backend": BACKEND,
        "repeats": args.repeats,
        "cases": results,
    }
    output = Path(args.output or f"BENCH_{args.context}.json")
    output.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"dispatch trajectory written to {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
