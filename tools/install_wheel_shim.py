#!/usr/bin/env python3
"""Install the offline `wheel` shim into the active site-packages.

Idempotent: does nothing when a `wheel` module is already importable
(real or shim).  Copies ``tools/wheelshim/wheel`` next to a generated
``wheel-<version>.dist-info`` whose ``entry_points.txt`` registers the
``bdist_wheel`` distutils command — that registration is how setuptools
discovers the command, so the dist-info is required, not cosmetic.

Usage::

    python tools/install_wheel_shim.py [--force]
"""

from __future__ import annotations

import argparse
import shutil
import site
import sys
from pathlib import Path

SHIM_ROOT = Path(__file__).resolve().parent / "wheelshim"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--force", action="store_true",
        help="reinstall even if a wheel module is already importable",
    )
    args = parser.parse_args()

    if not args.force:
        try:
            import wheel  # noqa: F401

            print(f"wheel already importable ({wheel.__version__}); nothing to do")
            return 0
        except ImportError:
            pass

    site_dirs = site.getsitepackages()
    if not site_dirs:
        print("no site-packages directory found", file=sys.stderr)
        return 1
    target_root = Path(site_dirs[0])

    version = "0.38.4+shim"
    pkg_target = target_root / "wheel"
    if pkg_target.exists():
        shutil.rmtree(pkg_target)
    shutil.copytree(SHIM_ROOT / "wheel", pkg_target)

    dist_info = target_root / f"wheel-{version.replace('+', '_')}.dist-info"
    if dist_info.exists():
        shutil.rmtree(dist_info)
    dist_info.mkdir()
    (dist_info / "METADATA").write_text(
        "Metadata-Version: 2.1\n"
        "Name: wheel\n"
        f"Version: {version}\n"
        "Summary: Minimal offline shim of the wheel package\n",
        encoding="utf-8",
    )
    (dist_info / "entry_points.txt").write_text(
        "[distutils.commands]\n"
        "bdist_wheel = wheel.bdist_wheel:bdist_wheel\n",
        encoding="utf-8",
    )
    (dist_info / "INSTALLER").write_text("install_wheel_shim.py\n", encoding="utf-8")
    records = []
    for path in sorted(pkg_target.rglob("*")):
        if path.is_file():
            records.append(f"{path.relative_to(target_root)},,\n")
    for path in sorted(dist_info.iterdir()):
        records.append(f"{path.relative_to(target_root)},,\n")
    records.append(f"{dist_info.relative_to(target_root)}/RECORD,,\n")
    (dist_info / "RECORD").write_text("".join(records), encoding="utf-8")

    print(f"installed wheel shim {version} into {target_root}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
