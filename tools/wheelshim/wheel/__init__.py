"""Minimal offline shim of the `wheel` package.

This environment has no network and no `wheel` distribution, but pip
>= 23.1 forces PEP 517/660 builds, and setuptools' editable-wheel path
imports `wheel.wheelfile.WheelFile` and the `bdist_wheel` distutils
command from the `wheel` distribution.  This shim implements exactly the
surface setuptools needs so `pip install -e .` works offline:

* :class:`wheel.wheelfile.WheelFile` — zip writer that maintains RECORD;
* :class:`wheel.bdist_wheel.bdist_wheel` — the distutils command with
  ``get_tag`` / ``write_wheelfile`` / ``egg2dist`` plus a basic ``run``
  for non-editable pure-Python wheels.

Install with ``python tools/install_wheel_shim.py`` (idempotent; does
nothing if a real `wheel` package is already importable).
"""

__version__ = "0.38.4+shim"
