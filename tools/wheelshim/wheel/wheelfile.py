"""WheelFile: a ZipFile that records sha256 hashes and writes RECORD.

API-compatible subset of wheel 0.38's ``wheel.wheelfile.WheelFile`` —
the parts setuptools' ``editable_wheel`` and our shim's ``bdist_wheel``
use: construction in "w" mode from a ``*.whl`` path, ``write``,
``writestr``, ``write_files`` and RECORD emission on close.
"""

from __future__ import annotations

import csv
import hashlib
import io
import os
import re
import stat
import zipfile
from base64 import urlsafe_b64encode

WHEEL_INFO_RE = re.compile(
    r"^(?P<namever>(?P<name>[^\s-]+?)-(?P<ver>[^\s-]+?))"
    r"(-(?P<build>\d[^\s-]*))?-(?P<pyver>[^\s-]+?)"
    r"-(?P<abi>[^\s-]+?)-(?P<plat>\S+)\.whl$",
    re.VERBOSE,
)


class WheelError(Exception):
    """Raised for malformed wheel names or archives."""


def _urlsafe_b64(data: bytes) -> str:
    return urlsafe_b64encode(data).decode("latin1").rstrip("=")


class WheelFile(zipfile.ZipFile):
    """Write-mode zip archive that accumulates RECORD entries."""

    def __init__(self, file, mode: str = "r", compression: int = zipfile.ZIP_DEFLATED):
        basename = os.path.basename(file)
        self.parsed_filename = WHEEL_INFO_RE.match(basename)
        if not basename.endswith(".whl") or self.parsed_filename is None:
            raise WheelError(f"Bad wheel filename {basename!r}")
        super().__init__(file, mode, compression=compression, allowZip64=True)
        self.dist_info_path = f"{self.parsed_filename.group('namever')}.dist-info"
        self.record_path = f"{self.dist_info_path}/RECORD"
        self._file_hashes = {}
        self._file_sizes = {}

    def write_files(self, base_dir: str) -> None:
        """Add every file under ``base_dir``, dist-info last."""
        deferred = []
        for root, _dirnames, filenames in os.walk(base_dir):
            for name in filenames:
                path = os.path.join(root, name)
                arcname = os.path.relpath(path, base_dir).replace(os.path.sep, "/")
                if arcname == self.record_path:
                    continue
                if root.endswith(".dist-info"):
                    deferred.append((path, arcname))
                else:
                    self.write(path, arcname)
        deferred.sort()
        for path, arcname in deferred:
            self.write(path, arcname)

    def write(self, filename, arcname=None, compress_type=None):  # noqa: D102
        with open(filename, "rb") as fh:
            st = os.fstat(fh.fileno())
            data = fh.read()
        zinfo = zipfile.ZipInfo(
            arcname or filename, date_time=(1980, 1, 1, 0, 0, 0)
        )
        zinfo.external_attr = (stat.S_IMODE(st.st_mode) | stat.S_IFMT(st.st_mode)) << 16
        zinfo.compress_type = compress_type or self.compression
        self.writestr(zinfo, data, compress_type)

    def writestr(self, zinfo_or_arcname, data, compress_type=None):  # noqa: D102
        if isinstance(data, str):
            data = data.encode("utf-8")
        super().writestr(zinfo_or_arcname, data, compress_type)
        fname = (
            zinfo_or_arcname.filename
            if isinstance(zinfo_or_arcname, zipfile.ZipInfo)
            else zinfo_or_arcname
        )
        if fname != self.record_path:
            digest = hashlib.sha256(data)
            self._file_hashes[fname] = (digest.name, _urlsafe_b64(digest.digest()))
            self._file_sizes[fname] = len(data)

    def close(self):  # noqa: D102
        if self.fp is not None and self.mode == "w" and self._file_hashes:
            buffer = io.StringIO()
            writer = csv.writer(buffer, delimiter=",", quotechar='"', lineterminator="\n")
            writer.writerows(
                (fname, f"{algorithm}={hash_}", self._file_sizes[fname])
                for fname, (algorithm, hash_) in self._file_hashes.items()
            )
            writer.writerow((self.record_path, "", ""))
            zinfo = zipfile.ZipInfo(self.record_path, date_time=(1980, 1, 1, 0, 0, 0))
            zinfo.external_attr = (0o664 | stat.S_IFREG) << 16
            zipfile.ZipFile.writestr(self, zinfo, buffer.getvalue())
            self._file_hashes.clear()
        super().close()
