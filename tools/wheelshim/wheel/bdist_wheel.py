"""Minimal ``bdist_wheel`` distutils command (pure-Python wheels only).

Implements the surface setuptools' PEP 517/660 backend uses:

* ``get_tag()`` — always a pure tag ``(py3, none, any)``; this shim
  refuses projects with extension modules;
* ``write_wheelfile(dir)`` — emits the ``WHEEL`` metadata file;
* ``egg2dist(egg_info, dist_info)`` — converts an ``.egg-info``
  directory to ``.dist-info`` (PKG-INFO -> METADATA with Requires-Dist
  derived from requires.txt);
* ``run()`` — builds a complete pure wheel from ``build_py`` output so
  plain ``pip install .`` / ``pip wheel .`` also work.
"""

from __future__ import annotations

import os
import shutil
from distutils import log
from distutils.core import Command
from email.parser import Parser
from pathlib import Path

from wheel import __version__ as _shim_version
from wheel.wheelfile import WheelFile

_REMOVE_FROM_DISTINFO = (
    "PKG-INFO",
    "SOURCES.txt",
    "requires.txt",
    "dependency_links.txt",
    "not-zip-safe",
    "zip-safe",
)


def _requires_to_metadata_lines(requires_text: str):
    """Translate egg-info requires.txt sections into core-metadata lines."""
    lines = []
    extra = None
    marker = None
    for raw in requires_text.splitlines():
        raw = raw.strip()
        if not raw:
            continue
        if raw.startswith("[") and raw.endswith("]"):
            section = raw[1:-1]
            if ":" in section:
                extra, marker = section.split(":", 1)
            else:
                extra, marker = section, None
            extra = extra.strip() or None
            if extra:
                lines.append(f"Provides-Extra: {extra}")
            continue
        requirement = raw
        conditions = []
        if extra:
            conditions.append(f'extra == "{extra}"')
        if marker:
            conditions.append(f"({marker})")
        if conditions:
            requirement = f"{requirement} ; {' and '.join(conditions)}"
        lines.append(f"Requires-Dist: {requirement}")
    return lines


class bdist_wheel(Command):
    """Build a pure-Python wheel (offline shim)."""

    description = "create a wheel distribution (offline shim; pure Python only)"

    user_options = [
        ("bdist-dir=", "b", "temporary directory for creating the distribution"),
        ("dist-dir=", "d", "directory to put final built distributions in"),
        ("keep-temp", "k", "keep the pseudo-installation tree"),
    ]

    boolean_options = ["keep-temp"]

    def initialize_options(self):
        self.bdist_dir = None
        self.dist_dir = None
        self.keep_temp = False

    def finalize_options(self):
        if self.bdist_dir is None:
            bdist_base = self.get_finalized_command("bdist").bdist_base
            self.bdist_dir = os.path.join(bdist_base, "wheel")
        self.set_undefined_options("bdist", ("dist_dir", "dist_dir"))
        if self.distribution.has_ext_modules():
            raise RuntimeError(
                "the offline wheel shim only builds pure-Python wheels; "
                "install the real 'wheel' package for extension modules"
            )

    # ------------------------------------------------------------------
    # API used by setuptools' dist_info / editable_wheel
    # ------------------------------------------------------------------
    def get_tag(self):
        """Pure-python tag triple."""
        return ("py3", "none", "any")

    @property
    def wheel_dist_name(self):
        """``<name>-<version>`` with PEP 491 escaping."""
        import re

        def safe(component):
            return re.sub(r"[^\w\d.]+", "_", component, flags=re.UNICODE)

        return (
            f"{safe(self.distribution.get_name())}-"
            f"{safe(self.distribution.get_version())}"
        )

    def write_wheelfile(self, wheelfile_base, generator=None):
        """Write the ``WHEEL`` metadata file into a dist-info directory."""
        generator = generator or f"wheel-shim ({_shim_version})"
        content = (
            "Wheel-Version: 1.0\n"
            f"Generator: {generator}\n"
            "Root-Is-Purelib: true\n"
            "Tag: py3-none-any\n"
        )
        os.makedirs(wheelfile_base, exist_ok=True)
        with open(os.path.join(wheelfile_base, "WHEEL"), "w", encoding="utf-8") as fh:
            fh.write(content)

    def egg2dist(self, egginfo_path, distinfo_path):
        """Convert an ``.egg-info`` directory into ``.dist-info``."""
        egginfo_path = str(egginfo_path)
        distinfo_path = str(distinfo_path)
        if os.path.exists(distinfo_path):
            shutil.rmtree(distinfo_path)
        if not os.path.isdir(egginfo_path):
            raise RuntimeError(
                f"expected an .egg-info directory at {egginfo_path!r}"
            )
        shutil.copytree(egginfo_path, distinfo_path)

        pkginfo = Path(distinfo_path, "PKG-INFO")
        metadata = Parser().parsestr(pkginfo.read_text(encoding="utf-8"))
        if metadata.get("Metadata-Version", "0") < "2.1":
            del metadata["Metadata-Version"]
            metadata["Metadata-Version"] = "2.1"

        requires = Path(distinfo_path, "requires.txt")
        if requires.exists():
            for line in _requires_to_metadata_lines(
                requires.read_text(encoding="utf-8")
            ):
                key, _, value = line.partition(": ")
                metadata[key] = value

        Path(distinfo_path, "METADATA").write_text(
            metadata.as_string(), encoding="utf-8"
        )
        for name in _REMOVE_FROM_DISTINFO:
            victim = Path(distinfo_path, name)
            if victim.exists():
                victim.unlink()

    # ------------------------------------------------------------------
    # Full (non-editable) wheel build
    # ------------------------------------------------------------------
    def run(self):
        build_scripts = self.reinitialize_command("build_scripts")
        build_scripts.executable = "python"
        build_scripts.force = True

        self.run_command("build")
        install = self.reinitialize_command("install", reinit_subcommands=True)
        install.root = self.bdist_dir
        install.compile = False
        install.skip_build = True
        install.warn_dir = False
        # Flatten the install tree: everything into the wheel root.
        install.install_lib = "."
        install.install_purelib = "."
        install.install_platlib = "."
        install.install_headers = "headers"
        install.install_scripts = f"{self.wheel_dist_name}.data/scripts"
        install.install_data = "."
        self.run_command("install")

        # Scripts installed via entry points are generated by pip at
        # install time from entry_points.txt; drop setup-time scripts dir
        # if it is empty.
        scripts_dir = os.path.join(
            self.bdist_dir, f"{self.wheel_dist_name}.data", "scripts"
        )
        if os.path.isdir(scripts_dir) and not os.listdir(scripts_dir):
            shutil.rmtree(os.path.dirname(scripts_dir))

        egg_info_cmd = self.get_finalized_command("egg_info")
        egg_info_cmd.run()
        distinfo_dir = os.path.join(
            self.bdist_dir, f"{self.wheel_dist_name}.dist-info"
        )
        self.egg2dist(egg_info_cmd.egg_info, distinfo_dir)
        self.write_wheelfile(distinfo_dir)

        os.makedirs(self.dist_dir, exist_ok=True)
        wheel_name = f"{self.wheel_dist_name}-py3-none-any.whl"
        wheel_path = os.path.join(self.dist_dir, wheel_name)
        if os.path.exists(wheel_path):
            os.unlink(wheel_path)
        log.info("creating %s", wheel_path)
        with WheelFile(wheel_path, "w") as wf:
            wf.write_files(self.bdist_dir)

        if not self.keep_temp:
            shutil.rmtree(self.bdist_dir, ignore_errors=True)

        # Let `pip wheel` discover the artifact.
        getattr(self.distribution, "dist_files", []).append(
            ("bdist_wheel", "3", wheel_path)
        )
