"""Execute RunSpecs and SweepSpecs: the API's engine room.

:func:`execute_spec` is the single code path between a declarative
:class:`~repro.api.spec.RunSpec` and pipeline execution — the CLI's
``run``, the :class:`~repro.service.BenchmarkService` workers, and
programmatic callers all land here, so repeat discipline, contract
gating, and cache routing cannot drift between surfaces.

:func:`execute_sweep` lowers a :class:`~repro.api.spec.SweepSpec` onto
the existing sweep harness (capability-aware cell skipping, best-time
repeat policy) rather than reimplementing it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, fields as dataclass_fields
from pathlib import Path
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.api.spec import RunSpec, SweepSpec
from repro.core.config import PipelineConfig
from repro.core.pipeline import run_pipeline
from repro.core.results import PipelineResult
from repro.harness.records import MeasurementRecord, best_records

#: Progress callback signature shared with the sweep harness:
#: ``fn(config, repeat_index)`` before each pipeline run.
ProgressFn = Callable[[PipelineConfig, int], None]


def rank_sha256(rank: np.ndarray) -> str:
    """Bit-exact digest of a rank vector (float64 little-endian bytes).

    The service's parity currency: two runs produced the same PageRank
    iff their digests match — no tolerance, no summary statistics.
    """
    data = np.ascontiguousarray(np.asarray(rank, dtype="<f8"))
    return hashlib.sha256(data.tobytes()).hexdigest()


@dataclass
class RunOutcome:
    """Everything one executed :class:`RunSpec` produced.

    Attributes
    ----------
    spec:
        The spec that ran.
    results:
        One :class:`~repro.core.results.PipelineResult` per repeat, in
        run order.
    records:
        Best-per-kernel :class:`MeasurementRecord`s across the repeats
        (see :func:`repro.harness.records.best_records`).
    """

    spec: RunSpec
    results: List[PipelineResult] = field(default_factory=list)
    records: List[MeasurementRecord] = field(default_factory=list)

    @property
    def result(self) -> PipelineResult:
        """The last repeat's result (reports/validation read this; for
        warm-cache scenarios it is the one showing the cache hits)."""
        return self.results[-1]

    @property
    def rank(self) -> Optional[np.ndarray]:
        """The final PageRank vector (identical across repeats)."""
        return self.results[-1].rank if self.results else None

    @property
    def rank_digest(self) -> Optional[str]:
        """Bit-exact SHA-256 of :attr:`rank` (see :func:`rank_sha256`)."""
        rank = self.rank
        return None if rank is None else rank_sha256(rank)


def execute_spec(
    spec: RunSpec,
    *,
    cache_dir: Optional[Path] = None,
    progress: Optional[ProgressFn] = None,
) -> RunOutcome:
    """Run one spec (all its repeats) and aggregate the outcome.

    Parameters
    ----------
    spec:
        What to run.
    cache_dir:
        The executing environment's artifact-cache root; consulted only
        when ``spec.cache_policy`` allows it.
    progress:
        Optional ``fn(config, repeat_index)`` status callback.

    Examples
    --------
    >>> outcome = execute_spec(RunSpec(scale=6, backend="numpy"))
    >>> len(outcome.results), len(outcome.records)
    (1, 4)
    """
    config = spec.to_config(cache_dir)
    results: List[PipelineResult] = []
    for repeat in range(spec.repeats):
        if progress is not None:
            progress(config, repeat)
        results.append(run_pipeline(config, verify=spec.verify))
    records = best_records(
        MeasurementRecord.from_result(result) for result in results
    )
    return RunOutcome(spec=spec, results=results, records=records)


def spec_cache_fields(spec: RunSpec):
    """The content-addressing fields a spec's K0/K1 artifacts key on.

    The bridge between the declarative layer and the artifact cache's
    addressing: a remote worker agent uses it to compute the *same*
    ``cache_key`` the executing pipeline will, so it can prefetch warm
    entries from the service (``GET /artifacts``) before running and
    publish fresh ones after (``PUT /artifacts``).  Returns
    ``{"k0": fields, "k1": fields}``; an empty dict when the spec's
    ``cache_policy`` disables caching (nothing would be read or
    written).  K2 entries are deliberately excluded: they are
    execution-variant-specific and cheap to rebuild from a warm K1.
    """
    from repro.core.artifacts import k0_cache_fields, k1_cache_fields

    if spec.cache_policy != "shared":
        return {}
    config = spec.to_config(None)
    return {
        "k0": k0_cache_fields(config),
        "k1": k1_cache_fields(config),
    }


def sweep_plan(sweep: SweepSpec, cache_dir: Optional[Path] = None):
    """Lower a :class:`SweepSpec` to the harness's ``SweepPlan``.

    Every non-swept pipeline field of ``sweep.base`` rides along as a
    config override, so a sweep cell differs from the base spec only on
    the grid axes.
    """
    from repro.harness.sweep import SweepPlan

    base_config = sweep.base.to_config(cache_dir)
    swept = {"scale", "edge_factor", "seed", "backend", "execution",
             "cache_dir"}
    overrides = {
        f.name: getattr(base_config, f.name)
        for f in dataclass_fields(PipelineConfig)
        if f.name not in swept
    }
    return SweepPlan(
        scales=list(sweep.scales),
        backends=list(sweep.backends),
        edge_factor=base_config.edge_factor,
        seed=base_config.seed,
        repeats=sweep.repeats,
        execution=base_config.execution,
        cache_dir=base_config.cache_dir,
        config_overrides=overrides,
    )


def sweep_cells(
    sweep: SweepSpec,
) -> List[Tuple[str, int, Optional[RunSpec]]]:
    """Lower a sweep grid to per-cell RunSpecs, in harness order.

    Returns ``(backend, scale, spec)`` triples, backend-major then
    scale order — exactly the cells :func:`execute_sweep` would run.
    Cells whose backend lacks the execution strategy's capability get
    ``spec=None`` (the harness's skip-with-warning semantics, made
    declarative so the service can record the skip in the sweep table).
    The sweep-level ``repeats`` moves onto each cell spec, where
    :func:`execute_spec`'s repeat loop applies the same best-per-kernel
    discipline the harness does.

    Raises
    ------
    ValueError
        When no backend in the grid supports the execution strategy
        (parity with :func:`repro.harness.sweep.run_sweep`).
    """
    from repro.backends.registry import get_backend
    from repro.core.executor import get_executor

    needed = get_executor(sweep.base.execution).required_capability
    cells: List[Tuple[str, int, Optional[RunSpec]]] = []
    supported = False
    for backend in sweep.backends:
        capable = needed in get_backend(backend).capabilities
        for scale in sweep.scales:
            if capable:
                cells.append((backend, scale, sweep.base.with_overrides(
                    backend=backend, scale=scale, repeats=sweep.repeats,
                )))
                supported = True
            else:
                cells.append((backend, scale, None))
    if not supported:
        raise ValueError(
            f"no backend in {list(sweep.backends)} supports execution="
            f"{sweep.base.execution!r}"
        )
    return cells


def execute_sweep(
    sweep: SweepSpec,
    *,
    cache_dir: Optional[Path] = None,
    progress: Optional[ProgressFn] = None,
) -> List[MeasurementRecord]:
    """Run a sweep grid and return its per-kernel records.

    Delegates to :func:`repro.harness.sweep.run_sweep` — cells whose
    backend lacks the execution strategy's capability are skipped with
    a warning, and contract checks follow ``sweep.base.validation``
    (default ``"contracts"``; sweeps meant for measurement should set
    ``"off"``, as the CLI does).
    """
    from repro.harness.sweep import run_sweep

    return run_sweep(
        sweep_plan(sweep, cache_dir),
        verify=sweep.base.verify,
        progress=progress,
    )
