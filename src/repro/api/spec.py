"""Declarative run specifications: the public unit of work.

The paper frames the pipeline as a *system* benchmark — the unit of
interest is a whole submitted workload, not a library call.
:class:`RunSpec` is that workload as data: a versioned, JSON
round-trippable superset of :class:`~repro.core.config.PipelineConfig`
that also captures the execution strategy, repeat count, cache policy,
and validation mode.  Everything that accepts work — the CLI, the
:class:`~repro.service.BenchmarkService`, the HTTP front end — accepts a
RunSpec (or a scenario name that resolves to one); nothing else plumbs
config fields by hand.

Design rules:

* **Round-trippable**: ``RunSpec.from_dict(spec.to_dict()) == spec``,
  always.  Unknown fields are *rejected*, not ignored — a typo'd field
  must fail loudly, not silently benchmark the wrong thing.
* **Versioned**: every serialised spec carries ``spec_version``.  Old
  documents are upgraded through :data:`_MIGRATIONS` on load; documents
  from the future are refused.
* **Environment-free**: a spec never names a cache root.  The *policy*
  ("may this run use the shared artifact cache?") is spec;
  the *location* belongs to the executing environment (CLI flag,
  service constructor).  This keeps :meth:`RunSpec.spec_hash` stable
  across machines, which is what lets the service deduplicate jobs.

:class:`SweepSpec` composes RunSpecs over a (backend × scale) grid, the
shape behind the paper's Figures 4–7.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields as dataclass_fields, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.config import (
    DEFAULT_DAMPING,
    DEFAULT_ITERATIONS,
    DEFAULT_PARALLEL_RANKS,
    DEFAULT_STREAMING_BATCH_EDGES,
    PipelineConfig,
)

#: Current serialisation version (see :data:`_MIGRATIONS`).
SPEC_VERSION = 5

#: How a run may interact with the environment's artifact cache.
CACHE_POLICIES = ("shared", "off")

#: What correctness machinery runs: ``off`` (nothing — tight benchmark
#: loops), ``contracts`` (the four inter-kernel contracts), ``full``
#: (contracts + the Section IV.D eigenvector cross-check), and
#: ``validate-only`` (the eigenvector check without contracts — the
#: CLI's ``--validate --no-verify``, useful when the contracts' extra
#: file reads would perturb I/O caches but the endpoint check is
#: still wanted).
VALIDATION_MODES = ("off", "contracts", "full", "validate-only")


def _migrate_v1(doc: Dict[str, object]) -> Dict[str, object]:
    """v1 → v2: boolean ``validate`` became the three-state
    ``validation``; ``parallel_executor`` and ``cache_policy`` were
    introduced (defaults match the old behaviour)."""
    doc = dict(doc)
    if "validate" in doc:
        doc["validation"] = "full" if doc.pop("validate") else "contracts"
    doc["spec_version"] = 2
    return doc


def _migrate_v2(doc: Dict[str, object]) -> Dict[str, object]:
    """v2 → v3: ``async_lanes`` was introduced (the default,
    ``"thread"``, matches the old behaviour — no field rewriting)."""
    doc = dict(doc)
    doc["spec_version"] = 3
    return doc


def _migrate_v3(doc: Dict[str, object]) -> Dict[str, object]:
    """v3 → v4: ``shard_plane`` and ``cache_mmap`` were introduced
    (defaults ``"pipe"``/``False`` match the old behaviour — no field
    rewriting)."""
    doc = dict(doc)
    doc["spec_version"] = 4
    return doc


def _migrate_v4(doc: Dict[str, object]) -> Dict[str, object]:
    """v4 → v5: ``trace`` was introduced (the default, ``False``,
    matches the old behaviour — no field rewriting)."""
    doc = dict(doc)
    doc["spec_version"] = 5
    return doc


#: Upgrade hooks: ``_MIGRATIONS[v]`` rewrites a version-``v`` document
#: to version ``v+1``.  Loading applies them in sequence up to
#: :data:`SPEC_VERSION`.
_MIGRATIONS: Dict[int, Callable[[Dict[str, object]], Dict[str, object]]] = {
    1: _migrate_v1,
    2: _migrate_v2,
    3: _migrate_v3,
    4: _migrate_v4,
}


@dataclass(frozen=True)
class RunSpec:
    """One declarative benchmark job.

    The pipeline-shape fields mirror
    :class:`~repro.core.config.PipelineConfig` (same names, same
    semantics, same validation — see :meth:`to_config`); the API-level
    fields describe how the job is *executed and judged*:

    Attributes
    ----------
    repeats:
        Runs of the pipeline for this job; per-kernel records keep the
        best time (standard wall-clock discipline).  Rank vectors are
        deterministic across repeats.
    cache_policy:
        ``"shared"`` — the run may read/write the executing
        environment's artifact cache; ``"off"`` — always regenerate.
    validation:
        ``"off"`` / ``"contracts"`` / ``"full"`` (see
        :data:`VALIDATION_MODES`).
    data_dir:
        Keep kernel files in this directory instead of a temp dir
        (serialised as a string for JSON friendliness).
    spec_version:
        Serialisation version stamp; not an input knob.

    Examples
    --------
    >>> spec = RunSpec(scale=8, backend="numpy")
    >>> RunSpec.from_dict(spec.to_dict()) == spec
    True
    >>> len(spec.spec_hash())
    24
    """

    scale: int
    edge_factor: int = 16
    seed: int = 1
    num_files: int = 1
    backend: str = "scipy"
    generator: str = "kronecker"
    damping: float = DEFAULT_DAMPING
    iterations: int = DEFAULT_ITERATIONS
    vertex_base: int = 0
    file_format: str = "tsv"
    sort_algorithm: str = "numpy"
    sort_by_end_vertex: bool = False
    external_sort: bool = False
    formula: str = "appendix"
    execution: str = "serial"
    parallel_ranks: int = DEFAULT_PARALLEL_RANKS
    parallel_executor: str = "sim"
    streaming_batch_edges: int = DEFAULT_STREAMING_BATCH_EDGES
    async_lanes: str = "thread"
    shard_plane: str = "pipe"
    cache_mmap: bool = False
    trace: bool = False
    data_dir: Optional[str] = None
    repeats: int = 1
    cache_policy: str = "shared"
    validation: str = "contracts"
    spec_version: int = SPEC_VERSION

    def __post_init__(self) -> None:
        if self.spec_version != SPEC_VERSION:
            raise ValueError(
                f"RunSpec is version {SPEC_VERSION}; got spec_version="
                f"{self.spec_version} (serialised documents are migrated "
                f"by RunSpec.from_dict, not the constructor)"
            )
        if not isinstance(self.repeats, int) or self.repeats < 1:
            raise ValueError(f"repeats must be an int >= 1, got {self.repeats!r}")
        if self.cache_policy not in CACHE_POLICIES:
            raise ValueError(
                f"cache_policy must be one of {CACHE_POLICIES}, "
                f"got {self.cache_policy!r}"
            )
        if self.validation not in VALIDATION_MODES:
            raise ValueError(
                f"validation must be one of {VALIDATION_MODES}, "
                f"got {self.validation!r}"
            )
        if self.data_dir is not None:
            object.__setattr__(self, "data_dir", str(self.data_dir))
        # Delegate pipeline-field validation to PipelineConfig so the
        # two surfaces can never drift on what is legal.
        self.to_config()

    # ------------------------------------------------------------------
    # Bridges
    # ------------------------------------------------------------------
    @property
    def verify(self) -> bool:
        """Whether the inter-kernel contracts run for this spec."""
        return self.validation in ("contracts", "full")

    def to_config(self, cache_dir: Optional[Path] = None) -> PipelineConfig:
        """Materialise the executable config for one environment.

        Parameters
        ----------
        cache_dir:
            The environment's artifact-cache root; ignored when the
            spec's ``cache_policy`` is ``"off"``.
        """
        return PipelineConfig(
            scale=self.scale,
            edge_factor=self.edge_factor,
            seed=self.seed,
            num_files=self.num_files,
            backend=self.backend,
            generator=self.generator,
            damping=self.damping,
            iterations=self.iterations,
            data_dir=Path(self.data_dir) if self.data_dir else None,
            vertex_base=self.vertex_base,
            file_format=self.file_format,
            sort_algorithm=self.sort_algorithm,
            sort_by_end_vertex=self.sort_by_end_vertex,
            external_sort=self.external_sort,
            formula=self.formula,
            validate=self.validation in ("full", "validate-only"),
            keep_files=self.data_dir is not None,
            execution=self.execution,
            cache_dir=(
                Path(cache_dir)
                if cache_dir is not None and self.cache_policy == "shared"
                else None
            ),
            parallel_ranks=self.parallel_ranks,
            parallel_executor=self.parallel_executor,
            streaming_batch_edges=self.streaming_batch_edges,
            async_lanes=self.async_lanes,
            shard_plane=self.shard_plane,
            cache_mmap=self.cache_mmap,
            trace=self.trace,
        )

    @classmethod
    def from_config(cls, config: PipelineConfig, **api_fields: object) -> "RunSpec":
        """Lift a legacy :class:`PipelineConfig` into a spec.

        ``validate``/``cache_dir`` map onto ``validation``/
        ``cache_policy``; extra keyword fields (``repeats``, …) pass
        through to the constructor.
        """
        api_fields.setdefault(
            "validation", "full" if config.validate else "contracts"
        )
        api_fields.setdefault(
            "cache_policy", "shared" if config.cache_dir is not None else "off"
        )
        return cls(
            scale=config.scale,
            edge_factor=config.edge_factor,
            seed=config.seed,
            num_files=config.num_files,
            backend=config.backend,
            generator=config.generator,
            damping=config.damping,
            iterations=config.iterations,
            vertex_base=config.vertex_base,
            file_format=config.file_format,
            sort_algorithm=config.sort_algorithm,
            sort_by_end_vertex=config.sort_by_end_vertex,
            external_sort=config.external_sort,
            formula=config.formula,
            execution=config.execution,
            parallel_ranks=config.parallel_ranks,
            parallel_executor=config.parallel_executor,
            streaming_batch_edges=config.streaming_batch_edges,
            async_lanes=config.async_lanes,
            shard_plane=config.shard_plane,
            cache_mmap=config.cache_mmap,
            trace=config.trace,
            data_dir=str(config.data_dir) if config.data_dir else None,
            **api_fields,  # type: ignore[arg-type]
        )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict; inverse of :meth:`from_dict`."""
        return asdict(self)

    def to_json(self) -> str:
        """Stable JSON encoding."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "RunSpec":
        """Parse a spec document, migrating old versions.

        Raises
        ------
        ValueError
            On an unknown ``spec_version`` (including documents newer
            than this library) or any unknown field.
        """
        if not isinstance(doc, dict):
            raise ValueError(f"RunSpec document must be an object, got {doc!r}")
        doc = dict(doc)
        version = doc.get("spec_version", 1)
        if not isinstance(version, int) or version < 1:
            raise ValueError(f"invalid spec_version {version!r}")
        if version > SPEC_VERSION:
            raise ValueError(
                f"spec_version {version} is newer than this library "
                f"understands (max {SPEC_VERSION})"
            )
        while version < SPEC_VERSION:
            doc = _MIGRATIONS[version](doc)
            version = doc["spec_version"]
        known = {f.name for f in dataclass_fields(cls)}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ValueError(
                f"unknown RunSpec field(s) {unknown}; known fields: "
                f"{sorted(known)}"
            )
        return cls(**doc)  # type: ignore[arg-type]

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        """Parse :meth:`to_json` output (or any spec JSON document)."""
        return cls.from_dict(json.loads(text))

    def spec_hash(self) -> str:
        """Deterministic identity of this workload (dedup key).

        Stable across processes and machines: delegates to
        :func:`repro.core.artifacts.cache_key` (SHA-256 of the
        canonical JSON) so the two content-addressing schemes share one
        encoding.

        Examples
        --------
        >>> a = RunSpec(scale=8)
        >>> a.spec_hash() == RunSpec(scale=8).spec_hash()
        True
        >>> a.spec_hash() == RunSpec(scale=9).spec_hash()
        False
        """
        from repro.core.artifacts import cache_key

        return cache_key(self.to_dict())

    def with_overrides(self, **changes: object) -> "RunSpec":
        """Functional update (delegates to ``dataclasses.replace``)."""
        return replace(self, **changes)  # type: ignore[arg-type]


@dataclass(frozen=True)
class SweepSpec:
    """A grid of RunSpecs: one base spec swept over backends × scales.

    The declarative form of :class:`repro.harness.sweep.SweepPlan` —
    JSON round-trippable and scenario-registrable.  Grid cells inherit
    every field of ``base`` except the swept axes.

    Attributes
    ----------
    base:
        Field donor for every cell.  Its ``repeats`` must be 1 — the
        sweep-level :attr:`repeats` owns that axis (the harness keeps
        the best time per kernel per cell).
    scales / backends:
        The grid axes (backend-major iteration order, matching the
        harness).
    repeats:
        Runs per cell.

    Examples
    --------
    >>> sweep = SweepSpec(base=RunSpec(scale=1), scales=(6, 8),
    ...                   backends=("scipy", "numpy"))
    >>> [s.backend for s in sweep.run_specs()]
    ['scipy', 'scipy', 'numpy', 'numpy']
    >>> SweepSpec.from_dict(sweep.to_dict()) == sweep
    True
    """

    base: RunSpec
    scales: Tuple[int, ...]
    backends: Tuple[str, ...]
    repeats: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "scales", tuple(int(s) for s in self.scales))
        object.__setattr__(self, "backends", tuple(str(b) for b in self.backends))
        if not self.scales:
            raise ValueError("SweepSpec needs at least one scale")
        if not self.backends:
            raise ValueError("SweepSpec needs at least one backend")
        if not isinstance(self.repeats, int) or self.repeats < 1:
            raise ValueError(f"repeats must be an int >= 1, got {self.repeats!r}")
        if self.base.repeats != 1:
            raise ValueError(
                "SweepSpec.base.repeats must be 1; use SweepSpec.repeats "
                "for the per-cell repeat count"
            )

    def run_specs(self) -> List[RunSpec]:
        """All cell specs, backend-major then scale order."""
        return [
            self.base.with_overrides(backend=backend, scale=scale)
            for backend in self.backends
            for scale in self.scales
        ]

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict; inverse of :meth:`from_dict`."""
        return {
            "base": self.base.to_dict(),
            "scales": list(self.scales),
            "backends": list(self.backends),
            "repeats": self.repeats,
        }

    def to_json(self) -> str:
        """Stable JSON encoding."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "SweepSpec":
        """Parse a sweep document (strict, like :meth:`RunSpec.from_dict`)."""
        if not isinstance(doc, dict):
            raise ValueError(f"SweepSpec document must be an object, got {doc!r}")
        doc = dict(doc)
        try:
            base_doc = doc.pop("base")
        except KeyError:
            raise ValueError("SweepSpec document needs a 'base' RunSpec") from None
        known = {"scales", "backends", "repeats"}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ValueError(
                f"unknown SweepSpec field(s) {unknown}; known fields: "
                f"{sorted(known | {'base'})}"
            )
        return cls(
            base=RunSpec.from_dict(base_doc),
            scales=tuple(doc.get("scales", ())),
            backends=tuple(doc.get("backends", ())),
            repeats=int(doc.get("repeats", 1)),
        )

    def spec_hash(self) -> str:
        """Deterministic identity of the whole grid."""
        from repro.core.artifacts import cache_key

        return cache_key(self.to_dict())
