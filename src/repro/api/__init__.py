"""``repro.api`` — the declarative public surface.

One way in for every kind of work:

* :class:`RunSpec` / :class:`SweepSpec` — workloads as versioned,
  JSON round-trippable data (:mod:`repro.api.spec`);
* :class:`ScenarioRegistry` — named workloads, ``repro run --scenario
  paper-s18`` (:mod:`repro.api.scenarios`);
* :func:`execute_spec` / :func:`execute_sweep` — run them
  (:mod:`repro.api.runner`);
* :class:`repro.service.BenchmarkService` — submit them to a long-lived
  concurrent job service (re-exported here lazily to avoid an import
  cycle; ``from repro.api import BenchmarkService`` works).

The older imperative surface (:class:`repro.core.pipeline.Pipeline`,
:func:`repro.core.pipeline.run_pipeline`) remains as a compatibility
shim; new code should hand specs to this package instead.
"""

from __future__ import annotations

from repro.api.spec import (
    CACHE_POLICIES,
    SPEC_VERSION,
    VALIDATION_MODES,
    RunSpec,
    SweepSpec,
)
from repro.api.scenarios import (
    BUILTIN_SCENARIOS,
    PAPER_SCALES,
    Scenario,
    ScenarioRegistry,
    default_registry,
    get_scenario,
    scenario_names,
)
from repro.api.runner import (
    RunOutcome,
    execute_spec,
    execute_sweep,
    rank_sha256,
    sweep_cells,
    sweep_plan,
)

__all__ = [
    "BUILTIN_SCENARIOS",
    "BenchmarkService",
    "CACHE_POLICIES",
    "PAPER_SCALES",
    "RunOutcome",
    "RunSpec",
    "SPEC_VERSION",
    "Scenario",
    "ScenarioRegistry",
    "SweepSpec",
    "VALIDATION_MODES",
    "default_registry",
    "execute_spec",
    "execute_sweep",
    "get_scenario",
    "rank_sha256",
    "scenario_names",
    "sweep_cells",
    "sweep_plan",
]


def __getattr__(name: str):
    # Lazy re-export: repro.service imports repro.api.spec, so a direct
    # import here would be a cycle.
    if name == "BenchmarkService":
        from repro.service import BenchmarkService

        return BenchmarkService
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
