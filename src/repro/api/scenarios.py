"""Named workloads: the scenario registry.

BigDataBench and BigOP scale to dozens of workloads by making each one
*data* handed to a harness, not a new entry point.  Same here: a
scenario is a name, a description, and a dict of
:class:`~repro.api.spec.RunSpec` fields.  ``repro run --scenario
paper-s18`` replaces flag soup, the service accepts ``{"scenario":
"smoke"}`` over HTTP, and a new workload is one
:meth:`ScenarioRegistry.register` call (or one dict entry in
:data:`BUILTIN_SCENARIOS`).

Scenario names resolve with overrides — ``registry.resolve("smoke",
seed=7)`` — so a scenario fixes the workload shape while the caller
still owns incidental knobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.api.spec import RunSpec

#: The paper's Table II scales (Section IV.A).
PAPER_SCALES = tuple(range(16, 23))

#: Backends shipped with the repo (mirrors the registry; listed here so
#: scenario construction does not import backend modules).
_BACKENDS = ("python", "numpy", "scipy", "dataframe", "graphblas")


@dataclass(frozen=True)
class Scenario:
    """One registered workload: a RunSpec field dict with a name."""

    name: str
    description: str
    fields: Dict[str, object]

    def resolve(self, **overrides: object) -> RunSpec:
        """Materialise the spec, caller overrides winning."""
        merged = dict(self.fields)
        merged.update(overrides)
        return RunSpec(**merged)  # type: ignore[arg-type]


class ScenarioRegistry:
    """Name → scenario mapping with helpful failure modes.

    Examples
    --------
    >>> registry = default_registry()
    >>> registry.resolve("smoke").scale
    6
    >>> registry.resolve("paper-s18").scale
    18
    >>> registry.resolve("smoke", seed=9).seed
    9
    """

    def __init__(self) -> None:
        self._scenarios: Dict[str, Scenario] = {}

    def register(
        self, name: str, description: str, **fields: object
    ) -> Scenario:
        """Add a scenario; field validity is checked eagerly.

        Raises
        ------
        ValueError
            On a duplicate name or fields no :class:`RunSpec` accepts
            (a registry can never hold an unrunnable scenario).
        """
        if name in self._scenarios:
            raise ValueError(f"scenario {name!r} is already registered")
        scenario = Scenario(name=name, description=description, fields=fields)
        scenario.resolve()  # validate eagerly
        self._scenarios[name] = scenario
        return scenario

    def get(self, name: str) -> Scenario:
        """Look up one scenario.

        Raises
        ------
        KeyError
            With the known names (sorted) when ``name`` is missing.
        """
        try:
            return self._scenarios[name]
        except KeyError:
            raise KeyError(
                f"unknown scenario {name!r}; known: {', '.join(self.names())}"
            ) from None

    def resolve(self, name: str, **overrides: object) -> RunSpec:
        """Materialise a scenario's :class:`RunSpec`, with overrides."""
        return self.get(name).resolve(**overrides)

    def names(self) -> List[str]:
        """Registered names, sorted."""
        return sorted(self._scenarios)

    def __iter__(self) -> Iterator[Scenario]:
        for name in self.names():
            yield self._scenarios[name]

    def __contains__(self, name: object) -> bool:
        return name in self._scenarios

    def __len__(self) -> int:
        return len(self._scenarios)

    def describe(self) -> List[Tuple[str, str]]:
        """(name, description) rows for CLI/HTTP listings."""
        return [(s.name, s.description) for s in self]


def default_registry() -> ScenarioRegistry:
    """Build the built-in registry (a fresh copy — mutate freely)."""
    registry = ScenarioRegistry()

    registry.register(
        "smoke",
        "30-second sanity workload: scale 6, numpy, contracts on",
        scale=6, backend="numpy",
    )
    for backend in _BACKENDS:
        registry.register(
            f"smoke-{backend}",
            f"smoke workload pinned to the {backend} backend",
            scale=6, backend=backend,
        )
    for scale in PAPER_SCALES:
        registry.register(
            f"paper-s{scale}",
            f"paper Table II run size: scale {scale} "
            f"(N=2^{scale}, M=16*2^{scale}), scipy",
            scale=scale, backend="scipy",
        )
    registry.register(
        "cache-warm",
        "artifact-cache behaviour probe: 3 repeats sharing one cache "
        "root; repeat 2+ should record k0/k1/k2 cache hits",
        scale=10, backend="scipy", repeats=3, cache_policy="shared",
    )
    registry.register(
        "async-overlap",
        "async executor demo at scale 12: per-kernel busy times plus "
        "overlap_saved_s in the K3 details",
        scale=12, backend="scipy", execution="async",
    )
    registry.register(
        "async-overlap-proc",
        "async executor with process codec lanes at scale 12 over 4 "
        "shards: TSV encode/decode offloaded to lane worker processes; "
        "K3 details add lane_busy_seconds per lane",
        scale=12, backend="scipy", execution="async",
        async_lanes="process", num_files=4,
    )
    registry.register(
        "async-overlap-shm",
        "async executor with process lanes and the shared-memory shard "
        "plane at scale 12 over 4 shards: edge arrays cross lane "
        "workers as ShardBuffer segments (zero-copy); K3 details add "
        "handoff_mode and shm_bytes_saved",
        scale=12, backend="scipy", execution="async",
        async_lanes="process", num_files=4, shard_plane="shm",
    )
    registry.register(
        "streaming-bounded",
        "out-of-core Kernel 2 at scale 14 with a small pass-1 batch "
        "(memory bounded by O(batch + N))",
        scale=14, backend="scipy", execution="streaming",
        streaming_batch_edges=1 << 16,
    )
    registry.register(
        "parallel-sim",
        "sharded K2+K3 over 4 simulated ranks with traffic accounting",
        scale=10, backend="scipy", execution="parallel", parallel_ranks=4,
    )
    registry.register(
        "parallel-mp",
        "sharded K2+K3 over 2 real processes (multiprocessing "
        "communicator; no aggregated traffic log)",
        scale=10, backend="scipy", execution="parallel", parallel_ranks=2,
        parallel_executor="mp",
    )
    registry.register(
        "validated",
        "scale 8 with the full eigenvector cross-check (Section IV.D)",
        scale=8, backend="scipy", validation="full",
    )
    return registry


#: Module-level default registry used by the CLI and service.
BUILTIN_SCENARIOS = default_registry()


def get_scenario(name: str, **overrides: object) -> RunSpec:
    """Resolve against the built-in registry (CLI convenience)."""
    return BUILTIN_SCENARIOS.resolve(name, **overrides)


def scenario_names() -> List[str]:
    """Built-in scenario names, sorted."""
    return BUILTIN_SCENARIOS.names()
