"""Hardware descriptions for the analytic models.

A :class:`HardwareModel` is the small set of rates the paper's "simple
computing hardware models" need: stream memory bandwidth, storage read
and write bandwidth, a latency/bandwidth (alpha-beta) network model, and
an interpreted/compiled scalar operation rate for the string-heavy
phases.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class HardwareModel:
    """Machine rates used by the kernel predictions.

    Attributes
    ----------
    name:
        Label for reports.
    mem_bw_bytes_per_s:
        Sustainable stream memory bandwidth (bytes/s).
    storage_read_bytes_per_s / storage_write_bytes_per_s:
        Sequential file I/O bandwidth (bytes/s).
    net_alpha_s:
        Per-message network latency (seconds).
    net_beta_s_per_byte:
        Inverse network bandwidth (seconds/byte).
    scalar_ops_per_s:
        Throughput of the scalar-dominated phases (string formatting /
        parsing, hash updates); the big knob separating interpreted
        from compiled implementations.
    sort_constant:
        Dimensionless fudge for comparison-sort constants relative to a
        pure streaming pass.
    """

    name: str
    mem_bw_bytes_per_s: float = 8e9
    storage_read_bytes_per_s: float = 1.5e9
    storage_write_bytes_per_s: float = 1.0e9
    net_alpha_s: float = 2e-6
    net_beta_s_per_byte: float = 1e-9
    scalar_ops_per_s: float = 5e7
    sort_constant: float = 4.0

    def __post_init__(self) -> None:
        for field_name in (
            "mem_bw_bytes_per_s",
            "storage_read_bytes_per_s",
            "storage_write_bytes_per_s",
            "net_beta_s_per_byte",
            "scalar_ops_per_s",
            "sort_constant",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be > 0")
        if self.net_alpha_s < 0:
            raise ValueError("net_alpha_s must be >= 0")

    def with_rates(self, **changes: float) -> "HardwareModel":
        """Functional update of any rate field."""
        return replace(self, **changes)


#: A modern laptop / small VM: NVMe-class storage, one memory channel
#: saturated, interpreted-language scalar rate.
LAPTOP_CLASS = HardwareModel(name="laptop-class")

#: A dual-socket server with a parallel file system, resembling the
#: paper's Xeon E5-2650 + Lustre testbed in spirit.
SERVER_CLASS = HardwareModel(
    name="server-class",
    mem_bw_bytes_per_s=50e9,
    storage_read_bytes_per_s=3e9,
    storage_write_bytes_per_s=2e9,
    net_alpha_s=1.5e-6,
    net_beta_s_per_byte=2.5e-10,
    scalar_ops_per_s=2e8,
    sort_constant=4.0,
)
