"""Model-vs-measured comparison.

Closes the loop the paper sketches in Section V: calibrate the simple
hardware model on one run, predict other scales, and quantify the error.
``compare_run`` lines up one measured pipeline run against the model;
``extrapolation_study`` calibrates at one scale and scores predictions
at others — the "predict the performance on current and proposed
systems" workflow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.config import KernelName, PipelineConfig
from repro.core.pipeline import run_pipeline
from repro.core.results import PipelineResult
from repro.perfmodel.calibrate import calibrate_from_run
from repro.perfmodel.hardware import HardwareModel, LAPTOP_CLASS
from repro.perfmodel.kernels import predict_pipeline

_KERNEL_ORDER = [
    KernelName.K0_GENERATE,
    KernelName.K1_SORT,
    KernelName.K2_FILTER,
    KernelName.K3_PAGERANK,
]


@dataclass(frozen=True)
class KernelComparison:
    """Measured vs predicted numbers for one kernel.

    Attributes
    ----------
    kernel:
        Kernel id string.
    measured_eps / predicted_eps:
        Edges per second, measured and modelled.
    error_factor:
        ``max(m, p) / min(m, p)`` — 1.0 is perfect, 2.0 is off by 2x
        either way.
    dominant_term:
        The resource the model says bounds this kernel.
    """

    kernel: str
    measured_eps: float
    predicted_eps: float
    error_factor: float
    dominant_term: str


def compare_run(
    result: PipelineResult, hw: HardwareModel
) -> List[KernelComparison]:
    """Line up one measured run against the model's predictions."""
    predictions = {
        p.kernel: p
        for p in predict_pipeline(
            hw, result.config.num_edges, iterations=result.config.iterations
        )
    }
    comparisons = []
    for kernel_name, prediction_key in zip(
        _KERNEL_ORDER, ("k0", "k1", "k2", "k3")
    ):
        measured = result.kernel(kernel_name).edges_per_second
        prediction = predictions[prediction_key]
        predicted = prediction.edges_per_second
        if measured <= 0 or predicted <= 0:
            factor = float("inf")
        else:
            factor = max(measured, predicted) / min(measured, predicted)
        comparisons.append(
            KernelComparison(
                kernel=kernel_name.value,
                measured_eps=measured,
                predicted_eps=predicted,
                error_factor=factor,
                dominant_term=max(prediction.terms, key=prediction.terms.get),
            )
        )
    return comparisons


@dataclass
class ExtrapolationStudy:
    """Calibrate at one scale, predict others.

    Attributes
    ----------
    calibration_scale:
        The scale whose run fitted the model.
    hardware:
        The calibrated model.
    comparisons:
        Mapping of scale -> per-kernel comparisons at that scale.
    """

    calibration_scale: int
    hardware: HardwareModel
    comparisons: Dict[int, List[KernelComparison]]

    def worst_error(self) -> float:
        """Largest error factor across all predicted scales/kernels."""
        factors = [
            c.error_factor
            for comps in self.comparisons.values()
            for c in comps
        ]
        return max(factors) if factors else float("inf")


def extrapolation_study(
    *,
    calibration_scale: int = 10,
    predicted_scales: Optional[List[int]] = None,
    backend: str = "scipy",
    seed: int = 1,
    base: HardwareModel = LAPTOP_CLASS,
) -> ExtrapolationStudy:
    """Calibrate on one scale and score predictions at other scales.

    Runs the pipeline once at ``calibration_scale`` to fit the model,
    then once per entry of ``predicted_scales`` to measure the model's
    extrapolation error.

    Examples
    --------
    >>> study = extrapolation_study(calibration_scale=8,
    ...                             predicted_scales=[9], seed=3)
    >>> study.worst_error() < 50   # loose bound; models are simple
    True
    """
    predicted_scales = predicted_scales or [calibration_scale + 2]
    calibration_run = run_pipeline(
        PipelineConfig(scale=calibration_scale, seed=seed, backend=backend),
        verify=False,
    )
    hw = calibrate_from_run(calibration_run, base)

    comparisons: Dict[int, List[KernelComparison]] = {}
    for scale in predicted_scales:
        run = run_pipeline(
            PipelineConfig(scale=scale, seed=seed, backend=backend),
            verify=False,
        )
        comparisons[scale] = compare_run(run, hw)
    return ExtrapolationStudy(
        calibration_scale=calibration_scale,
        hardware=hw,
        comparisons=comparisons,
    )


def render_comparison(comparisons: List[KernelComparison]) -> str:
    """Monospace table of one scale's model-vs-measured numbers."""
    from repro.harness.tables import render_table

    rows = [
        [
            c.kernel,
            f"{c.measured_eps:,.0f}",
            f"{c.predicted_eps:,.0f}",
            f"{c.error_factor:.2f}x",
            c.dominant_term,
        ]
        for c in comparisons
    ]
    return render_table(
        ["kernel", "measured e/s", "model e/s", "error", "model bottleneck"],
        rows,
    )
