"""Calibrate a hardware model from a measured pipeline run.

The analytic models have free rate parameters; fitting them to one
measured run (one scale, one backend) lets the model *extrapolate* to
other scales — the workflow the paper sketches for predicting
performance "on current and proposed systems".

The calibration is deliberately simple (the models are simple): each
measured kernel adjusts the rate of the resource the model says
dominates that kernel, scaled so the model reproduces the measurement
exactly at the calibration point.
"""

from __future__ import annotations

from repro.core.config import KernelName
from repro.core.results import PipelineResult
from repro.perfmodel.hardware import HardwareModel
from repro.perfmodel.kernels import (
    predict_kernel0,
    predict_kernel1,
    predict_kernel2,
    predict_kernel3,
)


def calibrate_from_run(result: PipelineResult, base: HardwareModel) -> HardwareModel:
    """Return ``base`` with rates rescaled to match a measured run.

    Parameters
    ----------
    result:
        A completed pipeline run (all four kernels present).
    base:
        Starting hardware model; its rate *ratios* are preserved within
        each kernel, only the dominant rate is rescaled.

    Notes
    -----
    Kernel 3 calibrates memory bandwidth; Kernel 0 calibrates storage
    write; Kernel 1 storage read is inferred after accounting for the
    write rate; Kernel 2 calibrates the scalar-op rate when parsing
    dominates, else memory bandwidth (already set by K3, so K2's
    residual lands on the scalar rate).  Calibration order matters and
    is fixed: K3 -> K0 -> K1 -> K2.
    """
    m = result.config.num_edges
    iterations = result.config.iterations
    hw = base

    # K3 -> memory bandwidth.
    measured = result.kernel(KernelName.K3_PAGERANK).seconds
    if measured > 0:
        predicted = predict_kernel3(hw, m, iterations=iterations).seconds
        if predicted > 0:
            hw = hw.with_rates(
                mem_bw_bytes_per_s=hw.mem_bw_bytes_per_s * predicted / measured
            )

    # K0 -> storage write (and formatting scalar rate if that dominates).
    measured = result.kernel(KernelName.K0_GENERATE).seconds
    if measured > 0:
        pred = predict_kernel0(hw, m)
        if pred.seconds > 0:
            factor = pred.seconds / measured
            if max(pred.terms, key=pred.terms.get) == "format_scalar":
                hw = hw.with_rates(scalar_ops_per_s=hw.scalar_ops_per_s * factor)
            else:
                hw = hw.with_rates(
                    storage_write_bytes_per_s=hw.storage_write_bytes_per_s * factor
                )

    # K1 -> storage read / sort constant.
    measured = result.kernel(KernelName.K1_SORT).seconds
    if measured > 0:
        pred = predict_kernel1(hw, m)
        if pred.seconds > 0:
            factor = pred.seconds / measured
            dominant = max(pred.terms, key=pred.terms.get)
            if dominant == "storage_read":
                hw = hw.with_rates(
                    storage_read_bytes_per_s=hw.storage_read_bytes_per_s * factor
                )
            elif dominant == "sort_memory":
                hw = hw.with_rates(sort_constant=hw.sort_constant / factor)
            else:
                hw = hw.with_rates(scalar_ops_per_s=hw.scalar_ops_per_s * factor)

    # K2 -> whatever residual resource dominates it.
    measured = result.kernel(KernelName.K2_FILTER).seconds
    if measured > 0:
        pred = predict_kernel2(hw, m)
        if pred.seconds > 0:
            factor = pred.seconds / measured
            dominant = max(pred.terms, key=pred.terms.get)
            if dominant == "parse_scalar":
                hw = hw.with_rates(scalar_ops_per_s=hw.scalar_ops_per_s * factor)
            # memory/storage rates already pinned by K3/K1 — leave them.

    return hw.with_rates() if hw is base else hw
