"""Analytic performance models.

Paper Section V: "The computations are also simple enough that
performance predictions can be made based on simple hardware models."
This package implements those models:

* :class:`HardwareModel` — a machine description (memory bandwidth,
  storage read/write bandwidth, network alpha-beta, scalar op rate);
* :mod:`repro.perfmodel.kernels` — per-kernel byte/operation counting
  and predicted edges/second, serial and parallel;
* :func:`calibrate_from_run` — fit the free parameters of a
  :class:`HardwareModel` from one measured pipeline run so predictions
  extrapolate across scales.
"""

from __future__ import annotations

from repro.perfmodel.hardware import HardwareModel, LAPTOP_CLASS, SERVER_CLASS
from repro.perfmodel.kernels import (
    KernelPrediction,
    predict_kernel0,
    predict_kernel1,
    predict_kernel2,
    predict_kernel3,
    predict_parallel_kernel3,
    predict_pipeline,
)
from repro.perfmodel.calibrate import calibrate_from_run
from repro.perfmodel.compare import (
    ExtrapolationStudy,
    KernelComparison,
    compare_run,
    extrapolation_study,
    render_comparison,
)

__all__ = [
    "ExtrapolationStudy",
    "HardwareModel",
    "KernelComparison",
    "KernelPrediction",
    "LAPTOP_CLASS",
    "SERVER_CLASS",
    "calibrate_from_run",
    "compare_run",
    "extrapolation_study",
    "predict_kernel0",
    "predict_kernel1",
    "predict_kernel2",
    "predict_kernel3",
    "predict_parallel_kernel3",
    "predict_pipeline",
    "render_comparison",
]
