"""Per-kernel analytic cost models.

Each kernel's predicted time is the max of its bottleneck terms
(bandwidth roofline) plus the scalar-work term:

* **K0** — write ``M`` edges as text (~``bytes_per_edge_text`` bytes
  each): storage-write bound, plus per-edge formatting scalar work;
* **K1** — read + write the same bytes, plus ``sort_constant * M log M``
  comparison work through memory;
* **K2** — read bytes, plus several streaming passes over the edge
  arrays (dedup sort, bincounts, scatter);
* **K3** — ``iterations`` SpMVs: each touches every stored entry
  (value + column index + gather/scatter traffic ≈
  ``spmv_bytes_per_edge`` bytes), memory-bandwidth bound;
* **parallel K3** — adds the per-iteration allreduce term
  ``2 (p-1)/p * N * 8`` bytes at ``alpha + beta`` cost, the term the
  paper predicts dominates.

These are *shape* models: they exist to be compared against measured
edges/second curves (Figures 4–7) and to extrapolate — not to be exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro._util import check_positive_int
from repro.perfmodel.hardware import HardwareModel

#: Average text bytes per edge in TSV form ("123456\t654321\n" ≈ 14–16
#: bytes at benchmark scales).
TEXT_BYTES_PER_EDGE = 15.0
#: Binary bytes per edge in memory (two int64).
MEM_BYTES_PER_EDGE = 16.0
#: Bytes a CSR/COO SpMV moves per stored entry (value 8B + index 8B +
#: amortised vector gather/scatter ≈ 8B).
SPMV_BYTES_PER_EDGE = 24.0


@dataclass(frozen=True)
class KernelPrediction:
    """Predicted cost breakdown for one kernel.

    Attributes
    ----------
    kernel:
        Kernel label (``k0`` … ``k3``).
    seconds:
        Predicted wall-clock seconds (max of terms + serial terms).
    edges_per_second:
        The benchmark metric implied by ``seconds``.
    terms:
        Named component times (storage/memory/network/scalar) — useful
        to see *which* resource the model thinks dominates.
    """

    kernel: str
    seconds: float
    edges_per_second: float
    terms: Dict[str, float]


def _prediction(kernel: str, edges_metric: int, terms: Dict[str, float]) -> KernelPrediction:
    seconds = max(terms.values()) if terms else 0.0
    eps = edges_metric / seconds if seconds > 0 else float("inf")
    return KernelPrediction(kernel=kernel, seconds=seconds,
                            edges_per_second=eps, terms=dict(terms))


def predict_kernel0(hw: HardwareModel, num_edges: int) -> KernelPrediction:
    """Generate + write: storage-write vs formatting-scalar roofline."""
    check_positive_int("num_edges", num_edges)
    text_bytes = num_edges * TEXT_BYTES_PER_EDGE
    terms = {
        "storage_write": text_bytes / hw.storage_write_bytes_per_s,
        "generate_memory": num_edges * MEM_BYTES_PER_EDGE / hw.mem_bw_bytes_per_s,
        "format_scalar": num_edges / hw.scalar_ops_per_s,
    }
    return _prediction("k0", num_edges, terms)


def predict_kernel1(hw: HardwareModel, num_edges: int) -> KernelPrediction:
    """Read + sort + write: the Sort-benchmark-like kernel."""
    check_positive_int("num_edges", num_edges)
    text_bytes = num_edges * TEXT_BYTES_PER_EDGE
    sort_bytes = (
        hw.sort_constant
        * num_edges
        * MEM_BYTES_PER_EDGE
        * max(1.0, math.log2(max(num_edges, 2)) / 16.0)
    )
    terms = {
        "storage_read": text_bytes / hw.storage_read_bytes_per_s,
        "storage_write": text_bytes / hw.storage_write_bytes_per_s,
        "sort_memory": sort_bytes / hw.mem_bw_bytes_per_s,
        "parse_scalar": num_edges / hw.scalar_ops_per_s,
    }
    return _prediction("k1", num_edges, terms)


def predict_kernel2(hw: HardwareModel, num_edges: int) -> KernelPrediction:
    """Read + construct + filter + normalise: ~6 streaming passes."""
    check_positive_int("num_edges", num_edges)
    text_bytes = num_edges * TEXT_BYTES_PER_EDGE
    passes = 6.0
    terms = {
        "storage_read": text_bytes / hw.storage_read_bytes_per_s,
        "construct_memory": passes * num_edges * MEM_BYTES_PER_EDGE / hw.mem_bw_bytes_per_s,
        "parse_scalar": num_edges / hw.scalar_ops_per_s,
    }
    return _prediction("k2", num_edges, terms)


def predict_kernel3(
    hw: HardwareModel, num_edges: int, *, iterations: int = 20
) -> KernelPrediction:
    """Fixed-iteration SpMV: memory-bandwidth bound."""
    check_positive_int("num_edges", num_edges)
    check_positive_int("iterations", iterations)
    spmv_bytes = iterations * num_edges * SPMV_BYTES_PER_EDGE
    terms = {
        "spmv_memory": spmv_bytes / hw.mem_bw_bytes_per_s,
    }
    return _prediction("k3", iterations * num_edges, terms)


def predict_parallel_kernel3(
    hw: HardwareModel,
    num_edges: int,
    num_vertices: int,
    num_ranks: int,
    *,
    iterations: int = 20,
) -> KernelPrediction:
    """Parallel K3: local SpMV shrinks with p, allreduce does not.

    The per-iteration allreduce of the length-``N`` float64 partial
    vector costs ``2(p-1) * (alpha + 8N * beta)`` under the naive model;
    this term's independence from ``p`` (in bytes per rank) is why the
    paper expects Kernel 3 to become network-limited.
    """
    check_positive_int("num_ranks", num_ranks)
    local = predict_kernel3(hw, max(num_edges // num_ranks, 1), iterations=iterations)
    vector_bytes = 8.0 * num_vertices
    allreduce_seconds = (
        iterations * 2.0 * (num_ranks - 1)
        * (hw.net_alpha_s + vector_bytes * hw.net_beta_s_per_byte)
    )
    terms = dict(local.terms)
    terms["allreduce_network"] = allreduce_seconds
    # Compute and communication overlap is not assumed: total is sum of
    # the local bottleneck and the network term.
    seconds = max(terms["spmv_memory"], 1e-30) + allreduce_seconds
    eps = iterations * num_edges / seconds if seconds > 0 else float("inf")
    return KernelPrediction("k3-parallel", seconds, eps, terms)


def predict_pipeline(
    hw: HardwareModel, num_edges: int, *, iterations: int = 20
) -> List[KernelPrediction]:
    """All four serial kernel predictions for one problem size."""
    return [
        predict_kernel0(hw, num_edges),
        predict_kernel1(hw, num_edges),
        predict_kernel2(hw, num_edges),
        predict_kernel3(hw, num_edges, iterations=iterations),
    ]
