"""Random-number plumbing.

Every stochastic component in the library takes a ``seed`` argument that
may be ``None`` (fresh entropy), an ``int``, or an existing
``numpy.random.Generator``.  ``resolve_rng`` normalises all three to a
``Generator``; ``derive_seed`` deterministically derives independent child
seeds (for per-shard / per-rank streams) so parallel generation never
shares a stream.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def resolve_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for any accepted seed form.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a reproducible stream, or
        an existing ``Generator`` which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, bool) or not isinstance(seed, (int, np.integer)):
        raise TypeError(
            f"seed must be None, int, or numpy Generator, got {type(seed).__name__}"
        )
    return np.random.default_rng(int(seed))


def derive_seed(base_seed: int, *path: int) -> int:
    """Derive a child seed from ``base_seed`` and an index path.

    Uses numpy's ``SeedSequence`` spawning discipline so that
    ``derive_seed(s, i)`` and ``derive_seed(s, j)`` yield independent
    streams for ``i != j``, and nesting (``derive_seed(s, i, j)``) is
    stable across processes.

    Parameters
    ----------
    base_seed:
        Root seed (non-negative integer).
    path:
        One or more non-negative integers identifying the child stream,
        e.g. ``(shard_index,)`` or ``(rank, round)``.

    Returns
    -------
    int
        A 63-bit seed suitable for ``numpy.random.default_rng``.
    """
    if not path:
        raise ValueError("derive_seed requires at least one path component")
    for component in path:
        if component < 0:
            raise ValueError(f"path components must be >= 0, got {component}")
    entropy = (int(base_seed),) + tuple(int(p) for p in path)
    seq = np.random.SeedSequence(entropy)
    return int(seq.generate_state(1, dtype=np.uint64)[0] >> 1)
