"""Argument-validation helpers shared across the library.

All helpers raise ``ValueError`` (or ``TypeError`` for outright wrong
types) with messages that name the offending parameter, so errors surface
close to the caller's mistake rather than deep inside numpy.
"""

from __future__ import annotations

from typing import Any, Sized

import numpy as np


def check_positive_int(name: str, value: Any) -> int:
    """Validate that ``value`` is an integer >= 1 and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return int(value)


def check_nonneg_int(name: str, value: Any) -> int:
    """Validate that ``value`` is an integer >= 0 and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return int(value)


def check_probability(name: str, value: Any) -> float:
    """Validate that ``value`` lies in [0, 1] and return it as ``float``."""
    try:
        out = float(value)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be a number, got {type(value).__name__}") from exc
    if not 0.0 <= out <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {out}")
    return out


def check_in_range(name: str, value: float, lo: float, hi: float) -> float:
    """Validate ``lo <= value <= hi`` and return ``value`` as ``float``."""
    out = float(value)
    if not lo <= out <= hi:
        raise ValueError(f"{name} must be within [{lo}, {hi}], got {out}")
    return out


def check_same_length(name_a: str, a: Sized, name_b: str, b: Sized) -> None:
    """Validate that two sized containers have equal length."""
    if len(a) != len(b):
        raise ValueError(
            f"{name_a} and {name_b} must have the same length: "
            f"{len(a)} != {len(b)}"
        )


def check_dtype(name: str, array: np.ndarray, kind: str) -> np.ndarray:
    """Validate that ``array`` has dtype kind ``kind`` (e.g. 'i', 'f').

    Returns the array unchanged so the call can be inlined in expressions.
    """
    if not isinstance(array, np.ndarray):
        raise TypeError(f"{name} must be a numpy array, got {type(array).__name__}")
    if array.dtype.kind != kind:
        raise ValueError(
            f"{name} must have dtype kind {kind!r}, got {array.dtype} "
            f"(kind {array.dtype.kind!r})"
        )
    return array
