"""Wall-clock timing primitives used by kernels and the harness.

The benchmark's headline metric is *edges per second*, so timing must be
monotonic, low-overhead, and easy to aggregate.  ``StopWatch`` is a small
re-startable timer; ``Timings`` accumulates named durations (e.g. the read
/ compute / write phases inside a kernel); ``timed`` is a context manager
for ad-hoc measurement.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


class StopWatch:
    """A re-startable monotonic wall-clock timer.

    Examples
    --------
    >>> sw = StopWatch().start()
    >>> _ = sum(range(1000))
    >>> elapsed = sw.stop()
    >>> elapsed >= 0.0
    True
    """

    __slots__ = ("_start", "_elapsed", "_running")

    def __init__(self) -> None:
        self._start = 0.0
        self._elapsed = 0.0
        self._running = False

    def start(self) -> "StopWatch":
        """Start (or resume) the timer.  Idempotent while running."""
        if not self._running:
            self._start = time.perf_counter()
            self._running = True
        return self

    def stop(self) -> float:
        """Stop the timer and return total accumulated seconds."""
        if self._running:
            self._elapsed += time.perf_counter() - self._start
            self._running = False
        return self._elapsed

    def reset(self) -> None:
        """Zero the accumulator and stop the timer."""
        self._start = 0.0
        self._elapsed = 0.0
        self._running = False

    @property
    def running(self) -> bool:
        """Whether the timer is currently accumulating."""
        return self._running

    @property
    def elapsed(self) -> float:
        """Accumulated seconds, including the live segment if running."""
        if self._running:
            return self._elapsed + (time.perf_counter() - self._start)
        return self._elapsed


@dataclass
class Timings:
    """Named wall-clock durations, e.g. per-phase breakdown of a kernel.

    Attributes
    ----------
    entries:
        Mapping of phase name to accumulated seconds.
    """

    entries: Dict[str, float] = field(default_factory=dict)

    def add(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` against phase ``name``."""
        if seconds < 0:
            raise ValueError(f"negative duration for {name!r}: {seconds}")
        self.entries[name] = self.entries.get(name, 0.0) + seconds

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        """Context manager measuring the enclosed block into ``name``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - t0)

    @property
    def total(self) -> float:
        """Sum of all phase durations."""
        return sum(self.entries.values())

    def merged_with(self, other: "Timings") -> "Timings":
        """Return a new ``Timings`` combining both accumulators."""
        merged = Timings(dict(self.entries))
        for name, seconds in other.entries.items():
            merged.add(name, seconds)
        return merged

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict copy of the phase durations."""
        return dict(self.entries)


@contextmanager
def timed() -> Iterator[StopWatch]:
    """Context manager yielding a running :class:`StopWatch`.

    The watch is stopped when the block exits, so ``watch.elapsed`` after
    the ``with`` gives the block's wall-clock duration.

    Examples
    --------
    >>> with timed() as watch:
    ...     _ = [i * i for i in range(100)]
    >>> watch.elapsed > 0
    True
    """
    watch = StopWatch().start()
    try:
        yield watch
    finally:
        watch.stop()
