"""Internal shared utilities: timing, RNG plumbing, argument validation.

Nothing in this package is part of the public API; modules under
``repro._util`` may change without notice.  Public code should import the
re-exported names from the owning subsystem instead.
"""

from __future__ import annotations

from repro._util.timing import StopWatch, Timings, timed
from repro._util.checks import (
    check_dtype,
    check_in_range,
    check_nonneg_int,
    check_positive_int,
    check_probability,
    check_same_length,
)
from repro._util.rng import derive_seed, resolve_rng

__all__ = [
    "StopWatch",
    "Timings",
    "timed",
    "check_dtype",
    "check_in_range",
    "check_nonneg_int",
    "check_positive_int",
    "check_probability",
    "check_same_length",
    "derive_seed",
    "resolve_rng",
]
