"""Figure series and ASCII rendering (the paper's Figures 4–7).

Each figure plots *edges per second* against *number of edges* on
log-log axes, one series per implementation.  ``build_figure_series``
reshapes sweep records into that form; ``render_figure`` draws an ASCII
log-log chart plus the underlying numbers (the numbers are the real
deliverable — the chart is for quick reading in a terminal).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.config import KernelName
from repro.harness.records import MeasurementRecord

#: Paper figure id -> kernel measured in it.
FIGURE_KERNELS = {
    "fig4": KernelName.K0_GENERATE,
    "fig5": KernelName.K1_SORT,
    "fig6": KernelName.K2_FILTER,
    "fig7": KernelName.K3_PAGERANK,
}


@dataclass
class FigureSeries:
    """One figure's data: per-backend (num_edges, edges_per_second) points.

    Attributes
    ----------
    figure_id:
        ``fig4`` … ``fig7``.
    kernel:
        The kernel the figure measures.
    series:
        Mapping backend -> list of (M, edges/s) points, ascending in M.
    """

    figure_id: str
    kernel: KernelName
    series: Dict[str, List[Tuple[int, float]]] = field(default_factory=dict)

    def backends(self) -> List[str]:
        """Series names in insertion order."""
        return list(self.series)


def build_figure_series(
    figure_id: str, records: Sequence[MeasurementRecord]
) -> FigureSeries:
    """Reshape sweep records into one paper figure's series.

    Artifact-cache hits (``record.cached``) are excluded: their
    edges/second measures a manifest read, not the kernel, and must not
    appear as generate/sort throughput in the paper figures.

    Raises
    ------
    KeyError
        For unknown figure ids.
    """
    try:
        kernel = FIGURE_KERNELS[figure_id]
    except KeyError:
        valid = ", ".join(sorted(FIGURE_KERNELS))
        raise KeyError(f"unknown figure {figure_id!r}; available: {valid}") from None
    figure = FigureSeries(figure_id=figure_id, kernel=kernel)
    for record in records:
        if record.kernel != kernel.value or record.cached:
            continue
        figure.series.setdefault(record.backend, []).append(
            (record.num_edges, record.edges_per_second)
        )
    for points in figure.series.values():
        points.sort(key=lambda p: p[0])
    return figure


_MARKERS = "ox+*#@%&"


def render_figure(
    figure: FigureSeries,
    *,
    width: int = 64,
    height: int = 18,
) -> str:
    """ASCII log-log chart plus the data table for one figure.

    Each backend gets a marker; points landing on the same cell show the
    later backend's marker.  Below the chart the exact numbers are
    tabulated (the chart is a sanity view, the table is the record).
    """
    lines: List[str] = []
    title = {
        "fig4": "Figure 4 — Kernel 0 (generate+write) edges/s vs M",
        "fig5": "Figure 5 — Kernel 1 (sort) edges/s vs M",
        "fig6": "Figure 6 — Kernel 2 (filter) edges/s vs M",
        "fig7": "Figure 7 — Kernel 3 (PageRank) edges/s vs M",
    }.get(figure.figure_id, figure.figure_id)
    lines.append(title)

    all_points = [p for pts in figure.series.values() for p in pts]
    if not all_points:
        lines.append("(no data)")
        return "\n".join(lines)

    xs = [p[0] for p in all_points]
    ys = [p[1] for p in all_points if p[1] > 0 and math.isfinite(p[1])]
    if not ys:
        lines.append("(all throughputs zero/non-finite)")
        return "\n".join(lines)
    lx0, lx1 = math.log10(min(xs)), math.log10(max(xs))
    ly0, ly1 = math.log10(min(ys)), math.log10(max(ys))
    lx1 = lx1 if lx1 > lx0 else lx0 + 1.0
    ly1 = ly1 if ly1 > ly0 else ly0 + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (backend, points) in enumerate(figure.series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for m, eps in points:
            if eps <= 0 or not math.isfinite(eps):
                continue
            col = int((math.log10(m) - lx0) / (lx1 - lx0) * (width - 1))
            row = int((math.log10(eps) - ly0) / (ly1 - ly0) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines.append(f"  edges/s (log) range [1e{ly0:.1f}, 1e{ly1:.1f}]")
    for row in grid:
        lines.append("  |" + "".join(row))
    lines.append("  +" + "-" * width)
    lines.append(f"   edges M (log) range [1e{lx0:.1f}, 1e{lx1:.1f}]")
    legend = "   legend: " + "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}"
        for i, name in enumerate(figure.series)
    )
    lines.append(legend)

    lines.append("")
    header = ["backend"] + [
        f"M={m}" for m in sorted({p[0] for p in all_points})
    ]
    lines.append(" | ".join(header))
    for backend, points in figure.series.items():
        by_m = dict(points)
        cells = [backend] + [
            f"{by_m[m]:.3g}" if m in by_m else "-"
            for m in sorted({p[0] for p in all_points})
        ]
        lines.append(" | ".join(cells))
    return "\n".join(lines)
