"""Measurement records: one row per (backend, scale, kernel).

The harness's unit of data, flat enough to dump as CSV/JSON and
re-aggregate into the paper's tables and figure series.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterable, List

from repro.core.config import KernelName
from repro.core.results import PipelineResult


@dataclass(frozen=True)
class MeasurementRecord:
    """One kernel measurement from one pipeline run.

    Attributes
    ----------
    backend:
        Backend name.
    scale:
        Graph500 scale factor.
    num_edges:
        ``M`` for the run.
    kernel:
        Kernel id (``k0-generate`` …).
    seconds:
        Measured wall-clock time.
    edges_per_second:
        The benchmark metric (``M/t`` or ``20M/t``).
    officially_timed:
        False for Kernel 0.
    cached:
        True when the kernel's output came from the artifact cache
        (``details["artifact_cache"] == "hit"``) — ``seconds`` then
        measures a cache read, not the kernel's real work, and must not
        be presented as generate/sort throughput.
    """

    backend: str
    scale: int
    num_edges: int
    kernel: str
    seconds: float
    edges_per_second: float
    officially_timed: bool
    cached: bool = False

    @classmethod
    def from_result(cls, result: PipelineResult) -> List["MeasurementRecord"]:
        """Explode a pipeline result into per-kernel records."""
        records = []
        for kernel_result in result.kernels:
            records.append(
                cls(
                    backend=result.config.backend,
                    scale=result.config.scale,
                    num_edges=result.config.num_edges,
                    kernel=kernel_result.kernel.value,
                    seconds=kernel_result.seconds,
                    edges_per_second=kernel_result.edges_per_second,
                    officially_timed=kernel_result.officially_timed,
                    cached=(
                        kernel_result.details.get("artifact_cache") == "hit"
                    ),
                )
            )
        return records


def best_records(
    runs: Iterable[List[MeasurementRecord]],
) -> List[MeasurementRecord]:
    """Best record per kernel across repeated runs of one config.

    The record kept for each kernel is the one with the smallest
    measured time — except that an artifact-cache *hit* never displaces
    a real measurement: a cache read times the manifest load, not the
    kernel's work.  Hit timings survive only when every run hit (the
    caller is expected to flag those records — see
    :func:`repro.harness.sweep.run_sweep`).

    Shared by the sweep harness and :func:`repro.api.execute_spec` so
    the repeat discipline cannot drift between the two surfaces.
    """
    best: Dict[str, MeasurementRecord] = {}
    for records in runs:
        for record in records:
            current = best.get(record.kernel)
            if (
                current is None
                or (current.cached and not record.cached)
                or (current.cached == record.cached
                    and record.seconds < current.seconds)
            ):
                best[record.kernel] = record
    return [best[kernel] for kernel in sorted(best)]


def save_records(records: List[MeasurementRecord], path: Path) -> None:
    """Write records as JSON (``.json``) or CSV (anything else)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.suffix == ".json":
        path.write_text(
            json.dumps([asdict(r) for r in records], indent=2, sort_keys=True),
            encoding="utf-8",
        )
        return
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.DictWriter(
            fh,
            fieldnames=[
                "backend", "scale", "num_edges", "kernel", "seconds",
                "edges_per_second", "officially_timed", "cached",
            ],
        )
        writer.writeheader()
        for record in records:
            writer.writerow(asdict(record))


def load_records(path: Path) -> List[MeasurementRecord]:
    """Inverse of :func:`save_records` for both formats."""
    path = Path(path)
    if path.suffix == ".json":
        rows = json.loads(path.read_text(encoding="utf-8"))
    else:
        with open(path, newline="", encoding="utf-8") as fh:
            rows = list(csv.DictReader(fh))
    records = []
    for row in rows:
        records.append(
            MeasurementRecord(
                backend=str(row["backend"]),
                scale=int(row["scale"]),
                num_edges=int(row["num_edges"]),
                kernel=str(row["kernel"]),
                seconds=float(row["seconds"]),
                edges_per_second=float(row["edges_per_second"]),
                officially_timed=(
                    row["officially_timed"] in (True, "True", "true", "1")
                ),
                cached=(
                    row.get("cached", False) in (True, "True", "true", "1")
                ),
            )
        )
    return records


def kernel_records(
    records: List[MeasurementRecord], kernel: KernelName
) -> List[MeasurementRecord]:
    """Filter records to one kernel."""
    return [r for r in records if r.kernel == kernel.value]


def by_backend(records: List[MeasurementRecord]) -> Dict[str, List[MeasurementRecord]]:
    """Group records per backend, preserving order."""
    out: Dict[str, List[MeasurementRecord]] = {}
    for record in records:
        out.setdefault(record.backend, []).append(record)
    return out
