"""Source-lines-of-code counting (the paper's Table I).

Table I compares implementation effort across languages by SLOC
(C++ 494, Python 162, Pandas 162, Matlab 102, Octave 102, Julia 162).
Here the "languages" are backend modules; :func:`backend_sloc_table`
counts each backend's implementation file the same way the paper's
convention does: non-blank, non-comment source lines (docstrings count
as comments, since they are documentation, not code).
"""

from __future__ import annotations

import ast
import io
import tokenize
from pathlib import Path
from typing import Dict, List

from repro.backends.registry import available_backends


def count_sloc(source: str) -> int:
    """Count non-blank, non-comment, non-docstring lines of Python.

    Comment lines (``#``) and docstring-only lines are excluded via the
    token stream; blank lines are excluded trivially.

    Examples
    --------
    >>> count_sloc('x = 1\\n# comment\\n\\ny = 2\\n')
    2
    """
    comment_lines = set()
    docstring_lines = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except tokenize.TokenizeError as exc:  # pragma: no cover - invalid input
        raise ValueError(f"cannot tokenize source: {exc}") from exc
    for token in tokens:
        if token.type == tokenize.COMMENT:
            comment_lines.add(token.start[0])

    # Docstrings: string-expression statements at module/class/function top.
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:  # pragma: no cover - invalid input
        raise ValueError(f"cannot parse source: {exc}") from exc
    for node in ast.walk(tree):
        body = getattr(node, "body", None)
        if not isinstance(body, list) or not body:
            continue
        first = body[0]
        if (
            isinstance(first, ast.Expr)
            and isinstance(first.value, ast.Constant)
            and isinstance(first.value.value, str)
        ):
            for line in range(first.lineno, first.end_lineno + 1):
                docstring_lines.add(line)

    sloc = 0
    for lineno, line in enumerate(source.splitlines(), start=1):
        stripped = line.strip()
        if not stripped:
            continue
        if lineno in docstring_lines:
            continue
        if lineno in comment_lines and stripped.startswith("#"):
            continue
        sloc += 1
    return sloc


def count_file_sloc(path: Path) -> int:
    """SLOC of one Python file."""
    return count_sloc(Path(path).read_text(encoding="utf-8"))


def _backend_module_path(backend_name: str) -> Path:
    """Locate the implementation file of a registered backend."""
    import importlib

    from repro.backends.registry import get_backend

    instance = get_backend(backend_name)
    module = importlib.import_module(type(instance).__module__)
    return Path(module.__file__)


def backend_sloc_table(backends: List[str] | None = None) -> Dict[str, int]:
    """SLOC per backend implementation module (Table I analogue).

    Returns a mapping ``backend name -> source lines`` in registry
    order.  Shared substrate code (edgeio, sort, grb, frame) is *not*
    attributed to backends — the paper's per-language counts likewise
    exclude the common generator specification.
    """
    names = backends if backends is not None else available_backends()
    return {name: count_file_sloc(_backend_module_path(name)) for name in names}
