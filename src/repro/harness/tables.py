"""Table rendering: the paper's Tables I and II plus generic grids.

Rendering is plain monospace text (also valid Markdown) so tables print
cleanly from the CLI and paste into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.config import run_sizes_table
from repro.harness.sloc import backend_sloc_table

#: The paper's Table I, for side-by-side comparison in reports.
PAPER_TABLE1 = {
    "C++": 494,
    "Python": 162,
    "Python w/Pandas": 162,
    "Matlab": 102,
    "Octave": 102,
    "Julia": 162,
}


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: Optional[str] = None,
) -> str:
    """Render a monospace/Markdown table.

    Examples
    --------
    >>> print(render_table(["a", "b"], [[1, 2]]))
    | a | b |
    |---|---|
    | 1 | 2 |
    """
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, header has {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "| " + " | ".join(
        h.ljust(w) for h, w in zip(headers, widths)
    ) + " |"
    separator = "|" + "|".join("-" * (w + 2) for w in widths) + "|"
    lines.append(header_line)
    lines.append(separator)
    for row in str_rows:
        lines.append(
            "| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |"
        )
    return "\n".join(lines)


def _human_bytes(num_bytes: int) -> str:
    """Format bytes like the paper's Table II memory column (25MB, 1.6GB)."""
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if value < 1000.0 or unit == "TB":
            if value >= 100 or value == int(value):
                return f"{value:.0f}{unit}"
            return f"{value:.1f}{unit}"
        value /= 1000.0
    raise AssertionError("unreachable")


def _human_count(value: int) -> str:
    """Format counts like the paper's Table II (65K, 1M, 67M): floor to
    the nearest decimal K/M."""
    if value >= 1_000_000:
        return f"{value // 1_000_000}M"
    if value >= 1_000:
        return f"{value // 1_000}K"
    return str(value)


def run_sizes_rows(scales: Optional[List[int]] = None) -> List[List[object]]:
    """Table II rows: scale, max vertices, max edges, ~memory."""
    rows = []
    for entry in run_sizes_table(scales):
        rows.append(
            [
                entry.scale,
                _human_count(entry.max_vertices),
                _human_count(entry.max_edges),
                _human_bytes(entry.memory_bytes),
            ]
        )
    return rows


def render_run_sizes(scales: Optional[List[int]] = None) -> str:
    """Render Table II (benchmark run sizes)."""
    return render_table(
        ["Scale", "Max Vertices", "Max Edges", "~Memory"],
        run_sizes_rows(scales),
        title="Table II — benchmark run sizes",
    )


def sloc_rows(backends: Optional[List[str]] = None) -> List[List[object]]:
    """Table I rows for this repository's backends."""
    return [[name, sloc] for name, sloc in backend_sloc_table(backends).items()]


def render_sloc(backends: Optional[List[str]] = None) -> str:
    """Render Table I (source lines of code per backend), with the
    paper's per-language numbers appended for comparison."""
    ours = render_table(
        ["Backend", "Source Lines of Code"],
        sloc_rows(backends),
        title="Table I — source lines of code (this repository's backends)",
    )
    paper = render_table(
        ["Language", "Source Lines of Code"],
        [[k, v] for k, v in PAPER_TABLE1.items()],
        title="Paper Table I — for comparison",
    )
    return ours + "\n\n" + paper
