"""Sweep runner: execute the pipeline over a (backend x scale) grid.

This is the engine behind Figures 4–7: run every configured backend at
every scale, collect per-kernel measurements, optionally repeat and keep
the best (the usual benchmarking discipline for wall-clock metrics).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import PipelineConfig
from repro.core.pipeline import run_pipeline
from repro.harness.records import MeasurementRecord

logger = logging.getLogger("repro.harness")


@dataclass
class SweepPlan:
    """Declarative description of a measurement sweep.

    Attributes
    ----------
    scales:
        Graph500 scales to run.
    backends:
        Backend names to run at each scale.
    edge_factor:
        Edges per vertex (paper: 16).
    seed:
        Root seed shared by all runs (same graph per scale across
        backends, modulo the pure-python generator's own stream).
    repeats:
        Runs per cell; the *fastest* time per kernel is kept.
    config_overrides:
        Extra :class:`PipelineConfig` fields applied to every run
        (e.g. ``{"num_files": 4}``).
    """

    scales: List[int]
    backends: List[str]
    edge_factor: int = 16
    seed: int = 1
    repeats: int = 1
    config_overrides: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.scales:
            raise ValueError("SweepPlan needs at least one scale")
        if not self.backends:
            raise ValueError("SweepPlan needs at least one backend")
        if self.repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {self.repeats}")

    def configs(self) -> List[PipelineConfig]:
        """All cell configs, backend-major then scale order."""
        out = []
        for backend in self.backends:
            for scale in self.scales:
                out.append(
                    PipelineConfig(
                        scale=scale,
                        edge_factor=self.edge_factor,
                        seed=self.seed,
                        backend=backend,
                        **self.config_overrides,  # type: ignore[arg-type]
                    )
                )
        return out


def run_sweep(
    plan: SweepPlan,
    *,
    verify: bool = False,
    progress: Optional[callable] = None,
) -> List[MeasurementRecord]:
    """Execute a sweep and return the per-kernel records.

    Parameters
    ----------
    plan:
        What to run.
    verify:
        Forward the pipeline's contract checks (off by default inside
        measurement loops — the checks re-read files and would perturb
        I/O caching between kernels).
    progress:
        Optional callback ``fn(config, repeat_index)`` invoked before
        each run (the CLI uses it for status lines).

    Notes
    -----
    With ``repeats > 1`` the record kept for each kernel is the one
    with the smallest measured time across repeats.
    """
    records: List[MeasurementRecord] = []
    for config in plan.configs():
        best: Dict[str, MeasurementRecord] = {}
        for repeat in range(plan.repeats):
            if progress is not None:
                progress(config, repeat)
            logger.info(
                "running backend=%s scale=%d repeat=%d",
                config.backend, config.scale, repeat,
            )
            result = run_pipeline(config, verify=verify)
            for record in MeasurementRecord.from_result(result):
                current = best.get(record.kernel)
                if current is None or record.seconds < current.seconds:
                    best[record.kernel] = record
        records.extend(best[k] for k in sorted(best))
    return records
