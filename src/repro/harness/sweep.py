"""Sweep runner: execute the pipeline over a (backend x scale) grid.

This is the engine behind Figures 4–7: run every configured backend at
every scale, collect per-kernel measurements, optionally repeat and keep
the best (the usual benchmarking discipline for wall-clock metrics).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.config import PipelineConfig
from repro.core.pipeline import run_pipeline
from repro.harness.records import MeasurementRecord, best_records

logger = logging.getLogger("repro.harness")


@dataclass
class SweepPlan:
    """Declarative description of a measurement sweep.

    Attributes
    ----------
    scales:
        Graph500 scales to run.
    backends:
        Backend names to run at each scale.
    edge_factor:
        Edges per vertex (paper: 16).
    seed:
        Root seed shared by all runs (same graph per scale across
        backends, modulo the pure-python generator's own stream).
    repeats:
        Runs per cell; the *fastest* time per kernel is kept.
    execution:
        Execution strategy for every cell (``serial`` / ``streaming`` /
        ``parallel`` / ``async`` — see :mod:`repro.core.executor`).
        Cells whose backend lacks the strategy's capability are skipped
        with a warning.
    cache_dir:
        Kernel 0/1 artifact-cache root shared by all cells.  With
        ``repeats > 1`` (or across sweep reruns) the graph is generated
        and sorted once per (backend, scale) and then reused — the
        repeat cost collapses to a cache read, which the kernel details
        record as ``artifact_cache: hit``.
    config_overrides:
        Extra :class:`PipelineConfig` fields applied to every run
        (e.g. ``{"num_files": 4}``); they win over the fields above.
    """

    scales: List[int]
    backends: List[str]
    edge_factor: int = 16
    seed: int = 1
    repeats: int = 1
    execution: str = "serial"
    cache_dir: Optional[Path] = None
    config_overrides: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.scales:
            raise ValueError("SweepPlan needs at least one scale")
        if not self.backends:
            raise ValueError("SweepPlan needs at least one backend")
        if self.repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {self.repeats}")

    def configs(self) -> List[PipelineConfig]:
        """All cell configs, backend-major then scale order."""
        out = []
        for backend in self.backends:
            for scale in self.scales:
                fields: Dict[str, object] = {
                    "scale": scale,
                    "edge_factor": self.edge_factor,
                    "seed": self.seed,
                    "backend": backend,
                    "execution": self.execution,
                    "cache_dir": self.cache_dir,
                }
                fields.update(self.config_overrides)
                out.append(PipelineConfig(**fields))  # type: ignore[arg-type]
        return out


def run_sweep(
    plan: SweepPlan,
    *,
    verify: bool = False,
    progress: Optional[callable] = None,
) -> List[MeasurementRecord]:
    """Execute a sweep and return the per-kernel records.

    Parameters
    ----------
    plan:
        What to run.
    verify:
        Forward the pipeline's contract checks (off by default inside
        measurement loops — the checks re-read files and would perturb
        I/O caching between kernels).
    progress:
        Optional callback ``fn(config, repeat_index)`` invoked before
        each run (the CLI uses it for status lines).

    Raises
    ------
    ValueError
        When no backend in the plan supports the requested execution
        strategy.  Backends lacking the capability (e.g. ``python``
        under ``execution="streaming"``) are skipped with a warning so
        the default backend grid still works with non-serial
        strategies.

    Notes
    -----
    With ``repeats > 1`` the record kept for each kernel is the one
    with the smallest measured time across repeats — except that an
    artifact-cache *hit* (K0/K1 reopened from ``plan.cache_dir``) never
    displaces a real measurement: a cache read times the manifest load,
    not the generate/sort work the figures report.  Hit timings are
    kept only when every repeat hit (e.g. a warm cache from an earlier
    sweep); such records carry ``cached=True`` and a warning is logged,
    because their edges/second is cache-read speed, not throughput.
    """
    from repro.backends.registry import get_backend
    from repro.core.executor import get_executor

    configs = []
    capability_memo: Dict[str, str] = {}
    for config in plan.configs():
        # config_overrides may change execution per plan, not per cell,
        # but memoise anyway — no need to build a plan's Stage/Contract
        # graph once per (backend, scale) just to read a class attribute.
        if config.execution not in capability_memo:
            capability_memo[config.execution] = get_executor(
                config.execution
            ).required_capability
        needed = capability_memo[config.execution]
        if needed not in get_backend(config.backend).capabilities:
            logger.warning(
                "skipping backend=%s at scale=%d: no %r capability for "
                "execution=%s",
                config.backend, config.scale, needed, config.execution,
            )
            continue
        configs.append(config)
    if not configs:
        raise ValueError(
            f"no backend in {plan.backends} supports execution="
            f"{plan.execution!r}"
        )

    records: List[MeasurementRecord] = []
    for config in configs:
        runs: List[List[MeasurementRecord]] = []
        for repeat in range(plan.repeats):
            if progress is not None:
                progress(config, repeat)
            logger.info(
                "running backend=%s scale=%d repeat=%d",
                config.backend, config.scale, repeat,
            )
            result = run_pipeline(config, verify=verify)
            runs.append(MeasurementRecord.from_result(result))
        for record in best_records(runs):
            if record.cached:
                logger.warning(
                    "kept record for backend=%s scale=%d %s is an "
                    "artifact-cache read (every repeat hit); its "
                    "edges/second is not %s throughput",
                    record.backend, record.scale, record.kernel,
                    record.kernel,
                )
            records.append(record)
    return records
