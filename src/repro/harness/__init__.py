"""Benchmark harness: sweeps, tables, figures, experiment registry.

Everything needed to regenerate the paper's evaluation artifacts:

* :mod:`repro.harness.sweep` — run (backend x scale) grids and collect
  :class:`MeasurementRecord` rows;
* :mod:`repro.harness.sloc` — source-lines-of-code counting (Table I);
* :mod:`repro.harness.tables` — Table I / Table II renderers;
* :mod:`repro.harness.figures` — Figures 4–7 series builders + ASCII
  log-log charts;
* :mod:`repro.harness.experiments` — the experiment registry keyed by
  paper artifact id (``table1``, ``table2``, ``fig4`` … ``fig7``).
"""

from __future__ import annotations

from repro.harness.records import MeasurementRecord, load_records, save_records
from repro.harness.sweep import SweepPlan, run_sweep
from repro.harness.sloc import backend_sloc_table, count_sloc
from repro.harness.tables import render_table, run_sizes_rows, sloc_rows
from repro.harness.figures import FigureSeries, build_figure_series, render_figure
from repro.harness.experiments import available_experiments, run_experiment
from repro.harness.goldens import GoldenRecord, golden_for_config, golden_from_outputs
from repro.harness.report import build_report
from repro.harness.scaling import (
    SizeScalingStudy,
    StrongScalingStudy,
    size_scaling,
    strong_scaling,
)

__all__ = [
    "FigureSeries",
    "GoldenRecord",
    "MeasurementRecord",
    "SizeScalingStudy",
    "StrongScalingStudy",
    "SweepPlan",
    "size_scaling",
    "strong_scaling",
    "available_experiments",
    "backend_sloc_table",
    "build_figure_series",
    "build_report",
    "count_sloc",
    "golden_for_config",
    "golden_from_outputs",
    "load_records",
    "render_figure",
    "render_table",
    "run_experiment",
    "run_sizes_rows",
    "run_sweep",
    "save_records",
    "sloc_rows",
]
