"""Markdown report generation: measured results vs the paper's claims.

``build_report`` turns sweep records into the same paper-vs-measured
narrative EXPERIMENTS.md carries, so re-running the sweeps on new
hardware regenerates a complete comparison document:

* Tables I and II verbatim;
* one section per figure with the measured series and automatic *shape
  checks* (the qualitative claims of the paper, evaluated against the
  data at hand);
* a machine summary header.
"""

from __future__ import annotations

import platform
import sys
from typing import Dict, List, Optional, Sequence

from repro.harness.figures import FIGURE_KERNELS, build_figure_series, render_figure
from repro.harness.records import MeasurementRecord
from repro.harness.tables import render_run_sizes, render_sloc

#: The paper's qualitative claims per figure, as (description, checker).
#: Checkers receive {backend: [(M, eps), ...]} and return True/False/None
#: (None = not decidable from the data present).


def _spread_within(series: Dict[str, list], factor: float) -> Optional[bool]:
    rates = [eps for pts in series.values() for _, eps in pts if eps > 0]
    if len(rates) < 2:
        return None
    return max(rates) <= factor * min(rates)


def _python_slowest(series: Dict[str, list]) -> Optional[bool]:
    if "python" not in series or len(series) < 2:
        return None
    def mean_eps(pts):
        rates = [eps for _, eps in pts if eps > 0]
        return sum(rates) / len(rates) if rates else float("inf")

    python_rate = mean_eps(series["python"])
    others = [mean_eps(pts) for name, pts in series.items() if name != "python"]
    return all(python_rate <= o for o in others)


def _array_cluster(series: Dict[str, list], names=("numpy", "scipy", "graphblas")) -> Optional[bool]:
    present = [n for n in names if n in series]
    if len(present) < 2:
        return None
    def mean_eps(pts):
        rates = [eps for _, eps in pts if eps > 0]
        return sum(rates) / len(rates) if rates else 0.0

    rates = [mean_eps(series[n]) for n in present]
    return max(rates) <= 5.0 * min(rates)


_FIGURE_CLAIMS = {
    "fig4": [
        ("all implementations within ~2 decades (I/O-bound kernel)",
         lambda s: _spread_within(s, 100.0)),
        ("interpreted implementation at the bottom of the band",
         _python_slowest),
    ],
    "fig5": [
        ("tight clustering (sort cost dominated by read/parse/write)",
         lambda s: _spread_within(s, 30.0)),
    ],
    "fig6": [
        ("widest interpreted-vs-array separation of the pipeline",
         _python_slowest),
    ],
    "fig7": [
        ("minimal dispersion among array implementations",
         _array_cluster),
        ("interpreted implementation 1-2 decades below",
         _python_slowest),
    ],
}


def _figure_section(figure_id: str, records: Sequence[MeasurementRecord]) -> str:
    figure = build_figure_series(figure_id, records)
    lines = [render_figure(figure), ""]
    claims = _FIGURE_CLAIMS.get(figure_id, [])
    if claims and figure.series:
        lines.append("Paper-shape checks:")
        for description, checker in claims:
            verdict = checker(figure.series)
            mark = {True: "PASS", False: "FAIL", None: "n/a "}[verdict]
            lines.append(f"- [{mark}] {description}")
    return "\n".join(lines)


def build_report(
    records: Sequence[MeasurementRecord],
    *,
    title: str = "PageRank Pipeline Benchmark — measured report",
    include_tables: bool = True,
) -> str:
    """Render a full markdown report from sweep records.

    Parameters
    ----------
    records:
        Output of :func:`repro.harness.sweep.run_sweep` (any grid).
    title:
        Document heading.
    include_tables:
        Also embed Tables I and II (static artifacts).

    Returns
    -------
    A markdown document as a string.
    """
    lines: List[str] = [f"# {title}", ""]
    lines.append(
        f"Environment: Python {sys.version.split()[0]} on "
        f"{platform.system()} {platform.machine()}"
    )
    scales = sorted({r.scale for r in records})
    backends = sorted({r.backend for r in records})
    lines.append(f"Grid: scales {scales} x backends {backends}")
    lines.append("")

    if include_tables:
        lines.append("## Table I — source lines of code")
        lines.append("")
        lines.append(render_sloc())
        lines.append("")
        lines.append("## Table II — run sizes")
        lines.append("")
        lines.append(render_run_sizes())
        lines.append("")

    titles = {
        "fig4": "## Figure 4 — Kernel 0 (generate + write)",
        "fig5": "## Figure 5 — Kernel 1 (sort)",
        "fig6": "## Figure 6 — Kernel 2 (filter)",
        "fig7": "## Figure 7 — Kernel 3 (PageRank)",
    }
    for figure_id in FIGURE_KERNELS:
        lines.append(titles[figure_id])
        lines.append("")
        lines.append("```")
        lines.append(_figure_section(figure_id, records))
        lines.append("```")
        lines.append("")

    # Benchmark-total summary: officially timed kernels only.  Cached
    # records measure a cache read, not the kernel, so they are left out
    # of the sum and the row is marked incomplete.
    lines.append("## Officially timed totals (K1 + K2 + K3)")
    lines.append("")
    lines.append("| backend | scale | total seconds |")
    lines.append("|---|---|---|")
    totals: Dict[tuple, float] = {}
    incomplete: set = set()
    for record in records:
        if not record.officially_timed:
            continue
        key = (record.backend, record.scale)
        if record.cached:
            totals.setdefault(key, 0.0)
            incomplete.add(key)
            continue
        totals[key] = totals.get(key, 0.0) + record.seconds
    for (backend, scale), seconds in sorted(totals.items()):
        marker = " *" if (backend, scale) in incomplete else ""
        lines.append(f"| {backend} | {scale} | {seconds:.4f}{marker} |")
    lines.append("")
    if incomplete:
        lines.append("\\* total omits kernels served from the artifact "
                     "cache (cache-read time is not kernel time); rerun "
                     "without --cache-dir for a full total.")
        lines.append("")
    return "\n".join(lines)
