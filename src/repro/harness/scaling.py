"""Scaling studies: throughput trends over problem size and rank count.

Two analyses the paper's framing invites but does not carry out:

* :func:`size_scaling` — edges/second as a function of scale for one
  backend/kernel, with a log-log slope fit.  A slope of ~0 means the
  kernel's throughput is scale-invariant (the flat curves of Figures
  4-7); negative slopes expose cache or algorithmic drop-off.
* :func:`strong_scaling` — distributed K2+K3 speedup/efficiency over
  rank counts at fixed problem size, with measured communication bytes
  per rank structure — quantifying the paper's Section IV.D argument
  about Kernel 3's network term.

Both are pure measurement drivers returning dataclasses; rendering
helpers turn them into monospace tables for the CLI/reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro._util import check_positive_int
from repro.core.config import KernelName, PipelineConfig
from repro.core.pipeline import run_pipeline
from repro.generators.kronecker import kronecker_edges
from repro.parallel.driver import run_parallel_pipeline


@dataclass(frozen=True)
class SizeScalingPoint:
    """One (scale, throughput) sample."""

    scale: int
    num_edges: int
    seconds: float
    edges_per_second: float


@dataclass
class SizeScalingStudy:
    """Throughput-vs-size series for one backend and kernel.

    Attributes
    ----------
    backend / kernel:
        What was measured.
    points:
        Ascending-scale samples.
    slope:
        Fitted d(log10 eps) / d(log10 M); ~0 for the flat curves the
        paper's figures show.
    """

    backend: str
    kernel: KernelName
    points: List[SizeScalingPoint] = field(default_factory=list)
    slope: float = 0.0


def size_scaling(
    scales: Sequence[int],
    *,
    backend: str = "scipy",
    kernel: KernelName = KernelName.K3_PAGERANK,
    seed: int = 1,
    edge_factor: int = 16,
) -> SizeScalingStudy:
    """Measure one kernel's throughput across problem sizes.

    Runs the full pipeline at each scale (kernels upstream of the
    measured one are needed to produce its input) and fits a log-log
    slope through the throughput samples.

    Examples
    --------
    >>> study = size_scaling([6, 7], backend="numpy", seed=3)
    >>> len(study.points)
    2
    """
    if not scales:
        raise ValueError("size_scaling requires at least one scale")
    study = SizeScalingStudy(backend=backend, kernel=kernel)
    for scale in sorted(scales):
        result = run_pipeline(
            PipelineConfig(scale=scale, seed=seed, backend=backend,
                           edge_factor=edge_factor),
            verify=False,
        )
        kernel_result = result.kernel(kernel)
        study.points.append(
            SizeScalingPoint(
                scale=scale,
                num_edges=result.config.num_edges,
                seconds=kernel_result.seconds,
                edges_per_second=kernel_result.edges_per_second,
            )
        )
    if len(study.points) >= 2:
        xs = np.log10([p.num_edges for p in study.points])
        ys = np.log10([max(p.edges_per_second, 1e-12) for p in study.points])
        study.slope = float(np.polyfit(xs, ys, 1)[0])
    return study


@dataclass(frozen=True)
class StrongScalingPoint:
    """One rank-count sample of the distributed K2+K3."""

    ranks: int
    seconds: float
    speedup: float
    efficiency: float
    allreduce_bytes: int


@dataclass
class StrongScalingStudy:
    """Fixed-size speedup over rank counts (simulated executor).

    Notes
    -----
    The simulated communicator runs ranks as threads under the GIL, so
    *wall-clock speedup is not expected*; the study's value is the
    measured communication growth and the per-rank load balance, which
    are executor-independent.  ``seconds`` is still reported for
    completeness.
    """

    scale: int
    iterations: int
    points: List[StrongScalingPoint] = field(default_factory=list)
    local_nnz: Dict[int, List[int]] = field(default_factory=dict)


def strong_scaling(
    rank_counts: Sequence[int],
    *,
    scale: int = 12,
    edge_factor: int = 16,
    iterations: int = 20,
    seed: int = 1,
) -> StrongScalingStudy:
    """Measure the distributed K2+K3 across group sizes.

    Parameters
    ----------
    rank_counts:
        Group sizes to test (1 is used as the speedup baseline and is
        added automatically when missing).
    scale / edge_factor / iterations / seed:
        Problem definition.
    """
    check_positive_int("scale", scale)
    counts = sorted(set(rank_counts) | {1})
    num_vertices = 1 << scale
    u, v = kronecker_edges(scale, edge_factor, seed=seed)
    initial = np.full(num_vertices, 1.0 / num_vertices)

    study = StrongScalingStudy(scale=scale, iterations=iterations)
    baseline_seconds: Optional[float] = None
    for ranks in counts:
        start = time.perf_counter()
        result = run_parallel_pipeline(
            u, v, num_vertices, num_ranks=ranks, iterations=iterations,
            initial_rank=initial,
        )
        elapsed = time.perf_counter() - start
        if baseline_seconds is None:
            baseline_seconds = elapsed
        speedup = baseline_seconds / elapsed if elapsed > 0 else float("inf")
        study.points.append(
            StrongScalingPoint(
                ranks=ranks,
                seconds=elapsed,
                speedup=speedup,
                efficiency=speedup / ranks,
                allreduce_bytes=int(
                    result.traffic.get("bytes_by_op", {}).get("allreduce", 0)
                ),
            )
        )
        study.local_nnz[ranks] = result.local_nnz
    return study


def render_size_scaling(study: SizeScalingStudy) -> str:
    """Monospace table of a size-scaling study."""
    from repro.harness.tables import render_table

    rows = [
        [p.scale, f"{p.num_edges:,}", f"{p.seconds:.4f}",
         f"{p.edges_per_second:,.0f}"]
        for p in study.points
    ]
    table = render_table(
        ["scale", "edges", "seconds", "edges/s"],
        rows,
        title=(f"{study.kernel.value} throughput vs size "
               f"({study.backend} backend)"),
    )
    return table + f"\nlog-log slope: {study.slope:+.3f}"


def render_strong_scaling(study: StrongScalingStudy) -> str:
    """Monospace table of a strong-scaling study."""
    from repro.harness.tables import render_table

    rows = [
        [p.ranks, f"{p.seconds:.3f}", f"{p.speedup:.2f}",
         f"{p.efficiency:.2f}", f"{p.allreduce_bytes:,}"]
        for p in study.points
    ]
    return render_table(
        ["ranks", "seconds", "speedup", "efficiency", "allreduce bytes"],
        rows,
        title=(f"strong scaling at scale {study.scale} "
               f"({study.iterations} iterations, simulated ranks)"),
    )
