"""Experiment registry: paper artifact id -> reproduction runner.

``run_experiment("fig7")`` executes everything needed to regenerate that
artifact (sweeps included) and returns rendered text plus the raw data.
The CLI and EXPERIMENTS.md are both generated through this registry so
the "per-experiment index" in DESIGN.md always has a runnable target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.harness.figures import FIGURE_KERNELS, build_figure_series, render_figure
from repro.harness.records import MeasurementRecord
from repro.harness.sweep import SweepPlan, run_sweep
from repro.harness.tables import render_run_sizes, render_sloc

#: Scales used by default for figure sweeps — small enough for a laptop,
#: large enough to show the curves' shape (the paper used 16–22 on a
#: server; scale via --scales for bigger machines).
DEFAULT_FIGURE_SCALES = [10, 12, 14]
DEFAULT_FIGURE_BACKENDS = ["python", "numpy", "scipy", "dataframe", "graphblas"]


@dataclass
class ExperimentOutput:
    """Result of running one registered experiment.

    Attributes
    ----------
    experiment_id:
        Registry key (``table1`` … ``fig7``).
    text:
        Rendered, printable artifact.
    records:
        Raw measurement records (empty for static tables).
    """

    experiment_id: str
    text: str
    records: List[MeasurementRecord] = field(default_factory=list)


def _run_table1(scales: Optional[List[int]], backends: Optional[List[str]],
                repeats: int, execution: str,
                cache_dir: Optional[Path]) -> ExperimentOutput:
    del scales, repeats, execution, cache_dir
    return ExperimentOutput("table1", render_sloc(backends))


def _run_table2(scales: Optional[List[int]], backends: Optional[List[str]],
                repeats: int, execution: str,
                cache_dir: Optional[Path]) -> ExperimentOutput:
    del backends, repeats, execution, cache_dir
    return ExperimentOutput("table2", render_run_sizes(scales))


def _figure_runner(figure_id: str) -> Callable[..., ExperimentOutput]:
    def run(scales: Optional[List[int]], backends: Optional[List[str]],
            repeats: int, execution: str,
            cache_dir: Optional[Path]) -> ExperimentOutput:
        plan = SweepPlan(
            scales=scales or DEFAULT_FIGURE_SCALES,
            backends=backends or DEFAULT_FIGURE_BACKENDS,
            repeats=repeats,
            execution=execution,
            cache_dir=cache_dir,
        )
        records = run_sweep(plan)
        figure = build_figure_series(figure_id, records)
        return ExperimentOutput(figure_id, render_figure(figure), records)

    return run


_REGISTRY: Dict[str, Callable[..., ExperimentOutput]] = {
    "table1": _run_table1,
    "table2": _run_table2,
    **{figure_id: _figure_runner(figure_id) for figure_id in FIGURE_KERNELS},
}

_DESCRIPTIONS = {
    "table1": "source lines of code per backend (paper Table I)",
    "table2": "benchmark run sizes for scales 16-22 (paper Table II)",
    "fig4": "Kernel 0 edges/s vs M per backend (paper Figure 4)",
    "fig5": "Kernel 1 edges/s vs M per backend (paper Figure 5)",
    "fig6": "Kernel 2 edges/s vs M per backend (paper Figure 6)",
    "fig7": "Kernel 3 edges/s vs M per backend (paper Figure 7)",
}


def available_experiments() -> Dict[str, str]:
    """Mapping experiment id -> description."""
    return dict(_DESCRIPTIONS)


def run_experiment(
    experiment_id: str,
    *,
    scales: Optional[List[int]] = None,
    backends: Optional[List[str]] = None,
    repeats: int = 1,
    execution: str = "serial",
    cache_dir: Optional[Path] = None,
) -> ExperimentOutput:
    """Run one registered experiment.

    Parameters
    ----------
    experiment_id:
        ``table1``, ``table2``, or ``fig4`` … ``fig7``.
    scales / backends:
        Override the default sweep grid (figures) or table rows.
    repeats:
        Repetitions per sweep cell (fastest kept).
    execution:
        Execution strategy for figure sweeps (tables ignore it).
    cache_dir:
        Kernel 0/1 artifact-cache root for figure sweeps; repeated
        cells reuse the generated/sorted graph instead of rebuilding it.

    Raises
    ------
    KeyError
        For unknown experiment ids.
    """
    try:
        runner = _REGISTRY[experiment_id]
    except KeyError:
        valid = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {valid}"
        ) from None
    return runner(scales, backends, repeats, execution, cache_dir)
