"""Golden correctness records for pipeline runs.

The paper's "next steps" asks: *"What outputs should be recorded to
validate correctness?"*  This module is our answer — a compact,
JSON-serialisable :class:`GoldenRecord` capturing enough of each
kernel's output to detect an incorrect implementation without storing
the data itself:

* **K1** — edge count plus a CRC of the sorted edge stream (order
  matters for ``u``; ties ignore ``v`` order via per-row sorting);
* **K2** — nnz, eliminated column count, pre-filter entry total, the
  in/out-degree histograms, and a digest of the normalised values;
* **K3** — the top-``k`` vertices by rank, rank sum, and a quantised
  digest of the whole vector.

Records are deterministic for a given config (and backend-independent —
asserted by the cross-backend tests), so one stored golden validates
every implementation, present or future.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.backends.base import AdjacencyHandle
from repro.core.config import PipelineConfig
from repro.edgeio.dataset import EdgeDataset


def _digest_array(values: np.ndarray, *, decimals: int = 9) -> str:
    """Stable short digest of a float array (quantised against fp noise)."""
    quantised = np.round(np.asarray(values, dtype=np.float64), decimals)
    # Normalise -0.0 to 0.0 so the byte image is canonical.
    quantised = quantised + 0.0
    return hashlib.sha256(quantised.tobytes()).hexdigest()[:16]


@dataclass(frozen=True)
class GoldenRecord:
    """Backend-independent correctness fingerprint of one pipeline run.

    Attributes
    ----------
    scale, edge_factor, seed:
        Identifying config echo.
    k1_num_edges:
        Edge count after sorting (must equal ``M``).
    k1_start_vertex_crc:
        CRC32 of the sorted start-vertex stream.
    k1_canonical_crc:
        CRC32 of the fully canonicalised edge stream (rows in order,
        ties sorted by end vertex) — catches end-vertex corruption
        without requiring implementations to sort ties.
    k2_nnz, k2_eliminated_columns, k2_entry_total:
        Kernel 2 structure.
    k2_out_degree_histogram / k2_in_degree_histogram:
        ``{degree: count}`` maps of the *filtered, unnormalised* counts
        matrix structure (stored-entry counts per row / column).
    k2_values_digest:
        Digest of the normalised matrix values in CSR order.
    k3_rank_sum:
        Final rank mass.
    k3_top_vertices:
        The ``top_k`` highest-ranked vertex ids, rank-descending
        (ties broken by vertex id).
    k3_rank_digest:
        Digest of the quantised rank vector.
    """

    scale: int
    edge_factor: int
    seed: int
    k1_num_edges: int
    k1_start_vertex_crc: int
    k1_canonical_crc: int
    k2_nnz: int
    k2_eliminated_columns: int
    k2_entry_total: float
    k2_out_degree_histogram: Dict[str, int]
    k2_in_degree_histogram: Dict[str, int]
    k2_values_digest: str
    k3_rank_sum: float
    k3_top_vertices: List[int]
    k3_rank_digest: str

    def to_json(self) -> str:
        """Stable JSON encoding."""
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "GoldenRecord":
        """Inverse of :meth:`to_json`."""
        return cls(**json.loads(text))

    def save(self, path: Path) -> None:
        """Write the record to ``path``."""
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def load(cls, path: Path) -> "GoldenRecord":
        """Read a record from ``path``."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    def differences(self, other: "GoldenRecord") -> List[str]:
        """Human-readable list of fields on which two records disagree."""
        diffs = []
        for key, value in asdict(self).items():
            other_value = getattr(other, key)
            if key in ("k2_entry_total", "k3_rank_sum"):
                if abs(float(value) - float(other_value)) > 1e-9:
                    diffs.append(f"{key}: {value} != {other_value}")
            elif value != other_value:
                diffs.append(f"{key}: {value} != {other_value}")
        return diffs

    def matches(self, other: "GoldenRecord") -> bool:
        """True when no field differs (within float tolerance)."""
        return not self.differences(other)


def golden_from_outputs(
    config: PipelineConfig,
    k1_dataset: EdgeDataset,
    k2_handle: AdjacencyHandle,
    rank: np.ndarray,
    *,
    k2_details: Optional[dict] = None,
    top_k: int = 10,
) -> GoldenRecord:
    """Build a :class:`GoldenRecord` from kernel outputs.

    Parameters
    ----------
    config:
        The run's config (size/seed echo).
    k1_dataset:
        Kernel 1 output dataset.
    k2_handle:
        Kernel 2 output handle (any backend).
    rank:
        Kernel 3 output vector.
    k2_details:
        The kernel's details dict (for the eliminated-column count);
        recomputed from the matrix when omitted.
    top_k:
        Number of leading vertices to record.
    """
    u, v = k1_dataset.read_all()
    start_crc = zlib.crc32(np.ascontiguousarray(u).tobytes())
    # Canonicalise tie order so the record is implementation-neutral.
    order = np.lexsort((v, u))
    canonical = np.column_stack([u[order], v[order]])
    canonical_crc = zlib.crc32(np.ascontiguousarray(canonical).tobytes())

    matrix = k2_handle.to_scipy_csr()
    out_deg = np.diff(matrix.indptr)
    in_deg = np.bincount(matrix.indices, minlength=matrix.shape[1]) if matrix.nnz else np.zeros(matrix.shape[1], dtype=np.int64)

    def histogram(degrees: np.ndarray) -> Dict[str, int]:
        values, counts = np.unique(degrees[degrees > 0], return_counts=True)
        return {str(int(d)): int(c) for d, c in zip(values, counts)}

    if k2_details and "supernode_columns" in k2_details:
        eliminated = int(k2_details["supernode_columns"]) + int(
            k2_details["leaf_columns"]
        )
    else:
        eliminated = -1  # unknown; structure fields still compared

    top_order = np.lexsort((np.arange(len(rank)), -rank))[:top_k]

    return GoldenRecord(
        scale=config.scale,
        edge_factor=config.edge_factor,
        seed=config.seed,
        k1_num_edges=k1_dataset.num_edges,
        k1_start_vertex_crc=start_crc,
        k1_canonical_crc=canonical_crc,
        k2_nnz=int(matrix.nnz),
        k2_eliminated_columns=eliminated,
        k2_entry_total=float(k2_handle.pre_filter_entry_total),
        k2_out_degree_histogram=histogram(out_deg),
        k2_in_degree_histogram=histogram(in_deg),
        k2_values_digest=_digest_array(matrix.data),
        k3_rank_sum=float(rank.sum()),
        k3_top_vertices=[int(x) for x in top_order],
        k3_rank_digest=_digest_array(rank),
    )


def golden_for_config(config: PipelineConfig, *, top_k: int = 10) -> GoldenRecord:
    """Run the pipeline (via its backend) and produce the golden record."""
    import tempfile
    from pathlib import Path as _Path

    from repro.backends.registry import get_backend

    backend = get_backend(config.backend)
    with tempfile.TemporaryDirectory(prefix="repro-golden-") as tmp:
        base = _Path(tmp)
        k0, _ = backend.kernel0(config, base / "k0")
        k1, _ = backend.kernel1(config, k0, base / "k1")
        handle, details = backend.kernel2(config, k1)
        rank, _ = backend.kernel3(config, handle)
        return golden_from_outputs(
            config, k1, handle, rank, k2_details=details, top_k=top_k
        )
