"""Perfect power law (PPL) generator.

The paper (Section IV.A) cites Kepner 2012 / Gadepally & Kepner 2015:
graphs whose degree *histogram* follows a power law exactly, rather than
in expectation, which makes downstream kernels easier to validate (the
super-node and leaf counts become deterministic).

Construction:

1. :func:`ppl_degree_sequence` builds a per-vertex degree sequence whose
   histogram satisfies ``count(d) = round(c * d**-exponent)`` for degrees
   ``1..max_degree``, with ``c`` chosen so the vertex budget is met.
2. :func:`ppl_edges` realises the sequence as a directed multigraph by
   stub pairing (a directed configuration model): each vertex contributes
   ``degree`` out-stubs and ``degree`` in-stubs; out-stubs are paired
   with a random permutation of in-stubs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro._util import check_positive_int, resolve_rng
from repro._util.rng import SeedLike
from repro.generators.base import EdgeList


@dataclass(frozen=True)
class PPLParams:
    """PPL shape parameters.

    Attributes
    ----------
    exponent:
        Power-law exponent ``alpha`` (> 1) of the degree histogram.
    max_degree:
        Largest degree in the histogram; ``None`` picks
        ``max(4, N // 16)`` which keeps the super-node unambiguous.
    """

    exponent: float = 1.9
    max_degree: Optional[int] = None

    def __post_init__(self) -> None:
        if self.exponent <= 1.0:
            raise ValueError(f"exponent must be > 1, got {self.exponent}")
        if self.max_degree is not None and self.max_degree < 1:
            raise ValueError(f"max_degree must be >= 1, got {self.max_degree}")


def ppl_degree_sequence(
    num_vertices: int,
    *,
    exponent: float = 1.9,
    max_degree: Optional[int] = None,
) -> np.ndarray:
    """Build a per-vertex degree sequence with an exact power-law histogram.

    The returned sequence is sorted descending, has length exactly
    ``num_vertices`` (degree-0 vertices pad the tail if the histogram
    under-fills), and every degree count is
    ``max(1, round(c * d**-exponent))`` for a scale ``c`` fitted so the
    histogram total is as close to ``num_vertices`` as possible without
    exceeding it.

    Examples
    --------
    >>> seq = ppl_degree_sequence(100, exponent=2.0)
    >>> bool(len(seq) == 100 and seq[0] >= seq[-1])
    True
    """
    check_positive_int("num_vertices", num_vertices)
    if exponent <= 1.0:
        raise ValueError(f"exponent must be > 1, got {exponent}")
    if max_degree is None:
        max_degree = max(4, num_vertices // 16)
    check_positive_int("max_degree", max_degree)

    degrees_axis = np.arange(1, max_degree + 1, dtype=np.float64)
    shape = degrees_axis ** (-exponent)

    # Largest c such that the histogram fits the vertex budget, found by
    # bisection on the monotone total-count function.
    def total(c: float) -> int:
        return int(np.maximum(1, np.round(c * shape)).sum())

    lo, hi = 0.0, 1.0
    while total(hi) < num_vertices:
        hi *= 2.0
        if hi > 1e18:  # pragma: no cover - defensive against bad params
            break
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if total(mid) <= num_vertices:
            lo = mid
        else:
            hi = mid
    counts = np.maximum(1, np.round(lo * shape)).astype(np.int64)
    if counts.sum() > num_vertices:
        # Trim the excess from the most-populous (degree-1) bucket.
        overshoot = int(counts.sum() - num_vertices)
        counts[0] = max(0, counts[0] - overshoot)

    seq = np.repeat(np.arange(1, max_degree + 1, dtype=np.int64), counts)[::-1]
    if len(seq) < num_vertices:
        seq = np.concatenate(
            [seq, np.zeros(num_vertices - len(seq), dtype=np.int64)]
        )
    return np.sort(seq)[::-1][:num_vertices].copy()


def ppl_edges(
    num_vertices: int,
    *,
    params: Optional[PPLParams] = None,
    degrees: Optional[np.ndarray] = None,
    seed: SeedLike = None,
) -> EdgeList:
    """Realise a PPL degree sequence as a directed multigraph.

    Parameters
    ----------
    num_vertices:
        Vertex count ``N``.
    params:
        Histogram shape; ignored when ``degrees`` is given.
    degrees:
        Explicit per-vertex degree sequence (out-degree == in-degree
        budget per vertex).
    seed:
        Seed or generator for the stub permutation.

    Returns
    -------
    (u, v):
        Edge arrays with ``len(u) == degrees.sum()``.

    Examples
    --------
    >>> u, v = ppl_edges(32, seed=0)
    >>> len(u) > 0 and int(max(u.max(), v.max())) < 32
    True
    """
    check_positive_int("num_vertices", num_vertices)
    params = params or PPLParams()
    rng = resolve_rng(seed)

    if degrees is None:
        degrees = ppl_degree_sequence(
            num_vertices, exponent=params.exponent, max_degree=params.max_degree
        )
    degrees = np.asarray(degrees, dtype=np.int64)
    if len(degrees) != num_vertices:
        raise ValueError(
            f"degrees has length {len(degrees)}, expected {num_vertices}"
        )
    if (degrees < 0).any():
        raise ValueError("degrees must be non-negative")

    vertices = np.arange(num_vertices, dtype=np.int64)
    out_stubs = np.repeat(vertices, degrees)
    in_stubs = np.repeat(vertices, degrees)
    rng.shuffle(in_stubs)
    return out_stubs, in_stubs
