"""Shared generator types and helpers.

An *edge list* throughout this library is a pair of equal-length
``int64`` arrays ``(u, v)``: edge ``i`` points from vertex ``u[i]`` to
vertex ``v[i]``, labels are 0-based and bounded by the generator's vertex
count ``N``.  Multi-edges and self-loops are permitted (the Kronecker
generator produces both; Kernel 2 accumulates duplicates into counts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro._util import check_dtype, check_same_length

#: Edge list type alias: (start vertices, end vertices), both int64.
EdgeList = Tuple[np.ndarray, np.ndarray]

#: Bytes per edge assumed by the paper's Table II memory column
#: (two 8-byte integers).
BYTES_PER_EDGE = 16


@dataclass(frozen=True)
class GeneratorSpec:
    """Size specification shared by scale-parameterised generators.

    Mirrors the paper's Section IV.A: ``N = 2**scale`` vertices and
    ``M = edge_factor * N`` edges.

    Attributes
    ----------
    scale:
        Graph500 integer scale factor ``S``.
    edge_factor:
        Average edges per vertex ``k`` (paper default 16).
    """

    scale: int
    edge_factor: int = 16

    def __post_init__(self) -> None:
        if self.scale < 1:
            raise ValueError(f"scale must be >= 1, got {self.scale}")
        if self.scale > 40:
            raise ValueError(
                f"scale {self.scale} would need >= 2**40 vertices; refusing"
            )
        if self.edge_factor < 1:
            raise ValueError(f"edge_factor must be >= 1, got {self.edge_factor}")

    @property
    def num_vertices(self) -> int:
        """Maximum vertex count ``N = 2**scale``."""
        return 1 << self.scale

    @property
    def num_edges(self) -> int:
        """Total edge count ``M = edge_factor * N``."""
        return self.edge_factor * self.num_vertices

    @property
    def memory_bytes(self) -> int:
        """Approximate edge-data footprint at 16 bytes/edge (Table II)."""
        return self.num_edges * BYTES_PER_EDGE


def validate_edge_list(u: np.ndarray, v: np.ndarray, num_vertices: int) -> None:
    """Raise if ``(u, v)`` is not a well-formed edge list for ``num_vertices``.

    Checks dtype kind, equal lengths, and label bounds ``0 <= label < N``.
    """
    check_dtype("u", u, "i")
    check_dtype("v", v, "i")
    check_same_length("u", u, "v", v)
    if len(u) == 0:
        return
    for name, arr in (("u", u), ("v", v)):
        lo = int(arr.min())
        hi = int(arr.max())
        if lo < 0 or hi >= num_vertices:
            raise ValueError(
                f"{name} labels out of range [0, {num_vertices}): "
                f"min={lo}, max={hi}"
            )


def edge_list_memory_bytes(num_edges: int, bytes_per_edge: int = BYTES_PER_EDGE) -> int:
    """Edge-data memory footprint used for Table II's ``~Memory`` column."""
    if num_edges < 0:
        raise ValueError(f"num_edges must be >= 0, got {num_edges}")
    return num_edges * bytes_per_edge
