"""Graph generators (Kernel 0 substrate).

The benchmark's Kernel 0 uses the Graph500 Kronecker generator
(:func:`kronecker_edges`).  The paper (Section IV.A and V) also points at
alternative generators that may ease validation — block two-level
Erdős–Rényi (BTER, Seshadhri et al. 2012) and the perfect power law (PPL,
Kepner 2012) — both of which are implemented here, along with small
deterministic graphs used throughout the test suite.

All generators return edge lists as a pair of ``int64`` arrays ``(u, v)``
with 0-based vertex labels, matching the library-wide convention.
"""

from __future__ import annotations

from repro.generators.base import EdgeList, GeneratorSpec, edge_list_memory_bytes
from repro.generators.kronecker import (
    KroneckerParams,
    kronecker_blocks,
    kronecker_edges,
)
from repro.generators.bter import BTERParams, bter_edges
from repro.generators.ppl import PPLParams, ppl_degree_sequence, ppl_edges
from repro.generators.simple import (
    complete_graph_edges,
    erdos_renyi_edges,
    path_graph_edges,
    ring_graph_edges,
    self_loop_edges,
    star_graph_edges,
)
from repro.generators.degree import (
    degree_histogram,
    in_degrees,
    out_degrees,
    power_law_exponent,
)
from repro.generators.registry import available_generators, get_generator

__all__ = [
    "BTERParams",
    "EdgeList",
    "GeneratorSpec",
    "KroneckerParams",
    "PPLParams",
    "available_generators",
    "bter_edges",
    "complete_graph_edges",
    "degree_histogram",
    "edge_list_memory_bytes",
    "erdos_renyi_edges",
    "get_generator",
    "in_degrees",
    "kronecker_blocks",
    "kronecker_edges",
    "out_degrees",
    "path_graph_edges",
    "power_law_exponent",
    "ppl_degree_sequence",
    "ppl_edges",
    "ring_graph_edges",
    "self_loop_edges",
    "star_graph_edges",
]
