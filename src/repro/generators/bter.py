"""Block Two-level Erdős–Rényi (BTER) generator.

The paper (Section IV.A) names BTER [Seshadhri, Kolda & Pinar 2012] as an
alternative Kernel 0 generator "worth investigating [because it] may make
the validation of subsequent kernels easier".  BTER matches a target
degree distribution while also producing community structure:

* **Phase 1** groups vertices of similar degree into *affinity blocks* of
  size ``d + 1`` (``d`` = block degree) and links each block internally as
  a dense Erdős–Rényi graph with connectivity ``rho``;
* **Phase 2** distributes each vertex's *excess* degree (target degree
  minus expected phase-1 degree) through a Chung–Lu style weighted
  pairing across blocks.

This implementation is directed (edges are ordered pairs, duplicates and
self-loops permitted) to match the pipeline's edge-list conventions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro._util import check_in_range, resolve_rng
from repro._util.rng import SeedLike
from repro.generators.base import EdgeList
from repro.generators.ppl import ppl_degree_sequence


@dataclass(frozen=True)
class BTERParams:
    """BTER tuning knobs.

    Attributes
    ----------
    rho:
        Within-block Erdős–Rényi connectivity in (0, 1]; higher values
        put more of each vertex's degree into its affinity block,
        raising clustering.
    exponent:
        Power-law exponent of the default degree sequence (used only
        when the caller does not pass an explicit sequence).
    """

    rho: float = 0.9
    exponent: float = 1.9

    def __post_init__(self) -> None:
        check_in_range("rho", self.rho, 1e-9, 1.0)
        if self.exponent <= 1.0:
            raise ValueError(f"exponent must be > 1, got {self.exponent}")


def _affinity_blocks(degrees: np.ndarray) -> np.ndarray:
    """Assign vertices (sorted by degree desc) to blocks of size d+1.

    Returns an array ``block_id`` aligned with the degree-sorted order.
    Block ``b`` contains consecutive vertices; its size is one more than
    the degree of its first member, so phase 1 can in principle satisfy
    that member's entire degree within the block.
    """
    n = len(degrees)
    block_id = np.zeros(n, dtype=np.int64)
    start = 0
    block = 0
    while start < n:
        size = int(degrees[start]) + 1
        end = min(start + size, n)
        block_id[start:end] = block
        start = end
        block += 1
    return block_id


def bter_edges(
    num_vertices: int,
    *,
    degrees: Optional[np.ndarray] = None,
    params: Optional[BTERParams] = None,
    seed: SeedLike = None,
) -> EdgeList:
    """Generate a directed BTER edge list.

    Parameters
    ----------
    num_vertices:
        Number of vertices ``N``; labels are ``0..N-1``.
    degrees:
        Target (out-)degree per vertex.  Defaults to a perfect-power-law
        sequence from :func:`repro.generators.ppl.ppl_degree_sequence`.
    params:
        :class:`BTERParams`; defaults used when omitted.
    seed:
        Seed or generator.

    Returns
    -------
    (u, v):
        ``int64`` edge arrays.  The realised edge count is close to
        ``degrees.sum()`` (phase-1 edges are sampled per-pair, phase-2
        pairs stubs exactly).

    Examples
    --------
    >>> u, v = bter_edges(64, seed=3)
    >>> int(u.max()) < 64 and int(v.max()) < 64
    True
    """
    if num_vertices < 2:
        raise ValueError(f"num_vertices must be >= 2, got {num_vertices}")
    params = params or BTERParams()
    rng = resolve_rng(seed)

    if degrees is None:
        degrees = ppl_degree_sequence(num_vertices, exponent=params.exponent)
    degrees = np.asarray(degrees, dtype=np.int64)
    if len(degrees) != num_vertices:
        raise ValueError(
            f"degrees has length {len(degrees)}, expected {num_vertices}"
        )
    if (degrees < 0).any():
        raise ValueError("degrees must be non-negative")

    # Work in degree-descending order; map back at the end.
    order = np.argsort(-degrees, kind="stable")
    sorted_deg = degrees[order]
    block_id = _affinity_blocks(sorted_deg)

    u_parts = []
    v_parts = []

    # ---- Phase 1: dense ER inside each affinity block -----------------
    # Blocks are sized by their *largest*-degree member, so the
    # connectivity is scaled to the block's *smallest* degree
    # (rho_b = rho * d_min / (size-1)); otherwise low-degree members
    # would receive phase-1 edges beyond their whole degree budget and
    # the realised edge count would overshoot the target.
    n = num_vertices
    block_starts = np.flatnonzero(np.r_[True, block_id[1:] != block_id[:-1]])
    block_ends = np.r_[block_starts[1:], n]
    expected_in_block = np.zeros(n, dtype=np.float64)
    for s, e in zip(block_starts, block_ends):
        size = e - s
        if size < 2:
            continue
        min_degree = float(sorted_deg[e - 1])
        rho_b = min(1.0, params.rho * min_degree / (size - 1))
        if rho_b <= 0.0:
            continue
        # Sample each ordered pair (i, j), i != j, with probability
        # rho_b.  Blocks are small (size = degree + 1), so materialising
        # the size^2 pair grid is fine at benchmark-scale degree caps.
        local = np.arange(s, e, dtype=np.int64)
        ii, jj = np.meshgrid(local, local, indexing="ij")
        mask = (ii != jj) & (rng.random((size, size)) < rho_b)
        u_parts.append(ii[mask])
        v_parts.append(jj[mask])
        expected_in_block[s:e] = rho_b * (size - 1)

    # ---- Phase 2: Chung–Lu pairing of excess degree --------------------
    excess = np.maximum(sorted_deg - expected_in_block, 0.0)
    total_excess = excess.sum()
    if total_excess > 0:
        num_phase2 = int(round(total_excess))
        if num_phase2 > 0:
            weights = excess / total_excess
            src = rng.choice(n, size=num_phase2, p=weights)
            dst = rng.choice(n, size=num_phase2, p=weights)
            u_parts.append(src.astype(np.int64))
            v_parts.append(dst.astype(np.int64))

    if not u_parts:
        return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))

    u_sorted = np.concatenate(u_parts)
    v_sorted = np.concatenate(v_parts)
    # Undo the degree sort so labels refer to the caller's vertex ids.
    u = order[u_sorted]
    v = order[v_sorted]
    return u.astype(np.int64), v.astype(np.int64)
