"""Small deterministic and classical random graphs.

The paper's "next steps" section asks whether "a more deterministic
generator [should] be used in kernel 0 to facilitate validation of all
kernels".  These generators serve exactly that role in this repository:
they have closed-form degree structure, so Kernel 2's super-node / leaf
elimination and Kernel 3's fixed point can be checked analytically.
All return the library-standard ``(u, v)`` int64 edge arrays.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_nonneg_int, check_positive_int, check_probability, resolve_rng
from repro._util.rng import SeedLike
from repro.generators.base import EdgeList


def _empty() -> EdgeList:
    return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)


def path_graph_edges(num_vertices: int) -> EdgeList:
    """Directed path ``0 -> 1 -> ... -> N-1``.

    Every interior vertex has in-degree 1 (a "leaf" column under
    Kernel 2's filter), making the path the canonical worst case for
    the leaf-elimination step.
    """
    check_positive_int("num_vertices", num_vertices)
    if num_vertices == 1:
        return _empty()
    u = np.arange(num_vertices - 1, dtype=np.int64)
    return u, u + 1


def ring_graph_edges(num_vertices: int) -> EdgeList:
    """Directed cycle ``0 -> 1 -> ... -> N-1 -> 0``.

    The normalised adjacency matrix is a permutation matrix, so
    PageRank's fixed point is exactly uniform — used to validate
    Kernel 3 analytically.
    """
    check_positive_int("num_vertices", num_vertices)
    u = np.arange(num_vertices, dtype=np.int64)
    v = np.roll(u, -1)
    return u, v.copy()


def star_graph_edges(num_vertices: int) -> EdgeList:
    """Star: every vertex ``1..N-1`` points at vertex 0.

    Vertex 0 is the unambiguous super-node (max in-degree), so Kernel 2
    must zero its column; the remaining matrix is empty.
    """
    check_positive_int("num_vertices", num_vertices)
    if num_vertices == 1:
        return _empty()
    u = np.arange(1, num_vertices, dtype=np.int64)
    v = np.zeros(num_vertices - 1, dtype=np.int64)
    return u, v


def complete_graph_edges(num_vertices: int, include_self_loops: bool = False) -> EdgeList:
    """All ordered pairs ``(i, j)``, optionally including ``i == j``."""
    check_positive_int("num_vertices", num_vertices)
    idx = np.arange(num_vertices, dtype=np.int64)
    u, v = np.meshgrid(idx, idx, indexing="ij")
    u = u.ravel()
    v = v.ravel()
    if not include_self_loops:
        mask = u != v
        u, v = u[mask], v[mask]
    return u.copy(), v.copy()


def self_loop_edges(num_vertices: int) -> EdgeList:
    """One self-loop per vertex — degenerate input for failure testing."""
    check_positive_int("num_vertices", num_vertices)
    u = np.arange(num_vertices, dtype=np.int64)
    return u, u.copy()


def erdos_renyi_edges(
    num_vertices: int,
    num_edges: int,
    *,
    seed: SeedLike = None,
) -> EdgeList:
    """G(n, m)-style directed multigraph: ``num_edges`` uniform pairs.

    Unlike the classical simple-graph model, duplicates and self-loops
    are allowed, matching the benchmark's edge-list semantics.
    """
    check_positive_int("num_vertices", num_vertices)
    check_nonneg_int("num_edges", num_edges)
    rng = resolve_rng(seed)
    u = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    v = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    return u, v


def bernoulli_edges(
    num_vertices: int,
    probability: float,
    *,
    seed: SeedLike = None,
) -> EdgeList:
    """G(n, p) directed graph: each ordered pair kept with ``probability``.

    Materialises the full pair grid, so intended for small ``n`` in tests.
    """
    check_positive_int("num_vertices", num_vertices)
    check_probability("probability", probability)
    rng = resolve_rng(seed)
    grid = rng.random((num_vertices, num_vertices)) < probability
    np.fill_diagonal(grid, False)
    u, v = np.nonzero(grid)
    return u.astype(np.int64), v.astype(np.int64)
