"""Name-based generator lookup for the CLI and harness.

All registered generators share the signature
``fn(scale, edge_factor, *, seed) -> (u, v)`` so the pipeline can swap
Kernel 0's generator with a config string — the ablation the paper's
"next steps" section asks for.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from repro._util.rng import SeedLike
from repro.generators.base import EdgeList, GeneratorSpec
from repro.generators.bter import bter_edges
from repro.generators.kronecker import kronecker_edges
from repro.generators.ppl import ppl_edges
from repro.generators.simple import erdos_renyi_edges, ring_graph_edges

GeneratorFn = Callable[..., EdgeList]


def _kronecker(scale: int, edge_factor: int, *, seed: SeedLike = None) -> EdgeList:
    return kronecker_edges(scale, edge_factor, seed=seed)


def _erdos_renyi(scale: int, edge_factor: int, *, seed: SeedLike = None) -> EdgeList:
    spec = GeneratorSpec(scale, edge_factor)
    return erdos_renyi_edges(spec.num_vertices, spec.num_edges, seed=seed)


def _bter(scale: int, edge_factor: int, *, seed: SeedLike = None) -> EdgeList:
    spec = GeneratorSpec(scale, edge_factor)
    # Scale a PPL sequence so its total approximates M = k*N out-edges.
    from repro.generators.ppl import ppl_degree_sequence

    degrees = ppl_degree_sequence(spec.num_vertices, exponent=1.6)
    total = degrees.sum()
    if total > 0:
        factor = spec.num_edges / total
        degrees = np.maximum(0, np.round(degrees * factor)).astype(np.int64)
    return bter_edges(spec.num_vertices, degrees=degrees, seed=seed)


def _ppl(scale: int, edge_factor: int, *, seed: SeedLike = None) -> EdgeList:
    spec = GeneratorSpec(scale, edge_factor)
    from repro.generators.ppl import ppl_degree_sequence

    degrees = ppl_degree_sequence(spec.num_vertices, exponent=1.6)
    total = degrees.sum()
    if total > 0:
        factor = spec.num_edges / total
        degrees = np.maximum(0, np.round(degrees * factor)).astype(np.int64)
    return ppl_edges(spec.num_vertices, degrees=degrees, seed=seed)


def _ring(scale: int, edge_factor: int, *, seed: SeedLike = None) -> EdgeList:
    del edge_factor, seed  # deterministic; one edge per vertex
    spec = GeneratorSpec(scale, 1)
    return ring_graph_edges(spec.num_vertices)


_REGISTRY: Dict[str, Tuple[GeneratorFn, str]] = {
    "kronecker": (_kronecker, "Graph500 Kronecker / R-MAT (paper Kernel 0)"),
    "erdos-renyi": (_erdos_renyi, "uniform random directed multigraph"),
    "bter": (_bter, "block two-level Erdős–Rényi (Seshadhri et al. 2012)"),
    "ppl": (_ppl, "perfect power law stub pairing (Kepner 2012)"),
    "ring": (_ring, "deterministic directed cycle (validation)"),
}


def available_generators() -> Dict[str, str]:
    """Mapping of registered generator name -> one-line description."""
    return {name: desc for name, (_, desc) in _REGISTRY.items()}


def get_generator(name: str) -> GeneratorFn:
    """Look up a generator by registry name.

    Raises
    ------
    KeyError
        If ``name`` is not registered; the message lists valid names.
    """
    try:
        return _REGISTRY[name][0]
    except KeyError:
        valid = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown generator {name!r}; available: {valid}") from None
