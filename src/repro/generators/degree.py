"""Degree analysis for generated graphs.

Used by tests and the harness to confirm the generators produce the
approximately-power-law structure the paper's Kernel 0 requires, and to
pick apart Kernel 2's super-node / leaf populations before filtering.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro._util import check_positive_int
from repro.generators.base import validate_edge_list


def out_degrees(u: np.ndarray, v: np.ndarray, num_vertices: int) -> np.ndarray:
    """Out-degree of every vertex (edge multiplicity counted).

    Parameters
    ----------
    u, v:
        Edge arrays.
    num_vertices:
        Vertex count ``N``; the result has length ``N``.
    """
    validate_edge_list(u, v, num_vertices)
    return np.bincount(u, minlength=num_vertices).astype(np.int64)


def in_degrees(u: np.ndarray, v: np.ndarray, num_vertices: int) -> np.ndarray:
    """In-degree of every vertex (edge multiplicity counted)."""
    validate_edge_list(u, v, num_vertices)
    return np.bincount(v, minlength=num_vertices).astype(np.int64)


def degree_histogram(degrees: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram of a degree sequence.

    Returns
    -------
    (values, counts):
        ``values`` are the distinct degrees present (ascending) and
        ``counts[i]`` how many vertices have degree ``values[i]``.
    """
    degrees = np.asarray(degrees)
    if degrees.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    values, counts = np.unique(degrees, return_counts=True)
    return values.astype(np.int64), counts.astype(np.int64)


def power_law_exponent(degrees: np.ndarray, d_min: int = 1) -> float:
    """Maximum-likelihood power-law exponent of a degree sequence.

    Uses the continuous Hill/Clauset estimator
    ``alpha = 1 + n / sum(ln(d_i / (d_min - 1/2)))`` over degrees
    ``>= d_min``.  Returns ``nan`` when fewer than two qualifying degrees
    exist (the estimator is undefined).

    Parameters
    ----------
    degrees:
        Degree sequence (zeros are ignored).
    d_min:
        Lower cutoff of the power-law region.

    Examples
    --------
    >>> rng = np.random.default_rng(0)
    >>> d = np.round(rng.pareto(1.5, size=4000) + 1).astype(int)
    >>> 1.5 < power_law_exponent(d) < 3.5
    True
    """
    check_positive_int("d_min", d_min)
    degrees = np.asarray(degrees, dtype=np.float64)
    tail = degrees[degrees >= d_min]
    if tail.size < 2:
        return float("nan")
    return float(1.0 + tail.size / np.log(tail / (d_min - 0.5)).sum())
