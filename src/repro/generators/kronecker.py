"""Graph500 Kronecker (R-MAT) edge generator — the paper's Kernel 0.

This is a vectorised transcription of the reference Matlab/Octave
``kronecker_generator`` published on graph500.org, which the paper cites
as the required Kernel 0 generator.  For each of ``M`` edges the generator
descends ``scale`` levels of the recursive 2x2 initiator matrix

    [A  B]        A = 0.57, B = 0.19,
    [C  D]        C = 0.19, D = 1 - A - B - C = 0.05

choosing one quadrant per level; the chosen quadrant contributes one bit
to each endpoint label.  The reference implementation draws, per level,
one uniform variate for the row bit and one for the column bit with the
conditional probability depending on the row bit — reproduced exactly
here (same recurrence, same conditional form) so distributions match.

Two properties the paper leans on are preserved:

* **communication-free parallelism** — :func:`kronecker_blocks` derives an
  independent child seed per block, so shards can be generated on
  different workers with no shared state and identical results to the
  serial run;
* **scalability** — memory is bounded by the block size, not ``M``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro._util import check_positive_int, derive_seed, resolve_rng
from repro._util.rng import SeedLike
from repro.generators.base import EdgeList, GeneratorSpec


@dataclass(frozen=True)
class KroneckerParams:
    """Initiator probabilities and permutation switches.

    Attributes
    ----------
    a, b, c:
        Quadrant probabilities of the 2x2 initiator (``d = 1-a-b-c``).
        Defaults are the Graph500 values (0.57, 0.19, 0.19).
    permute_vertices:
        Apply a random relabelling of vertex ids, as the Graph500
        reference code does, to hide the recursive structure.
    permute_edges:
        Shuffle edge order after generation (Graph500 reference does
        this; irrelevant to the pipeline because Kernel 1 re-sorts).
    """

    a: float = 0.57
    b: float = 0.19
    c: float = 0.19
    permute_vertices: bool = True
    permute_edges: bool = True

    def __post_init__(self) -> None:
        for name, p in (("a", self.a), ("b", self.b), ("c", self.c)):
            if not 0.0 < p < 1.0:
                raise ValueError(f"{name} must be in (0, 1), got {p}")
        if self.a + self.b + self.c >= 1.0:
            raise ValueError(
                "a + b + c must be < 1 so quadrant d has positive mass; "
                f"got {self.a + self.b + self.c}"
            )

    @property
    def d(self) -> float:
        """Probability of the fourth quadrant."""
        return 1.0 - self.a - self.b - self.c


DEFAULT_PARAMS = KroneckerParams()


def _kronecker_block(
    scale: int,
    num_edges: int,
    params: KroneckerParams,
    rng: np.random.Generator,
) -> EdgeList:
    """Generate ``num_edges`` Kronecker edges without permutations."""
    ab = params.a + params.b
    c_norm = params.c / (1.0 - ab)
    a_norm = params.a / ab

    u = np.zeros(num_edges, dtype=np.int64)
    v = np.zeros(num_edges, dtype=np.int64)
    for level in range(scale):
        # Row bit: 1 with probability 1-ab (lower half of the initiator).
        ii_bit = rng.random(num_edges) > ab
        # Column bit conditional on the row bit, as in the reference code.
        threshold = np.where(ii_bit, c_norm, a_norm)
        jj_bit = rng.random(num_edges) > threshold
        u += ii_bit.astype(np.int64) << level
        v += jj_bit.astype(np.int64) << level
    return u, v


def kronecker_edges(
    scale: int,
    edge_factor: int = 16,
    *,
    params: Optional[KroneckerParams] = None,
    seed: SeedLike = None,
    num_edges: Optional[int] = None,
) -> EdgeList:
    """Generate the full Kronecker edge list for one benchmark run.

    Parameters
    ----------
    scale:
        Graph500 scale ``S``; the graph has ``N = 2**S`` vertices.
    edge_factor:
        Average edges per vertex (paper default 16).
    params:
        Initiator probabilities / permutation switches; defaults to the
        Graph500 values.
    seed:
        Seed or generator for reproducible output.
    num_edges:
        Override the edge count (defaults to ``edge_factor * 2**scale``);
        used by the block generator and by tests.

    Returns
    -------
    (u, v):
        ``int64`` arrays of start and end vertices, 0-based.

    Examples
    --------
    >>> u, v = kronecker_edges(scale=4, edge_factor=2, seed=1)
    >>> u.shape, int(u.max()) < 16
    ((32,), True)
    """
    spec = GeneratorSpec(scale=scale, edge_factor=edge_factor)
    params = params or DEFAULT_PARAMS
    rng = resolve_rng(seed)
    m = spec.num_edges if num_edges is None else check_positive_int("num_edges", num_edges)

    u, v = _kronecker_block(scale, m, params, rng)

    if params.permute_edges:
        order = rng.permutation(m)
        u, v = u[order], v[order]
    if params.permute_vertices:
        relabel = rng.permutation(spec.num_vertices).astype(np.int64)
        u, v = relabel[u], relabel[v]
    return u, v


def kronecker_blocks(
    scale: int,
    edge_factor: int = 16,
    *,
    block_edges: int = 1 << 20,
    params: Optional[KroneckerParams] = None,
    seed: int = 0,
) -> Iterator[EdgeList]:
    """Yield the edge list in independent blocks of ``block_edges`` edges.

    Each block draws from a child seed derived from ``seed`` and the block
    index, so blocks can be produced out of order or on different workers
    and still reproduce the same multiset of edges — the
    "run in parallel without requiring communication between processors"
    property the paper highlights for the Graph500 generator.

    Vertex permutation is applied per-block from a *shared* relabelling
    derived from ``seed`` so all blocks agree on the final labels.

    Yields
    ------
    (u, v):
        Edge blocks; all blocks are full-size except possibly the last.
    """
    spec = GeneratorSpec(scale=scale, edge_factor=edge_factor)
    check_positive_int("block_edges", block_edges)
    params = params or DEFAULT_PARAMS

    relabel: Optional[np.ndarray] = None
    if params.permute_vertices:
        label_rng = resolve_rng(derive_seed(seed, 0xFACE))
        relabel = label_rng.permutation(spec.num_vertices).astype(np.int64)

    remaining = spec.num_edges
    block_index = 0
    while remaining > 0:
        m = min(block_edges, remaining)
        rng = resolve_rng(derive_seed(seed, block_index))
        u, v = _kronecker_block(scale, m, params, rng)
        if params.permute_edges:
            order = rng.permutation(m)
            u, v = u[order], v[order]
        if relabel is not None:
            u, v = relabel[u], relabel[v]
        yield u, v
        remaining -= m
        block_index += 1
