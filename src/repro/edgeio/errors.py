"""Exceptions raised by the edge-file layer."""

from __future__ import annotations


class EdgeIOError(Exception):
    """Base class for all edge-file I/O failures."""


class CorruptEdgeFileError(EdgeIOError):
    """An edge file contains malformed lines (wrong field count,
    non-numeric labels, or labels outside the declared vertex range)."""


class DatasetLayoutError(EdgeIOError):
    """A dataset directory is missing shards, its manifest disagrees with
    the files on disk, or the manifest itself is unreadable."""
