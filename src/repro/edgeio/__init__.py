"""Edge-file I/O (the pipeline's on-disk substrate).

Kernels 0 and 1 exchange data through files of tab-separated vertex pairs
(``u\\tv\\n`` per edge, paper Section IV.A/B).  This package owns:

* :mod:`repro.edgeio.format` — encode/decode between edge arrays and the
  TSV byte format, including the 0-based/1-based vertex label option;
* :mod:`repro.edgeio.dataset` — :class:`EdgeDataset`, a sharded directory
  of edge files with a JSON manifest ("the number of files is a free
  parameter to be set by the implementer");
* :mod:`repro.edgeio.binary` — an optional ``.npy`` twin format used by
  ablation benchmarks to isolate string-parsing cost.

Writes are atomic (temp file + rename) so a crashed run never leaves a
half-written shard that a later kernel would silently truncate on.
"""

from __future__ import annotations

from repro.edgeio.format import (
    DEFAULT_VERTEX_BASE,
    decode_edges,
    encode_edges,
    parse_edge_line,
)
from repro.edgeio.dataset import EdgeDataset, shard_slices
from repro.edgeio.manifest import DatasetManifest, ShardInfo
from repro.edgeio.binary import read_binary_shard, write_binary_shard
from repro.edgeio.errors import CorruptEdgeFileError, DatasetLayoutError

__all__ = [
    "CorruptEdgeFileError",
    "DatasetLayoutError",
    "DatasetManifest",
    "DEFAULT_VERTEX_BASE",
    "EdgeDataset",
    "ShardInfo",
    "decode_edges",
    "encode_edges",
    "parse_edge_line",
    "read_binary_shard",
    "shard_slices",
    "write_binary_shard",
]
