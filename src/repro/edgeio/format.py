"""TSV edge format: ``u\\tv\\n`` per edge (paper Section IV.A).

Encoding renders both columns with numpy's string kernels and joins them;
decoding tokenises the whole buffer at once rather than looping over
lines in Python.  A slow-but-strict line parser
(:func:`parse_edge_line`) backs the corruption diagnostics with line
numbers.

The paper's Matlab reference is 1-based; this library is 0-based
internally.  ``vertex_base`` selects the on-disk convention (default 0)
and conversion happens at this boundary only.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro._util import check_nonneg_int, check_same_length
from repro.edgeio.errors import CorruptEdgeFileError

#: On-disk vertex labels start at this value by default.
DEFAULT_VERTEX_BASE = 0


def encode_edges(
    u: np.ndarray,
    v: np.ndarray,
    *,
    vertex_base: int = DEFAULT_VERTEX_BASE,
) -> bytes:
    """Render edge arrays to TSV bytes.

    Parameters
    ----------
    u, v:
        Integer edge arrays (0-based labels).
    vertex_base:
        Added to every label on output (0 keeps labels as-is, 1 writes
        Matlab-style 1-based labels).

    Returns
    -------
    bytes
        ``b"u\\tv\\n"`` per edge, empty for empty input.

    Examples
    --------
    >>> import numpy as np
    >>> encode_edges(np.array([0, 2]), np.array([1, 0]))
    b'0\\t1\\n2\\t0\\n'
    """
    check_same_length("u", u, "v", v)
    check_nonneg_int("vertex_base", vertex_base)
    if len(u) == 0:
        return b""
    u_out = np.asarray(u, dtype=np.int64) + vertex_base
    v_out = np.asarray(v, dtype=np.int64) + vertex_base
    u_txt = np.char.mod("%d", u_out)
    v_txt = np.char.mod("%d", v_out)
    lines = np.char.add(np.char.add(u_txt, "\t"), np.char.add(v_txt, "\n"))
    return "".join(lines.tolist()).encode("ascii")


def decode_edges(
    payload: bytes,
    *,
    vertex_base: int = DEFAULT_VERTEX_BASE,
    strict: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Parse TSV bytes back into ``(u, v)`` int64 arrays.

    Parameters
    ----------
    payload:
        File contents.
    vertex_base:
        Subtracted from every label on input.
    strict:
        When True, every line is validated individually and the first
        malformed line is reported with its line number; when False the
        buffer is tokenised in one shot (corruption is still detected,
        with a buffer-level message).

    Raises
    ------
    CorruptEdgeFileError
        On odd token counts or non-integer tokens.
    """
    check_nonneg_int("vertex_base", vertex_base)
    if not payload or not payload.strip():
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

    if strict:
        u_list = []
        v_list = []
        for lineno, raw in enumerate(payload.splitlines(), start=1):
            if not raw.strip():
                continue
            a, b = parse_edge_line(raw, lineno=lineno)
            u_list.append(a)
            v_list.append(b)
        u = np.array(u_list, dtype=np.int64) - vertex_base
        v = np.array(v_list, dtype=np.int64) - vertex_base
        return u, v

    tokens = payload.split()
    if len(tokens) % 2 != 0:
        raise CorruptEdgeFileError(
            f"edge payload has an odd number of tokens ({len(tokens)}); "
            "each edge needs exactly two vertex labels"
        )
    try:
        flat = np.array(tokens, dtype=np.int64)
    except (ValueError, OverflowError) as exc:
        raise CorruptEdgeFileError(
            f"edge payload contains a non-integer vertex label: {exc}"
        ) from exc
    edges = flat.reshape(-1, 2)
    u = edges[:, 0] - vertex_base
    v = edges[:, 1] - vertex_base
    return np.ascontiguousarray(u), np.ascontiguousarray(v)


def parse_edge_line(raw: bytes, *, lineno: int = 0) -> Tuple[int, int]:
    """Parse one ``u\\tv`` line strictly.

    Raises
    ------
    CorruptEdgeFileError
        If the line does not contain exactly two integer fields.
    """
    parts = raw.split()
    if len(parts) != 2:
        raise CorruptEdgeFileError(
            f"line {lineno}: expected 2 fields, found {len(parts)}: {raw[:80]!r}"
        )
    try:
        return int(parts[0]), int(parts[1])
    except ValueError as exc:
        raise CorruptEdgeFileError(
            f"line {lineno}: non-integer vertex label in {raw[:80]!r}"
        ) from exc
