"""TSV edge format: ``u\\tv\\n`` per edge (paper Section IV.A).

Encoding and decoding are the pipeline's data-movement hot path — every
Kernel 0 shard write and Kernel 1 shard read pays them — so both run as
**vectorized pure-numpy byte assembly**: digits are written straight
into one ``uint8`` buffer (encode) and parsed straight out of the file
bytes (decode) without materialising per-line Python strings or a
Python token list.  The historical string-kernel paths are kept as
private functions: they back the corruption diagnostics (exact error
messages, line numbers via :func:`parse_edge_line`), handle exotic but
legal inputs the fast path declines (signed labels, ``+`` prefixes,
>18-digit tokens), and serve as the reference implementation that
``tools/bench_codec.py`` measures the fast path against.  The fast and
legacy paths are asserted byte-identical by the test suite.

The paper's Matlab reference is 1-based; this library is 0-based
internally.  ``vertex_base`` selects the on-disk convention (default 0)
and conversion happens at this boundary only.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro._util import check_nonneg_int, check_same_length
from repro.edgeio.errors import CorruptEdgeFileError

#: On-disk vertex labels start at this value by default.
DEFAULT_VERTEX_BASE = 0

_ASCII_ZERO = 0x30
_TAB = 0x09
_NEWLINE = 0x0A

#: Tokens longer than this may overflow int64 during the vectorized
#: accumulate; the legacy parser (whose ``np.array(tokens)`` conversion
#: reports overflow as corruption) handles them instead.
_MAX_FAST_DIGITS = 18


def encode_edges(
    u: np.ndarray,
    v: np.ndarray,
    *,
    vertex_base: int = DEFAULT_VERTEX_BASE,
) -> bytes:
    """Render edge arrays to TSV bytes.

    Parameters
    ----------
    u, v:
        Integer edge arrays (0-based labels).
    vertex_base:
        Added to every label on output (0 keeps labels as-is, 1 writes
        Matlab-style 1-based labels).

    Returns
    -------
    bytes
        ``b"u\\tv\\n"`` per edge, empty for empty input.

    Examples
    --------
    >>> import numpy as np
    >>> encode_edges(np.array([0, 2]), np.array([1, 0]))
    b'0\\t1\\n2\\t0\\n'
    """
    check_same_length("u", u, "v", v)
    check_nonneg_int("vertex_base", vertex_base)
    if len(u) == 0:
        return b""
    u_out = np.asarray(u, dtype=np.int64) + vertex_base
    v_out = np.asarray(v, dtype=np.int64) + vertex_base
    if int(u_out.min()) < 0 or int(v_out.min()) < 0:
        # Negative labels are legal bytes-wise but rare enough that the
        # fast path does not carry sign logic; the string kernels do.
        return _encode_edges_strings(u_out, v_out)
    return _encode_edges_fast(u_out, v_out)


def _encode_edges_strings(u_out: np.ndarray, v_out: np.ndarray) -> bytes:
    """Reference encoder via numpy's string kernels (slow, general).

    Builds one Python string object per line; kept for negative labels
    and as the baseline ``tools/bench_codec.py`` measures against.
    """
    u_txt = np.char.mod("%d", u_out)
    v_txt = np.char.mod("%d", v_out)
    lines = np.char.add(np.char.add(u_txt, "\t"), np.char.add(v_txt, "\n"))
    return "".join(lines.tolist()).encode("ascii")


def _digit_counts(values: np.ndarray) -> np.ndarray:
    """Decimal digit count of each non-negative int64 (exact, no log10)."""
    counts = np.ones(len(values), dtype=np.int64)
    bound = 10
    ceiling = int(values.max())
    while bound <= ceiling:
        counts += values >= bound
        bound *= 10
    return counts


def _fill_digits(
    buf: np.ndarray,
    values: np.ndarray,
    digits: np.ndarray,
    last_pos: np.ndarray,
) -> None:
    """Write each value's decimal digits ending at ``last_pos`` (LSB there)."""
    remaining = values
    max_digits = int(digits.max())
    for k in range(max_digits):
        remaining, digit = np.divmod(remaining, 10)
        mask = digits > k
        buf[last_pos[mask] - k] = _ASCII_ZERO + digit[mask]


def _encode_edges_fast(u_out: np.ndarray, v_out: np.ndarray) -> bytes:
    """Vectorized encoder: one uint8 buffer, no per-line Python objects.

    Layout per line ``i``: ``u`` digits, tab, ``v`` digits, newline.
    Every write below is a single fancy-indexed numpy store; the byte
    output is identical to :func:`_encode_edges_strings`.
    """
    du = _digit_counts(u_out)
    dv = _digit_counts(v_out)
    ends = np.cumsum(du + dv + 2)
    buf = np.empty(int(ends[-1]), dtype=np.uint8)
    buf[ends - 1] = _NEWLINE
    tab_pos = ends - dv - 2
    buf[tab_pos] = _TAB
    _fill_digits(buf, u_out, du, tab_pos - 1)
    _fill_digits(buf, v_out, dv, ends - 2)
    return buf.tobytes()


def decode_edges(
    payload: bytes,
    *,
    vertex_base: int = DEFAULT_VERTEX_BASE,
    strict: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Parse TSV bytes back into ``(u, v)`` int64 arrays.

    Parameters
    ----------
    payload:
        File contents.
    vertex_base:
        Subtracted from every label on input.
    strict:
        When True, every line is validated individually and the first
        malformed line is reported with its line number; when False the
        buffer is tokenised in one shot (corruption is still detected,
        with a buffer-level message).

    Raises
    ------
    CorruptEdgeFileError
        On odd token counts or non-integer tokens.
    """
    check_nonneg_int("vertex_base", vertex_base)
    if not payload or not payload.strip():
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

    if strict:
        u_list = []
        v_list = []
        for lineno, raw in enumerate(payload.splitlines(), start=1):
            if not raw.strip():
                continue
            a, b = parse_edge_line(raw, lineno=lineno)
            u_list.append(a)
            v_list.append(b)
        u = np.array(u_list, dtype=np.int64) - vertex_base
        v = np.array(v_list, dtype=np.int64) - vertex_base
        return u, v

    decoded = _decode_edges_fast(payload)
    if decoded is None:
        decoded = _decode_edges_split(payload)
    u, v = decoded
    if vertex_base:
        u = u - vertex_base
        v = v - vertex_base
    return np.ascontiguousarray(u), np.ascontiguousarray(v)


def _decode_edges_fast(
    payload: bytes,
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Buffer-level tokenizer: parse labels straight from the bytes.

    Handles the overwhelmingly common case — non-negative decimal
    labels separated by ASCII whitespace — without building a Python
    token list (``payload.split()`` allocates one PyObject per label,
    which dominates warm decode).  Returns ``None`` when the payload
    needs the general parser: any byte that is neither a digit nor
    whitespace (signs, letters — the legacy path owns the error
    wording), or a token long enough to overflow the int64 accumulate.
    """
    data = np.frombuffer(payload, dtype=np.uint8)
    is_digit = (data >= _ASCII_ZERO) & (data <= _ASCII_ZERO + 9)
    # bytes.split() splits on exactly this set: space, \t\n\r\x0b\x0c.
    is_ws = (
        (data == 0x20) | (data == 0x09) | (data == 0x0A)
        | (data == 0x0D) | (data == 0x0B) | (data == 0x0C)
    )
    if not bool((is_digit | is_ws).all()):
        return None
    flags = np.zeros(len(data) + 2, dtype=np.int8)
    flags[1:-1] = is_digit
    edges_of = np.diff(flags)
    starts = np.flatnonzero(edges_of == 1)
    stops = np.flatnonzero(edges_of == -1)
    num_tokens = len(starts)
    if num_tokens % 2 != 0:
        raise CorruptEdgeFileError(
            f"edge payload has an odd number of tokens ({num_tokens}); "
            "each edge needs exactly two vertex labels"
        )
    lengths = stops - starts
    if int(lengths.max()) > _MAX_FAST_DIGITS:
        return None
    values = np.zeros(num_tokens, dtype=np.int64)
    for k in range(int(lengths.max())):
        mask = lengths > k
        values[mask] = values[mask] * 10 + (
            data[starts[mask] + k].astype(np.int64) - _ASCII_ZERO
        )
    return values[0::2], values[1::2]


def _decode_edges_split(payload: bytes) -> Tuple[np.ndarray, np.ndarray]:
    """General tokenizer via ``payload.split()`` (slow, allocates a
    Python token list).  Owns the corruption error wording and the
    exotic-but-legal inputs (signed labels, ``+`` prefixes, tokens the
    int64 accumulate could overflow on)."""
    tokens = payload.split()
    if len(tokens) % 2 != 0:
        raise CorruptEdgeFileError(
            f"edge payload has an odd number of tokens ({len(tokens)}); "
            "each edge needs exactly two vertex labels"
        )
    try:
        flat = np.array(tokens, dtype=np.int64)
    except (ValueError, OverflowError) as exc:
        raise CorruptEdgeFileError(
            f"edge payload contains a non-integer vertex label: {exc}"
        ) from exc
    edges = flat.reshape(-1, 2)
    return edges[:, 0], edges[:, 1]


def parse_edge_line(raw: bytes, *, lineno: int = 0) -> Tuple[int, int]:
    """Parse one ``u\\tv`` line strictly.

    Raises
    ------
    CorruptEdgeFileError
        If the line does not contain exactly two integer fields.
    """
    parts = raw.split()
    if len(parts) != 2:
        raise CorruptEdgeFileError(
            f"line {lineno}: expected 2 fields, found {len(parts)}: {raw[:80]!r}"
        )
    try:
        return int(parts[0]), int(parts[1])
    except ValueError as exc:
        raise CorruptEdgeFileError(
            f"line {lineno}: non-integer vertex label in {raw[:80]!r}"
        ) from exc
