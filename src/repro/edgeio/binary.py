"""Binary (``.npy``) shard format.

The paper's pipeline is specified over text files, and Kernel 0/1 cost is
partly string formatting/parsing.  To let benchmarks isolate that cost
(`benchmarks/bench_ablation_shards.py`), datasets can also be written as
``.npy`` shards holding an ``(m, 2) int64`` array per shard.  The dataset
manifest records which format a directory uses; both formats share all
other machinery.
"""

from __future__ import annotations

from pathlib import Path
from typing import Tuple

import numpy as np

from repro._util import check_same_length
from repro.edgeio.errors import CorruptEdgeFileError


def write_binary_shard(path: Path, u: np.ndarray, v: np.ndarray) -> int:
    """Write one binary shard; returns bytes written.

    The shard holds a single ``(m, 2)`` little-endian int64 array.
    Writing is atomic (temp + rename).
    """
    check_same_length("u", u, "v", v)
    path = Path(path)
    stacked = np.column_stack(
        [np.asarray(u, dtype=np.int64), np.asarray(v, dtype=np.int64)]
    )
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        np.save(fh, stacked)
    tmp.replace(path)
    return path.stat().st_size


def read_binary_shard(
    path: Path, *, mmap: bool = False
) -> Tuple[np.ndarray, np.ndarray]:
    """Read one binary shard back into ``(u, v)``.

    Parameters
    ----------
    mmap:
        Memory-map the payload instead of reading it: the returned
        columns are **read-only strided views** over the OS page cache,
        so concurrent readers of one file share physical pages instead
        of each holding a private copy.  Consumers that need to mutate
        (or need contiguity) must ``.copy()`` — the copy-on-write seam
        of the zero-copy shard plane (ARCHITECTURE.md).

    Raises
    ------
    CorruptEdgeFileError
        If the file is not a 2-column int64 ``.npy`` array.
    """
    path = Path(path)
    try:
        arr = np.load(
            path, mmap_mode="r" if mmap else None, allow_pickle=False
        )
    except (ValueError, OSError) as exc:
        raise CorruptEdgeFileError(f"cannot read binary shard {path}: {exc}") from exc
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise CorruptEdgeFileError(
            f"binary shard {path} has shape {arr.shape}, expected (m, 2)"
        )
    if arr.dtype.kind != "i":
        raise CorruptEdgeFileError(
            f"binary shard {path} has dtype {arr.dtype}, expected integer"
        )
    arr = arr.astype(np.int64, copy=False)
    if mmap and isinstance(arr, np.memmap):
        # astype was a no-op view: hand out the mapped columns as-is
        # (an ascontiguousarray here would silently defeat the point
        # by materialising private copies).  A dtype that *did* need
        # converting fell through to a private array above.
        return arr[:, 0], arr[:, 1]
    return np.ascontiguousarray(arr[:, 0]), np.ascontiguousarray(arr[:, 1])
