"""Sharded edge datasets: a directory of edge files plus a manifest.

``EdgeDataset`` is the unit of exchange between kernels: Kernel 0 writes
one, Kernel 1 reads it and writes another, Kernel 2 reads that.  The
shard count is the "free parameter" of paper Sections IV.A/B; shard
boundaries are byte-independent so shards can be produced or consumed in
parallel.

Key operations::

    ds = EdgeDataset.write(dir, u, v, num_vertices=N, num_shards=4)
    ds = EdgeDataset.open(dir)              # verify + load manifest
    u, v = ds.read_all()                    # concatenate every shard
    for u, v in ds.iter_shards(): ...       # stream shard-at-a-time
    with EdgeDataset.stream_writer(...) as w:
        w.append(u_block, v_block)          # out-of-core producer
"""

from __future__ import annotations

import zlib
from pathlib import Path
from types import TracebackType
from typing import Iterator, List, Optional, Tuple, Type

import numpy as np

from repro._util import check_nonneg_int, check_positive_int
from repro.edgeio.binary import read_binary_shard, write_binary_shard
from repro.edgeio.errors import CorruptEdgeFileError, DatasetLayoutError
from repro.edgeio.format import DEFAULT_VERTEX_BASE, decode_edges, encode_edges
from repro.edgeio.manifest import DatasetManifest, ShardInfo

_SHARD_TEMPLATE = "part-{index:05d}.{ext}"
_EXTENSIONS = {"tsv": "tsv", "npy": "npy", "tsv.gz": "tsv.gz"}


def shard_slices(num_edges: int, num_shards: int) -> List[Tuple[int, int]]:
    """Split ``num_edges`` into ``num_shards`` contiguous [start, end) ranges.

    Shard sizes differ by at most one edge; empty shards are allowed when
    ``num_shards > num_edges`` (the files are still written, which
    exercises downstream empty-shard handling).

    Examples
    --------
    >>> shard_slices(10, 3)
    [(0, 4), (4, 7), (7, 10)]
    """
    check_nonneg_int("num_edges", num_edges)
    check_positive_int("num_shards", num_shards)
    base = num_edges // num_shards
    remainder = num_edges % num_shards
    slices = []
    start = 0
    for index in range(num_shards):
        size = base + (1 if index < remainder else 0)
        slices.append((start, start + size))
        start += size
    return slices


def _shard_name(index: int, fmt: str) -> str:
    return _SHARD_TEMPLATE.format(index=index, ext=_EXTENSIONS[fmt])


def shard_file_name(index: int, fmt: str) -> str:
    """Canonical shard filename for ``index`` in format ``fmt``.

    Exposed so out-of-band producers/consumers (the async executor's
    per-shard tasks) can address shard files before a manifest exists.
    """
    if fmt not in _EXTENSIONS:
        raise ValueError(f"fmt must be one of {sorted(_EXTENSIONS)}, got {fmt!r}")
    return _shard_name(index, fmt)


def write_shard(
    directory: Path,
    index: int,
    u: np.ndarray,
    v: np.ndarray,
    *,
    fmt: str = "tsv",
    vertex_base: int = DEFAULT_VERTEX_BASE,
    checksums: bool = True,
) -> ShardInfo:
    """Write one shard file (atomically) and return its manifest entry.

    This is the single-shard core of :meth:`EdgeDataset.write`, split
    out so shard writes can be scheduled as independent tasks; the
    caller is responsible for eventually assembling the ``ShardInfo``
    list into a manifest (shards without a manifest read as an
    incomplete dataset, by design).
    """
    if fmt not in _EXTENSIONS:
        raise ValueError(f"fmt must be one of {sorted(_EXTENSIONS)}, got {fmt!r}")
    directory = Path(directory)
    name = _shard_name(index, fmt)
    path = directory / name
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    if fmt in ("tsv", "tsv.gz"):
        payload = encode_edges(u, v, vertex_base=vertex_base)
        if fmt == "tsv.gz":
            import gzip

            payload = gzip.compress(payload, compresslevel=6)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_bytes(payload)
        tmp.replace(path)
        crc = zlib.crc32(payload) if checksums else None
        return ShardInfo(
            name=name, num_edges=len(u), crc32=crc, num_bytes=len(payload)
        )
    nbytes = write_binary_shard(path, u, v)
    return ShardInfo(name=name, num_edges=len(u), crc32=None, num_bytes=nbytes)


def read_shard_file(
    path: Path,
    *,
    fmt: str = "tsv",
    vertex_base: int = DEFAULT_VERTEX_BASE,
) -> Tuple[np.ndarray, np.ndarray]:
    """Read one shard file back into ``(u, v)`` (0-based labels).

    The manifest-free counterpart of :meth:`EdgeDataset.read_shard`, for
    consumers that overlap shard reads with the producer still writing
    later shards (no count/bound verification — the producing task
    already holds the arrays, and contracts re-verify the published
    dataset).
    """
    if fmt not in _EXTENSIONS:
        raise ValueError(f"fmt must be one of {sorted(_EXTENSIONS)}, got {fmt!r}")
    path = Path(path)
    if fmt in ("tsv", "tsv.gz"):
        payload = path.read_bytes()
        if fmt == "tsv.gz":
            import gzip

            try:
                payload = gzip.decompress(payload)
            except (OSError, EOFError, zlib.error) as exc:
                raise CorruptEdgeFileError(
                    f"{path}: gzip decompression failed: {exc}"
                ) from exc
        return decode_edges(payload, vertex_base=vertex_base)
    return read_binary_shard(path)


class EdgeDataset:
    """A verified, sharded, on-disk edge list.

    Instances are handles over a directory; the constructor does not touch
    the filesystem.  Use :meth:`write`, :meth:`stream_writer`, or
    :meth:`open` to produce one.
    """

    def __init__(
        self, directory: Path, manifest: DatasetManifest,
        *, mmap: bool = False,
    ) -> None:
        self.directory = Path(directory)
        self.manifest = manifest
        #: Serve ``npy`` shard payloads as read-only memory-mapped
        #: views (text formats always decode into private arrays).
        self.mmap = bool(mmap)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Total edges across all shards."""
        return self.manifest.num_edges

    @property
    def num_vertices(self) -> int:
        """Declared vertex-count bound ``N``."""
        return self.manifest.num_vertices

    @property
    def num_shards(self) -> int:
        """Number of shard files."""
        return len(self.manifest.shards)

    @property
    def fmt(self) -> str:
        """Payload format, ``"tsv"`` or ``"npy"``."""
        return self.manifest.fmt

    def shard_paths(self) -> List[Path]:
        """Absolute paths of every shard, in order."""
        return [self.directory / s.name for s in self.manifest.shards]

    def total_bytes(self) -> int:
        """Sum of shard sizes recorded in the manifest."""
        return sum(s.num_bytes for s in self.manifest.shards)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EdgeDataset({self.directory}, edges={self.num_edges}, "
            f"shards={self.num_shards}, fmt={self.fmt!r})"
        )

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    @classmethod
    def write(
        cls,
        directory: Path,
        u: np.ndarray,
        v: np.ndarray,
        *,
        num_vertices: int,
        num_shards: int = 1,
        vertex_base: int = DEFAULT_VERTEX_BASE,
        fmt: str = "tsv",
        checksums: bool = True,
        extra: Optional[dict] = None,
    ) -> "EdgeDataset":
        """Write full in-memory edge arrays as a sharded dataset.

        Parameters
        ----------
        directory:
            Target directory (created if needed; existing shards with
            clashing names are overwritten).
        u, v:
            Edge arrays (0-based labels).
        num_vertices:
            Declared label bound ``N``.
        num_shards:
            File count — the benchmark's free parameter.
        vertex_base:
            On-disk label base.
        fmt:
            ``"tsv"`` (paper format) or ``"npy"``.
        checksums:
            Record CRC32 per shard (tsv only; npy relies on the npy
            header for structure).
        extra:
            Free-form metadata stored in the manifest.
        """
        if fmt not in _EXTENSIONS:
            raise ValueError(f"fmt must be one of {sorted(_EXTENSIONS)}, got {fmt!r}")
        check_positive_int("num_vertices", num_vertices)
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)

        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        shards: List[ShardInfo] = []
        for index, (start, end) in enumerate(shard_slices(len(u), num_shards)):
            shards.append(
                write_shard(
                    directory, index, u[start:end], v[start:end],
                    fmt=fmt, vertex_base=vertex_base, checksums=checksums,
                )
            )

        manifest = DatasetManifest(
            num_vertices=num_vertices,
            num_edges=len(u),
            vertex_base=vertex_base,
            shards=shards,
            fmt=fmt,
            extra=dict(extra or {}),
        )
        manifest.save(directory)
        return cls(directory, manifest)

    @classmethod
    def stream_writer(
        cls,
        directory: Path,
        *,
        num_vertices: int,
        vertex_base: int = DEFAULT_VERTEX_BASE,
        fmt: str = "tsv",
        edges_per_shard: int = 1 << 20,
        extra: Optional[dict] = None,
    ) -> "EdgeDatasetWriter":
        """Open a streaming writer that rolls shards every
        ``edges_per_shard`` appended edges.

        Use as a context manager; the manifest is written on clean exit.
        """
        return EdgeDatasetWriter(
            Path(directory),
            num_vertices=num_vertices,
            vertex_base=vertex_base,
            fmt=fmt,
            edges_per_shard=edges_per_shard,
            extra=extra,
        )

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls, directory: Path, *, verify: bool = True, mmap: bool = False
    ) -> "EdgeDataset":
        """Open an existing dataset.

        Parameters
        ----------
        directory:
            Dataset directory containing ``manifest.json``.
        verify:
            Check shard existence and byte sizes against the manifest.
        mmap:
            Serve ``npy`` shard payloads as read-only memory-mapped
            views (see :func:`repro.edgeio.binary.read_binary_shard`);
            ignored for text formats.
        """
        directory = Path(directory)
        manifest = DatasetManifest.load(directory)
        if verify:
            manifest.verify_against(directory)
        return cls(directory, manifest, mmap=mmap)

    def read_shard(self, index: int, *, verify_checksum: bool = False) -> Tuple[np.ndarray, np.ndarray]:
        """Read one shard into ``(u, v)`` (0-based labels).

        Raises
        ------
        CorruptEdgeFileError
            On parse failures, checksum mismatches, or labels outside
            the declared vertex bound.
        """
        info = self.manifest.shards[index]
        path = self.directory / info.name
        if self.fmt in ("tsv", "tsv.gz"):
            payload = path.read_bytes()
            if verify_checksum and info.crc32 is not None:
                actual = zlib.crc32(payload)
                if actual != info.crc32:
                    raise CorruptEdgeFileError(
                        f"{path}: CRC mismatch (manifest {info.crc32:#x}, "
                        f"file {actual:#x})"
                    )
            if self.fmt == "tsv.gz":
                import gzip

                try:
                    payload = gzip.decompress(payload)
                except (OSError, EOFError, zlib.error) as exc:
                    raise CorruptEdgeFileError(
                        f"{path}: gzip decompression failed: {exc}"
                    ) from exc
            u, v = decode_edges(payload, vertex_base=self.manifest.vertex_base)
        else:
            u, v = read_binary_shard(path, mmap=self.mmap)
        if len(u) != info.num_edges:
            raise CorruptEdgeFileError(
                f"{path}: decoded {len(u)} edges, manifest says {info.num_edges}"
            )
        self._check_bounds(path, u, v)
        return u, v

    def _check_bounds(self, path: Path, u: np.ndarray, v: np.ndarray) -> None:
        n = self.manifest.num_vertices
        for name, arr in (("u", u), ("v", v)):
            if len(arr) and (arr.min() < 0 or arr.max() >= n):
                raise CorruptEdgeFileError(
                    f"{path}: {name} labels outside [0, {n}): "
                    f"min={arr.min()}, max={arr.max()}"
                )

    def iter_shards(self, *, verify_checksum: bool = False) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(u, v)`` per shard, in shard order."""
        for index in range(self.num_shards):
            yield self.read_shard(index, verify_checksum=verify_checksum)

    def iter_batches(self, batch_edges: int) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield fixed-size ``(u, v)`` batches spanning shard boundaries.

        The final batch may be short.  Useful for out-of-core consumers
        (external sort run generation) that want memory bounded by
        ``batch_edges`` regardless of shard layout.
        """
        check_positive_int("batch_edges", batch_edges)
        pending_u: List[np.ndarray] = []
        pending_v: List[np.ndarray] = []
        pending = 0
        for u, v in self.iter_shards():
            pending_u.append(u)
            pending_v.append(v)
            pending += len(u)
            while pending >= batch_edges:
                cat_u = np.concatenate(pending_u)
                cat_v = np.concatenate(pending_v)
                yield cat_u[:batch_edges], cat_v[:batch_edges]
                cat_u = cat_u[batch_edges:]
                cat_v = cat_v[batch_edges:]
                pending_u = [cat_u]
                pending_v = [cat_v]
                pending = len(cat_u)
        if pending:
            yield np.concatenate(pending_u), np.concatenate(pending_v)

    def read_all(self) -> Tuple[np.ndarray, np.ndarray]:
        """Concatenate every shard into full ``(u, v)`` arrays."""
        if self.num_shards == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        parts = list(self.iter_shards())
        u = np.concatenate([p[0] for p in parts])
        v = np.concatenate([p[1] for p in parts])
        return u, v


class EdgeDatasetWriter:
    """Streaming producer for :class:`EdgeDataset` (context manager).

    Appended blocks are buffered and flushed into shard files of
    ``edges_per_shard`` edges.  On clean ``__exit__`` the manifest is
    written; on exception the partial shards are left behind *without* a
    manifest so :meth:`EdgeDataset.open` refuses the directory — a crashed
    producer cannot masquerade as a complete dataset.
    """

    def __init__(
        self,
        directory: Path,
        *,
        num_vertices: int,
        vertex_base: int,
        fmt: str,
        edges_per_shard: int,
        extra: Optional[dict],
    ) -> None:
        if fmt not in _EXTENSIONS:
            raise ValueError(f"fmt must be one of {sorted(_EXTENSIONS)}, got {fmt!r}")
        check_positive_int("num_vertices", num_vertices)
        check_positive_int("edges_per_shard", edges_per_shard)
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.num_vertices = num_vertices
        self.vertex_base = vertex_base
        self.fmt = fmt
        self.edges_per_shard = edges_per_shard
        self.extra = dict(extra or {})
        self._buffer_u: List[np.ndarray] = []
        self._buffer_v: List[np.ndarray] = []
        self._buffered = 0
        self._shards: List[ShardInfo] = []
        self._total_edges = 0
        self._closed = False

    def __enter__(self) -> "EdgeDatasetWriter":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        if exc_type is None:
            self.close()

    def append(self, u: np.ndarray, v: np.ndarray) -> None:
        """Append an edge block; flushes full shards as needed."""
        if self._closed:
            raise RuntimeError("writer is closed")
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        if len(u) != len(v):
            raise ValueError(f"u and v lengths differ: {len(u)} != {len(v)}")
        self._buffer_u.append(u)
        self._buffer_v.append(v)
        self._buffered += len(u)
        while self._buffered >= self.edges_per_shard:
            self._flush_shard(self.edges_per_shard)

    def _flush_shard(self, count: int) -> None:
        cat_u = np.concatenate(self._buffer_u) if self._buffer_u else np.empty(0, np.int64)
        cat_v = np.concatenate(self._buffer_v) if self._buffer_v else np.empty(0, np.int64)
        take_u, rest_u = cat_u[:count], cat_u[count:]
        take_v, rest_v = cat_v[:count], cat_v[count:]
        index = len(self._shards)
        info = write_shard(
            self.directory, index, take_u, take_v,
            fmt=self.fmt, vertex_base=self.vertex_base,
        )
        self._shards.append(info)
        self._total_edges += len(take_u)
        self._buffer_u = [rest_u]
        self._buffer_v = [rest_v]
        self._buffered = len(rest_u)

    def close(self) -> EdgeDataset:
        """Flush remaining edges, write the manifest, return the dataset."""
        if self._closed:
            return self._result
        if self._buffered or not self._shards:
            self._flush_shard(self._buffered)
        manifest = DatasetManifest(
            num_vertices=self.num_vertices,
            num_edges=self._total_edges,
            vertex_base=self.vertex_base,
            shards=self._shards,
            fmt=self.fmt,
            extra=self.extra,
        )
        manifest.save(self.directory)
        self._result = EdgeDataset(self.directory, manifest)
        self._closed = True
        return self._result

    @property
    def result(self) -> EdgeDataset:
        """The dataset handle; only valid after :meth:`close`."""
        if not self._closed:
            raise RuntimeError("writer not closed yet")
        return self._result
