"""Dataset manifests: JSON descriptions of a sharded edge directory.

Every :class:`repro.edgeio.dataset.EdgeDataset` write drops a
``manifest.json`` next to the shards recording the shard names, per-shard
edge counts, CRC32 checksums, total edge count, vertex count, and the
on-disk vertex base.  Readers use it to (a) avoid re-counting edges,
(b) detect missing/truncated shards before a kernel starts, and (c) keep
0-based/1-based bookkeeping honest across kernels.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.edgeio.errors import DatasetLayoutError

MANIFEST_NAME = "manifest.json"
_FORMAT_VERSION = 1


@dataclass(frozen=True)
class ShardInfo:
    """One shard's identity and integrity data.

    Attributes
    ----------
    name:
        File name relative to the dataset directory.
    num_edges:
        Edge (line) count in the shard.
    crc32:
        CRC32 of the file bytes; ``None`` when checksums were disabled.
    num_bytes:
        File size in bytes at write time.
    """

    name: str
    num_edges: int
    crc32: Optional[int] = None
    num_bytes: int = 0


@dataclass
class DatasetManifest:
    """Top-level manifest for a sharded edge dataset.

    Attributes
    ----------
    num_vertices:
        Declared vertex-count bound ``N`` (labels are ``< N``).
    num_edges:
        Total edges across shards.
    vertex_base:
        On-disk label base (0 or 1).
    shards:
        Per-shard info, in shard order.
    fmt:
        Payload format: ``"tsv"`` or ``"npy"``.
    extra:
        Free-form metadata (e.g. generating kernel, config echo).
    """

    num_vertices: int
    num_edges: int
    vertex_base: int = 0
    shards: List[ShardInfo] = field(default_factory=list)
    fmt: str = "tsv"
    extra: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> str:
        """Serialise to a stable, human-diffable JSON document."""
        doc = {
            "format_version": _FORMAT_VERSION,
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "vertex_base": self.vertex_base,
            "fmt": self.fmt,
            "shards": [asdict(s) for s in self.shards],
            "extra": self.extra,
        }
        return json.dumps(doc, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "DatasetManifest":
        """Parse a manifest document, raising on schema violations."""
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise DatasetLayoutError(f"manifest is not valid JSON: {exc}") from exc
        if not isinstance(doc, dict):
            raise DatasetLayoutError("manifest root must be a JSON object")
        version = doc.get("format_version")
        if version != _FORMAT_VERSION:
            raise DatasetLayoutError(
                f"unsupported manifest format_version {version!r} "
                f"(expected {_FORMAT_VERSION})"
            )
        try:
            shards = [ShardInfo(**s) for s in doc.get("shards", [])]
            return cls(
                num_vertices=int(doc["num_vertices"]),
                num_edges=int(doc["num_edges"]),
                vertex_base=int(doc.get("vertex_base", 0)),
                shards=shards,
                fmt=str(doc.get("fmt", "tsv")),
                extra=dict(doc.get("extra", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DatasetLayoutError(f"manifest is malformed: {exc}") from exc

    def save(self, directory: Path) -> Path:
        """Write the manifest into ``directory`` and return its path."""
        path = Path(directory) / MANIFEST_NAME
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(self.to_json(), encoding="utf-8")
        tmp.replace(path)
        return path

    @classmethod
    def load(cls, directory: Path) -> "DatasetManifest":
        """Read the manifest from ``directory``.

        Raises
        ------
        DatasetLayoutError
            When the manifest is absent or malformed.
        """
        path = Path(directory) / MANIFEST_NAME
        if not path.exists():
            raise DatasetLayoutError(f"no {MANIFEST_NAME} in {directory}")
        return cls.from_json(path.read_text(encoding="utf-8"))

    def verify_against(self, directory: Path) -> None:
        """Check that every shard exists with the recorded byte size.

        Raises
        ------
        DatasetLayoutError
            On missing shards or size mismatches (truncated writes).
        """
        directory = Path(directory)
        for shard in self.shards:
            path = directory / shard.name
            if not path.exists():
                raise DatasetLayoutError(f"shard missing on disk: {path}")
            actual = path.stat().st_size
            if shard.num_bytes and actual != shard.num_bytes:
                raise DatasetLayoutError(
                    f"shard {path} is {actual} bytes, manifest says "
                    f"{shard.num_bytes} (truncated or modified?)"
                )
