"""repro — PageRank Pipeline Benchmark reproduction.

A from-scratch Python implementation of the holistic big-data system
benchmark proposed in:

    Dreher, Byun, Hill, Gadepally, Kuszmaul, Kepner.
    "PageRank Pipeline Benchmark: Proposal for a Holistic System Benchmark
    for Big-Data Platforms." IEEE IPDPS Workshops, 2016.

The benchmark consists of four pipelined kernels over a scale-``S``
power-law graph (``N = 2**S`` vertices, ``M = 16*N`` edges):

* **Kernel 0 — Generate**: Graph500 Kronecker edges written to TSV files.
* **Kernel 1 — Sort**: sort the edge files by start vertex, rewrite.
* **Kernel 2 — Filter**: build the sparse adjacency matrix, drop the
  super-node and leaf columns, row-normalise by out-degree.
* **Kernel 3 — PageRank**: 20 fixed iterations of the damped PageRank
  update ``r <- c*(r@A) + (1-c)*sum(r)/N``.

Quickstart
----------
>>> from repro import PipelineConfig, run_pipeline
>>> result = run_pipeline(PipelineConfig(scale=10, seed=7))   # doctest: +SKIP
>>> [k.edges_per_second for k in result.kernels]              # doctest: +SKIP

Top-level re-exports cover the most common entry points; the subpackages
(`repro.generators`, `repro.edgeio`, `repro.sort`, `repro.grb`,
`repro.frame`, `repro.backends`, `repro.pagerank`, `repro.parallel`,
`repro.perfmodel`, `repro.harness`) expose the full substrate APIs.
"""

from __future__ import annotations

from repro.core.config import KernelName, PipelineConfig
from repro.core.pipeline import Pipeline, run_pipeline
from repro.core.results import KernelResult, PipelineResult
from repro.backends.registry import available_backends, get_backend

__version__ = "1.0.0"

__all__ = [
    "KernelName",
    "KernelResult",
    "Pipeline",
    "PipelineConfig",
    "PipelineResult",
    "available_backends",
    "get_backend",
    "run_pipeline",
    "__version__",
]
