"""repro — PageRank Pipeline Benchmark reproduction.

A from-scratch Python implementation of the holistic big-data system
benchmark proposed in:

    Dreher, Byun, Hill, Gadepally, Kuszmaul, Kepner.
    "PageRank Pipeline Benchmark: Proposal for a Holistic System Benchmark
    for Big-Data Platforms." IEEE IPDPS Workshops, 2016.

The benchmark consists of four pipelined kernels over a scale-``S``
power-law graph (``N = 2**S`` vertices, ``M = 16*N`` edges):

* **Kernel 0 — Generate**: Graph500 Kronecker edges written to TSV files.
* **Kernel 1 — Sort**: sort the edge files by start vertex, rewrite.
* **Kernel 2 — Filter**: build the sparse adjacency matrix, drop the
  super-node and leaf columns, row-normalise by out-degree.
* **Kernel 3 — PageRank**: 20 fixed iterations of the damped PageRank
  update ``r <- c*(r@A) + (1-c)*sum(r)/N``.

Quickstart
----------
>>> from repro import RunSpec, execute_spec
>>> outcome = execute_spec(RunSpec(scale=10, seed=7))         # doctest: +SKIP
>>> [r.edges_per_second for r in outcome.records]             # doctest: +SKIP

The declarative surface (`repro.api`: `RunSpec`, scenarios,
`execute_spec`; `repro.service`: `BenchmarkService`, `repro serve`) is
the public entry point; `Pipeline`/`run_pipeline` remain as
compatibility shims.  The subpackages (`repro.generators`,
`repro.edgeio`, `repro.sort`, `repro.grb`, `repro.frame`,
`repro.backends`, `repro.pagerank`, `repro.parallel`,
`repro.perfmodel`, `repro.harness`) expose the full substrate APIs.
"""

from __future__ import annotations

from repro.api import (
    RunSpec,
    SweepSpec,
    execute_spec,
    execute_sweep,
    get_scenario,
    scenario_names,
)
from repro.core.config import KernelName, PipelineConfig
from repro.core.pipeline import Pipeline, run_pipeline
from repro.core.results import KernelResult, PipelineResult
from repro.backends.registry import available_backends, get_backend

__version__ = "1.0.0"

__all__ = [
    "KernelName",
    "KernelResult",
    "Pipeline",
    "PipelineConfig",
    "PipelineResult",
    "RunSpec",
    "SweepSpec",
    "available_backends",
    "execute_spec",
    "execute_sweep",
    "get_backend",
    "get_scenario",
    "run_pipeline",
    "scenario_names",
    "__version__",
]
