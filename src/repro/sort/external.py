"""Out-of-core external sort for edge datasets (Kernel 1 at scale).

The paper: "if u and v are too large to fit in memory, then an
out-of-core algorithm would be required."  This module implements the
textbook two-phase external sort with bounded memory:

1. **Run generation** — stream the input dataset in batches of
   ``batch_edges`` edges, sort each batch in memory, spill it as a
   sorted *run* (raw int64 pairs on disk).
2. **K-way merge** — merge up to ``fan_in`` runs at a time using a
   vectorised boundary merge: each round reads one block per run, finds
   the smallest per-run block-maximum (the *safe boundary*), emits every
   buffered edge with key <= boundary (their global order is fully
   determined), and refills.  More runs than ``fan_in`` triggers
   multi-pass merging.

Memory is bounded by ``O(batch_edges + fan_in * merge_block_edges)``
regardless of dataset size.
"""

from __future__ import annotations

import contextlib
import heapq
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

import numpy as np

from repro._util import check_positive_int
from repro.core.shmplane import mapped_view
from repro.edgeio.dataset import EdgeDataset
from repro.sort.inmemory import sort_edges


@dataclass(frozen=True)
class ExternalSortConfig:
    """Tuning parameters for the external sort.

    Attributes
    ----------
    batch_edges:
        Edges per in-memory run (phase 1 memory bound).
    fan_in:
        Maximum runs merged simultaneously (phase 2 width).
    merge_block_edges:
        Edges read per run per refill during merging.
    algorithm:
        In-memory sort used for run generation (see
        :func:`repro.sort.inmemory.sort_edges`).
    tmp_dir:
        Spill directory; defaults to a fresh ``tempfile.mkdtemp``.
    """

    batch_edges: int = 1 << 18
    fan_in: int = 16
    merge_block_edges: int = 1 << 15
    algorithm: str = "numpy"
    tmp_dir: Optional[Path] = None

    def __post_init__(self) -> None:
        check_positive_int("batch_edges", self.batch_edges)
        check_positive_int("merge_block_edges", self.merge_block_edges)
        if self.fan_in < 2:
            raise ValueError(f"fan_in must be >= 2, got {self.fan_in}")


class _RunWriter:
    """Appends sorted edge blocks to a raw int64-pair file."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self._fh = open(path, "wb")
        self.num_edges = 0

    def append(self, u: np.ndarray, v: np.ndarray) -> None:
        stacked = np.column_stack(
            [np.asarray(u, np.int64), np.asarray(v, np.int64)]
        )
        stacked.tofile(self._fh)
        self.num_edges += len(u)

    def close(self) -> "_Run":
        self._fh.close()
        return _Run(self.path, self.num_edges)


@dataclass
class _Run:
    """A completed sorted run on disk."""

    path: Path
    num_edges: int

    def open_reader(self, block_edges: int, lex_mult: int = 0) -> "_RunReader":
        return _RunReader(self, block_edges, lex_mult)

    def delete(self) -> None:
        self.path.unlink(missing_ok=True)


class _RunReader:
    """Buffered block reader over a run file (memory-mapped).

    ``lex_mult`` selects the merge key: 0 sorts on ``u`` alone; a
    positive value sorts on the composite ``u * lex_mult + v`` (used for
    lexicographic ``(u, v)`` merging — ties in ``u`` that span merge
    batches would otherwise lose their ``v`` order).
    """

    def __init__(self, run: _Run, block_edges: int, lex_mult: int = 0) -> None:
        self.run = run
        self.block_edges = block_edges
        self.lex_mult = lex_mult
        self._stack = contextlib.ExitStack()
        if run.num_edges:
            self._mm = self._stack.enter_context(
                mapped_view(run.path, np.int64, (run.num_edges, 2))
            )
        else:
            self._mm = np.empty((0, 2), dtype=np.int64)
        self._cursor = 0
        self.buf_u = np.empty(0, dtype=np.int64)
        self.buf_v = np.empty(0, dtype=np.int64)
        self.buf_key = np.empty(0, dtype=np.int64)

    def close(self) -> None:
        """Unmap the run file *now* — not at garbage collection.

        The merge deletes run files as soon as it finishes with them;
        under Windows-style strict unlink semantics that fails while a
        mapping is open.  ``refill`` copies every block out of the map,
        so nothing dangles.
        """
        self._mm = np.empty((0, 2), dtype=np.int64)
        self._stack.close()

    @property
    def exhausted(self) -> bool:
        """True when both the file and the buffer are drained."""
        return self._cursor >= self.run.num_edges and len(self.buf_u) == 0

    def refill(self) -> None:
        """Top the buffer up with the next file block, if any."""
        if len(self.buf_u) > 0 or self._cursor >= self.run.num_edges:
            return
        end = min(self._cursor + self.block_edges, self.run.num_edges)
        block = np.asarray(self._mm[self._cursor:end])
        self._cursor = end
        self.buf_u = block[:, 0].copy()
        self.buf_v = block[:, 1].copy()
        if self.lex_mult:
            self.buf_key = self.buf_u * self.lex_mult + self.buf_v
        else:
            self.buf_key = self.buf_u

    def take_upto(self, boundary: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Remove and return buffered edges with ``key <= boundary``."""
        cut = int(np.searchsorted(self.buf_key, boundary, side="right"))
        take = (self.buf_u[:cut], self.buf_v[:cut], self.buf_key[:cut])
        self.buf_u = self.buf_u[cut:]
        self.buf_v = self.buf_v[cut:]
        self.buf_key = self.buf_key[cut:]
        return take


def _merge_runs(
    runs: List[_Run],
    emit,
    *,
    block_edges: int,
    lex_mult: int = 0,
) -> None:
    """Merge sorted runs, calling ``emit(u, v)`` with ordered batches.

    Uses the boundary-merge scheme described in the module docstring;
    each emitted batch is internally sorted and batches are emitted in
    non-decreasing key order, so their concatenation is globally sorted.
    """
    readers = [r.open_reader(block_edges, lex_mult) for r in runs]
    try:
        while True:
            active = []
            for reader in readers:
                reader.refill()
                if len(reader.buf_u):
                    active.append(reader)
            if not active:
                break
            # Safe boundary: smallest of the per-reader buffered key
            # maxima.
            boundary = min(int(r.buf_key[-1]) for r in active)
            parts_u: List[np.ndarray] = []
            parts_v: List[np.ndarray] = []
            parts_key: List[np.ndarray] = []
            for reader in active:
                pu, pv, pk = reader.take_upto(boundary)
                if len(pu):
                    parts_u.append(pu)
                    parts_v.append(pv)
                    parts_key.append(pk)
            cat_u = np.concatenate(parts_u)
            cat_v = np.concatenate(parts_v)
            cat_key = np.concatenate(parts_key)
            order = np.argsort(cat_key, kind="stable")
            emit(cat_u[order], cat_v[order])
    finally:
        # Unmap before the caller deletes the run files (strict-unlink
        # filesystems refuse to remove a mapped file).
        for reader in readers:
            reader.close()


def _merge_to_run(
    runs: List[_Run], path: Path, *, block_edges: int, lex_mult: int = 0
) -> _Run:
    """Merge ``runs`` into a single new run file."""
    writer = _RunWriter(path)
    _merge_runs(runs, writer.append, block_edges=block_edges, lex_mult=lex_mult)
    merged = writer.close()
    for run in runs:
        run.delete()
    return merged


def external_sort_dataset(
    dataset: EdgeDataset,
    out_dir: Path,
    *,
    config: Optional[ExternalSortConfig] = None,
    num_shards: Optional[int] = None,
    by_end_vertex: bool = False,
) -> EdgeDataset:
    """Sort a dataset by start vertex without holding it in memory.

    Parameters
    ----------
    dataset:
        Input :class:`~repro.edgeio.dataset.EdgeDataset` (any order).
    out_dir:
        Directory for the sorted output dataset.
    config:
        :class:`ExternalSortConfig`; defaults used when omitted.
    num_shards:
        Output shard count; defaults to the input's shard count.
    by_end_vertex:
        Sort lexicographically by ``(u, v)`` instead of ``u`` only.

    Returns
    -------
    EdgeDataset
        The sorted dataset (same format and vertex base as the input).

    Notes
    -----
    Spill space is cleaned up on success and on failure; the output
    manifest is only written after the merge completes, so a crashed
    sort never yields a dataset that opens successfully.
    """
    config = config or ExternalSortConfig()
    num_shards = num_shards if num_shards is not None else dataset.num_shards
    check_positive_int("num_shards", num_shards)

    lex_mult = 0
    if by_end_vertex:
        if dataset.num_vertices > (1 << 31):
            raise ValueError(
                "by_end_vertex external sort supports at most 2**31 vertices "
                "(composite int64 merge keys would overflow)"
            )
        lex_mult = dataset.num_vertices

    own_tmp = config.tmp_dir is None
    tmp_dir = Path(config.tmp_dir) if config.tmp_dir else Path(
        tempfile.mkdtemp(prefix="repro-extsort-")
    )
    tmp_dir.mkdir(parents=True, exist_ok=True)
    run_counter = 0
    runs: List[_Run] = []
    try:
        # ---- Phase 1: run generation --------------------------------
        for u, v in dataset.iter_batches(config.batch_edges):
            su, sv = sort_edges(
                u,
                v,
                algorithm=config.algorithm,
                num_vertices=dataset.num_vertices,
                by_end_vertex=by_end_vertex,
            )
            writer = _RunWriter(tmp_dir / f"run-{run_counter:06d}.bin")
            writer.append(su, sv)
            runs.append(writer.close())
            run_counter += 1

        # ---- Phase 2: (multi-pass) k-way merge -----------------------
        while len(runs) > config.fan_in:
            next_runs: List[_Run] = []
            for group_start in range(0, len(runs), config.fan_in):
                group = runs[group_start:group_start + config.fan_in]
                if len(group) == 1:
                    next_runs.append(group[0])
                    continue
                merged = _merge_to_run(
                    group,
                    tmp_dir / f"run-{run_counter:06d}.bin",
                    block_edges=config.merge_block_edges,
                    lex_mult=lex_mult,
                )
                next_runs.append(merged)
                run_counter += 1
            runs = next_runs

        # ---- Final merge streamed into the output dataset ------------
        total = dataset.num_edges
        edges_per_shard = max(1, -(-total // num_shards)) if total else 1
        with EdgeDataset.stream_writer(
            out_dir,
            num_vertices=dataset.num_vertices,
            vertex_base=dataset.manifest.vertex_base,
            fmt=dataset.fmt,
            edges_per_shard=edges_per_shard,
            extra={"sorted_by": "(u,v)" if by_end_vertex else "u",
                   "source": str(dataset.directory)},
        ) as writer:
            if runs:
                _merge_runs(
                    runs,
                    writer.append,
                    block_edges=config.merge_block_edges,
                    lex_mult=lex_mult,
                )
        return writer.result
    finally:
        for run in runs:
            run.delete()
        if own_tmp:
            shutil.rmtree(tmp_dir, ignore_errors=True)


def merge_sorted_arrays(
    arrays: List[Tuple[np.ndarray, np.ndarray]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge already-sorted in-memory edge arrays into one sorted pair.

    A convenience for tests and the parallel substrate (merging per-rank
    sorted partitions).  Uses a heap over array heads — O(M log k).
    """
    for u, _ in arrays:
        if len(u) >= 2 and np.any(u[1:] < u[:-1]):
            raise ValueError("merge_sorted_arrays requires sorted inputs")
    total = sum(len(u) for u, _ in arrays)
    out_u = np.empty(total, dtype=np.int64)
    out_v = np.empty(total, dtype=np.int64)
    heap: List[Tuple[int, int, int]] = []
    for idx, (u, _) in enumerate(arrays):
        if len(u):
            heapq.heappush(heap, (int(u[0]), idx, 0))
    pos = 0
    while heap:
        key, idx, offset = heapq.heappop(heap)
        u, v = arrays[idx]
        out_u[pos] = key
        out_v[pos] = v[offset]
        pos += 1
        if offset + 1 < len(u):
            heapq.heappush(heap, (int(u[offset + 1]), idx, offset + 1))
    return out_u, out_v
