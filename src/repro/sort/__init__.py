"""Sorting substrate for Kernel 1.

The paper notes (Section IV.B) that "the type of sorting algorithm may
depend upon the scale parameter": in-memory when the edge list fits in
RAM, out-of-core otherwise.  Both regimes are implemented:

* :mod:`repro.sort.inmemory` — numpy comparison sort plus hand-rolled
  counting and LSD radix sorts (the classic distribution sorts for
  bounded integer keys);
* :mod:`repro.sort.external` — run generation + k-way merge external
  sort whose memory use is bounded by a configurable batch size, for
  datasets larger than RAM.

All sorts order edges by start vertex ``u`` (ties keep or ignore input
order depending on ``stable``), with an option to sort by ``(u, v)`` —
one of the open questions in the paper's "next steps" section.
"""

from __future__ import annotations

from repro.sort.inmemory import (
    counting_sort_edges,
    is_sorted_by_start,
    numpy_sort_edges,
    radix_sort_edges,
    sort_edges,
)
from repro.sort.external import ExternalSortConfig, external_sort_dataset

__all__ = [
    "ExternalSortConfig",
    "counting_sort_edges",
    "external_sort_dataset",
    "is_sorted_by_start",
    "numpy_sort_edges",
    "radix_sort_edges",
    "sort_edges",
]
