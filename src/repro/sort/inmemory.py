"""In-memory edge sorts.

Three interchangeable algorithms, all returning new ``(u, v)`` arrays
ordered by start vertex:

* :func:`numpy_sort_edges` — numpy ``argsort`` (introsort / timsort);
  the general-purpose baseline.
* :func:`counting_sort_edges` — O(M + N) counting sort exploiting the
  bounded key range ``u < N``; the natural choice for Kernel 1 since the
  benchmark fixes ``N = 2**scale`` and ``M = 16N``.
* :func:`radix_sort_edges` — LSD radix sort over fixed-width digits;
  O(M · ceil(bits/digit)) with no comparison, included as the classic
  HPC distribution sort and exercised by the sort ablation bench.

:func:`sort_edges` dispatches by algorithm name.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro._util import check_positive_int, check_same_length

EdgePair = Tuple[np.ndarray, np.ndarray]

_ALGORITHMS = ("numpy", "counting", "radix")


def is_sorted_by_start(u: np.ndarray) -> bool:
    """True when start-vertex array ``u`` is non-decreasing."""
    if len(u) < 2:
        return True
    return bool(np.all(u[1:] >= u[:-1]))


def numpy_sort_edges(
    u: np.ndarray,
    v: np.ndarray,
    *,
    by_end_vertex: bool = False,
    stable: bool = True,
) -> EdgePair:
    """Sort edges by ``u`` using numpy's comparison sort.

    Parameters
    ----------
    u, v:
        Edge arrays.
    by_end_vertex:
        Also order ties by ``v`` (lexicographic ``(u, v)`` sort) — the
        paper's "should the end vertices also be sorted?" option.
    stable:
        Preserve input order among equal keys.  Ignored when
        ``by_end_vertex`` is set (the secondary key defines tie order).
    """
    check_same_length("u", u, "v", v)
    if by_end_vertex:
        order = np.lexsort((v, u))
    else:
        order = np.argsort(u, kind="stable" if stable else None)
    return u[order], v[order]


def counting_sort_edges(
    u: np.ndarray,
    v: np.ndarray,
    *,
    num_vertices: int,
    by_end_vertex: bool = False,
) -> EdgePair:
    """Counting sort by start vertex: O(M + N), always stable.

    Builds the output offsets from a histogram of ``u`` (exactly the
    CSR row-pointer construction), then scatters edges to their slots.

    Parameters
    ----------
    num_vertices:
        Exclusive upper bound on vertex labels (the histogram length).
    by_end_vertex:
        Apply a second counting pass on ``v`` first so the final order
        is lexicographic ``(u, v)``; stability of the second pass makes
        this a classic LSD two-pass sort.
    """
    check_same_length("u", u, "v", v)
    check_positive_int("num_vertices", num_vertices)
    if len(u) and (u.min() < 0 or u.max() >= num_vertices):
        raise ValueError(
            f"u labels outside [0, {num_vertices}): min={u.min()}, max={u.max()}"
        )

    if by_end_vertex:
        u, v = counting_sort_edges(v, u, num_vertices=num_vertices)[::-1]
        # After sorting by v (stable), sort by u (stable) => (u, v) order.

    counts = np.bincount(u, minlength=num_vertices)
    offsets = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    position = offsets[u].copy()
    # Stable scatter: edges with equal u are placed in input order by
    # bumping each key's cursor as we assign.  Vectorised via argsort of
    # the (already computed) destination start plus per-key sequence no.
    seq = _per_key_sequence(u, num_vertices)
    dest = position + seq
    out_u = np.empty_like(u)
    out_v = np.empty_like(v)
    out_u[dest] = u
    out_v[dest] = v
    return out_u, out_v


def _per_key_sequence(keys: np.ndarray, num_keys: int) -> np.ndarray:
    """For each element, its 0-based occurrence index among equal keys.

    E.g. ``[3, 1, 3, 3, 1] -> [0, 0, 1, 2, 1]``.  Vectorised with a
    stable argsort + segmented arange.
    """
    m = len(keys)
    if m == 0:
        return np.empty(0, dtype=np.int64)
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    # Position within each equal-key run of the sorted array.
    run_start = np.r_[True, sorted_keys[1:] != sorted_keys[:-1]]
    run_ids = np.cumsum(run_start) - 1
    first_index_of_run = np.flatnonzero(run_start)
    within_run = np.arange(m, dtype=np.int64) - first_index_of_run[run_ids]
    seq = np.empty(m, dtype=np.int64)
    seq[order] = within_run
    return seq


def radix_sort_edges(
    u: np.ndarray,
    v: np.ndarray,
    *,
    digit_bits: int = 11,
    by_end_vertex: bool = False,
) -> EdgePair:
    """LSD radix sort by start vertex over ``digit_bits``-wide digits.

    Only the digits needed to cover ``max(u)`` are processed, so cost
    adapts to the actual key width.  Each pass is a stable counting sort
    on one digit, implemented with ``bincount`` + prefix sums.

    Parameters
    ----------
    digit_bits:
        Width of each radix digit (default 2**11 buckets per pass —
        a good cache/bucket-count balance for int64 keys).
    by_end_vertex:
        Sort lexicographically by ``(u, v)`` by radix-sorting ``v``
        first (LSD composition of stable passes).
    """
    check_same_length("u", u, "v", v)
    check_positive_int("digit_bits", digit_bits)
    if digit_bits > 24:
        raise ValueError(f"digit_bits too large ({digit_bits}); max 24")
    if len(u) == 0:
        return u.copy(), v.copy()
    if u.min() < 0:
        raise ValueError("radix sort requires non-negative keys")

    if by_end_vertex:
        v, u = radix_sort_edges(v, u, digit_bits=digit_bits)
        # Stable u-passes below preserve the v order among equal u.

    mask = (1 << digit_bits) - 1
    max_key = int(u.max())
    shift = 0
    out_u = u.copy()
    out_v = v.copy()
    while (max_key >> shift) > 0 or shift == 0:
        digits = (out_u >> shift) & mask
        counts = np.bincount(digits, minlength=mask + 1)
        offsets = np.zeros(mask + 2, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        seq = _per_key_sequence(digits, mask + 1)
        dest = offsets[digits] + seq
        next_u = np.empty_like(out_u)
        next_v = np.empty_like(out_v)
        next_u[dest] = out_u
        next_v[dest] = out_v
        out_u, out_v = next_u, next_v
        shift += digit_bits
        if shift >= 63:
            break
    return out_u, out_v


def sort_edges(
    u: np.ndarray,
    v: np.ndarray,
    *,
    algorithm: str = "numpy",
    num_vertices: int = 0,
    by_end_vertex: bool = False,
) -> EdgePair:
    """Dispatch to a named in-memory sort.

    Parameters
    ----------
    algorithm:
        ``"numpy"``, ``"counting"``, or ``"radix"``.
    num_vertices:
        Required by the counting sort (histogram length).
    by_end_vertex:
        Lexicographic ``(u, v)`` ordering.

    Raises
    ------
    ValueError
        For unknown algorithm names, or counting sort without
        ``num_vertices``.
    """
    if algorithm == "numpy":
        return numpy_sort_edges(u, v, by_end_vertex=by_end_vertex)
    if algorithm == "counting":
        if num_vertices <= 0:
            raise ValueError("counting sort requires num_vertices > 0")
        return counting_sort_edges(
            u, v, num_vertices=num_vertices, by_end_vertex=by_end_vertex
        )
    if algorithm == "radix":
        return radix_sort_edges(u, v, by_end_vertex=by_end_vertex)
    raise ValueError(
        f"unknown sort algorithm {algorithm!r}; expected one of {_ALGORITHMS}"
    )
