"""The pure-Python backend: standard library only.

The analogue of the paper's plain "Python" serial code (Table I: 162
source lines): interpreted loops, ``random.Random``, f-string file
writing, ``list.sort``, and dict-based sparse rows.  Nothing numpy
touches the kernel hot paths — this backend anchors the *slow* end of
the Figures 4–7 spread exactly as interpreted-loop implementations do in
the paper.

The Kronecker recurrence matches the vectorised generator's structure
(same quadrant probabilities and conditional form) but consumes a
``random.Random`` stream, so the realised edge multiset differs from the
numpy backends for the same seed.  Cross-backend equality tests
therefore compare Kernels 1–3 on a shared Kernel 0 dataset, and compare
Kernel 0 distributionally.
"""

from __future__ import annotations

import random
import zlib
from pathlib import Path
from typing import Dict, List, Tuple

import numpy as np
import scipy.sparse as sp

from repro._util import Timings
from repro.backends.base import AdjacencyHandle, Backend, Details, KernelOutput
from repro.core.config import PipelineConfig
from repro.edgeio.dataset import EdgeDataset, shard_slices
from repro.edgeio.manifest import DatasetManifest, ShardInfo


class PyAdjacency(AdjacencyHandle):
    """Kernel 2 output as dict-of-rows: ``{u: [(v, weight), ...]}``."""

    def __init__(
        self,
        num_vertices: int,
        rows: Dict[int, List[Tuple[int, float]]],
        pre_filter_total: float,
    ) -> None:
        self._n = num_vertices
        self.rows = rows
        self._pre_filter_total = float(pre_filter_total)

    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def nnz(self) -> int:
        return sum(len(row) for row in self.rows.values())

    @property
    def pre_filter_entry_total(self) -> float:
        return self._pre_filter_total

    def to_scipy_csr(self) -> sp.csr_matrix:
        r_idx: List[int] = []
        c_idx: List[int] = []
        vals: List[float] = []
        for u, row in self.rows.items():
            for v, w in row:
                r_idx.append(u)
                c_idx.append(v)
                vals.append(w)
        return sp.coo_matrix(
            (vals, (r_idx, c_idx)), shape=(self._n, self._n)
        ).tocsr()


class PythonBackend(Backend):
    """Pure standard-library implementation of all four kernels."""

    name = "python"

    # ------------------------------------------------------------------
    # Kernel 0
    # ------------------------------------------------------------------
    def kernel0(self, config: PipelineConfig, out_dir: Path) -> KernelOutput[EdgeDataset]:
        timings = Timings()
        n = config.num_vertices
        m = config.num_edges
        rng = random.Random(config.seed)

        with timings.measure("generate"):
            edges = self._kronecker(config.scale, m, rng)
            rng.shuffle(edges)
            relabel = list(range(n))
            rng.shuffle(relabel)
            edges = [(relabel[u], relabel[v]) for u, v in edges]

        with timings.measure("write"):
            dataset = self._write_dataset(
                out_dir, edges, config, extra={"kernel": "k0", "generator": "kronecker-py"}
            )
        details: Details = {
            "phases": timings.as_dict(),
            "num_edges": dataset.num_edges,
            "num_shards": dataset.num_shards,
            "bytes_written": dataset.total_bytes(),
        }
        return dataset, details

    @staticmethod
    def _kronecker(scale: int, num_edges: int, rng: random.Random) -> List[Tuple[int, int]]:
        """Pure-python Graph500 Kronecker recurrence."""
        a, b, c = 0.57, 0.19, 0.19
        ab = a + b
        c_norm = c / (1.0 - ab)
        a_norm = a / ab
        edges: List[Tuple[int, int]] = []
        rand = rng.random
        for _ in range(num_edges):
            u = 0
            v = 0
            for level in range(scale):
                ii = rand() > ab
                jj = rand() > (c_norm if ii else a_norm)
                if ii:
                    u |= 1 << level
                if jj:
                    v |= 1 << level
            edges.append((u, v))
        return edges

    def _write_dataset(
        self,
        out_dir: Path,
        edges: List[Tuple[int, int]],
        config: PipelineConfig,
        *,
        extra: Dict[str, object],
    ) -> EdgeDataset:
        """Line-by-line TSV writing with f-strings (the pure-python way),
        wrapped in the shared manifest layout so downstream kernels and
        other backends can read the output."""
        if config.file_format != "tsv":
            raise ValueError("the pure-python backend only writes tsv files")
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        base = config.vertex_base
        shards: List[ShardInfo] = []
        for index, (start, end) in enumerate(
            shard_slices(len(edges), config.num_files)
        ):
            name = f"part-{index:05d}.tsv"
            lines = [
                f"{u + base}\t{v + base}\n" for u, v in edges[start:end]
            ]
            payload = "".join(lines).encode("ascii")
            path = out_dir / name
            tmp = path.with_name(path.name + ".tmp")
            tmp.write_bytes(payload)
            tmp.replace(path)
            shards.append(
                ShardInfo(
                    name=name,
                    num_edges=end - start,
                    crc32=zlib.crc32(payload),
                    num_bytes=len(payload),
                )
            )
        manifest = DatasetManifest(
            num_vertices=config.num_vertices,
            num_edges=len(edges),
            vertex_base=base,
            shards=shards,
            fmt="tsv",
            extra=extra,
        )
        manifest.save(out_dir)
        return EdgeDataset(out_dir, manifest)

    @staticmethod
    def _read_edges(source: EdgeDataset) -> List[Tuple[int, int]]:
        """Line-by-line parse of every shard (pure-python path)."""
        base = source.manifest.vertex_base
        edges: List[Tuple[int, int]] = []
        for path in source.shard_paths():
            with open(path, "rb") as fh:
                for raw in fh:
                    if not raw.strip():
                        continue
                    left, right = raw.split(b"\t")
                    edges.append((int(left) - base, int(right) - base))
        return edges

    # ------------------------------------------------------------------
    # Kernel 1
    # ------------------------------------------------------------------
    def kernel1(
        self, config: PipelineConfig, source: EdgeDataset, out_dir: Path
    ) -> KernelOutput[EdgeDataset]:
        timings = Timings()
        with timings.measure("read"):
            edges = self._read_edges(source)
        with timings.measure("sort"):
            if config.sort_by_end_vertex:
                edges.sort()
            else:
                edges.sort(key=lambda e: e[0])
        with timings.measure("write"):
            dataset = self._write_dataset(
                out_dir, edges, config, extra={"kernel": "k1", "sorted_by": "u"}
            )
        details: Details = {
            "phases": timings.as_dict(),
            "algorithm": "timsort",
            "num_shards": dataset.num_shards,
        }
        return dataset, details

    # ------------------------------------------------------------------
    # Kernel 2
    # ------------------------------------------------------------------
    def kernel2(
        self, config: PipelineConfig, source: EdgeDataset
    ) -> KernelOutput[AdjacencyHandle]:
        timings = Timings()
        n = source.num_vertices
        with timings.measure("read"):
            edges = self._read_edges(source)

        with timings.measure("construct"):
            counts: Dict[Tuple[int, int], float] = {}
            for pair in edges:
                counts[pair] = counts.get(pair, 0.0) + 1.0
            pre_filter_total = float(sum(counts.values()))

        with timings.measure("filter"):
            din: Dict[int, float] = {}
            for (_, v), w in counts.items():
                din[v] = din.get(v, 0.0) + w
            max_in = max(din.values()) if din else 0.0
            supernode_count = 0
            leaf_count = 0
            if max_in > 0:
                eliminate = set()
                for vertex, degree in din.items():
                    if degree == max_in:
                        eliminate.add(vertex)
                        supernode_count += 1
                    if degree == 1:
                        eliminate.add(vertex)
                        leaf_count += 1
                counts = {
                    (u, v): w for (u, v), w in counts.items() if v not in eliminate
                }

        with timings.measure("normalize"):
            dout: Dict[int, float] = {}
            for (u, _), w in counts.items():
                dout[u] = dout.get(u, 0.0) + w
            rows: Dict[int, List[Tuple[int, float]]] = {}
            for (u, v), w in counts.items():
                rows.setdefault(u, []).append((v, w / dout[u]))

        handle = PyAdjacency(n, rows, pre_filter_total)
        details: Details = {
            "phases": timings.as_dict(),
            "nnz": handle.nnz,
            "pre_filter_entry_total": pre_filter_total,
            "max_in_degree": float(max_in),
            "supernode_columns": supernode_count,
            "leaf_columns": leaf_count,
            "nonzero_rows": len(rows),
        }
        return handle, details

    # ------------------------------------------------------------------
    # Kernel 3
    # ------------------------------------------------------------------
    def kernel3(
        self, config: PipelineConfig, matrix: AdjacencyHandle
    ) -> KernelOutput[np.ndarray]:
        if not isinstance(matrix, PyAdjacency):
            raise TypeError(
                f"python backend needs PyAdjacency, got {type(matrix).__name__}"
            )
        n = matrix.num_vertices
        c = config.damping
        r: List[float] = self.initial_rank(config).tolist()
        scale_by_n = config.formula == "appendix"
        rows = matrix.rows
        for _ in range(config.iterations):
            teleport = (1.0 - c) * sum(r)
            if scale_by_n:
                teleport /= n
            nxt = [teleport] * n
            for u, row in rows.items():
                ru = c * r[u]
                if ru == 0.0:
                    continue
                for v, w in row:
                    nxt[v] += ru * w
            r = nxt
        rank = np.array(r, dtype=np.float64)
        details: Details = {
            "iterations": config.iterations,
            "damping": c,
            "rank_sum": float(rank.sum()),
        }
        return rank, details
