"""The numpy backend: hand-rolled COO kernels over raw arrays.

Where the scipy backend delegates sparse algebra to compiled CSR
routines, this backend keeps the adjacency matrix as *coordinate
triples* ``(rows, cols, vals)`` and implements every kernel with numpy
primitives directly: ``lexsort`` + run-collapse for duplicate
accumulation, ``bincount`` for degree reductions and the SpMV scatter.
It is a genuinely different code path (COO scatter-style SpMV vs CSR
segment-style), which is exactly the kind of implementation spread the
paper's language comparison measures.
"""

from __future__ import annotations

from pathlib import Path
from typing import Tuple

import numpy as np
import scipy.sparse as sp

from repro._util import Timings
from repro.backends.base import AdjacencyHandle, Backend, Details, KernelOutput
from repro.core.config import PipelineConfig
from repro.edgeio.dataset import EdgeDataset
from repro.generators.registry import get_generator
from repro.sort.external import ExternalSortConfig, external_sort_dataset
from repro.sort.inmemory import sort_edges


class CooAdjacency(AdjacencyHandle):
    """Kernel 2 output as deduplicated, normalised COO triples."""

    def __init__(
        self,
        num_vertices: int,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        pre_filter_total: float,
    ) -> None:
        self._n = num_vertices
        self.rows = rows
        self.cols = cols
        self.vals = vals
        self._pre_filter_total = float(pre_filter_total)

    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def nnz(self) -> int:
        return len(self.vals)

    @property
    def pre_filter_entry_total(self) -> float:
        return self._pre_filter_total

    def to_scipy_csr(self) -> sp.csr_matrix:
        return sp.coo_matrix(
            (self.vals, (self.rows, self.cols)), shape=(self._n, self._n)
        ).tocsr()


def _collapse_duplicates(
    u: np.ndarray, v: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sort COO coordinates and sum duplicate ``(u, v)`` pairs.

    Returns deduplicated ``(rows, cols, counts)`` in row-major order —
    the ``sparse(u, v, 1, N, N)`` construction without scipy.
    """
    if len(u) == 0:
        return u, v, np.empty(0, dtype=np.float64)
    order = np.lexsort((v, u))
    su = u[order]
    sv = v[order]
    new_pair = np.r_[True, (su[1:] != su[:-1]) | (sv[1:] != sv[:-1])]
    group_id = np.cumsum(new_pair) - 1
    counts = np.bincount(group_id).astype(np.float64)
    return su[new_pair], sv[new_pair], counts


class NumpyBackend(Backend):
    """Hand-rolled numpy implementation of all four kernels."""

    name = "numpy"
    capabilities = frozenset({"serial", "streaming", "parallel", "async"})

    def adjacency_from_csr(self, matrix, pre_filter_total):
        # CSR -> COO yields row-major triples, the same order
        # _collapse_duplicates produces, so Kernel 3's bincount
        # summation order (and thus its float64 result) is preserved.
        coo = matrix.tocoo()
        return CooAdjacency(
            matrix.shape[0],
            coo.row.astype(np.int64),
            coo.col.astype(np.int64),
            coo.data.astype(np.float64),
            pre_filter_total,
        )

    # ------------------------------------------------------------------
    def kernel0(self, config: PipelineConfig, out_dir: Path) -> KernelOutput[EdgeDataset]:
        timings = Timings()
        generator = get_generator(config.generator)
        with timings.measure("generate"):
            u, v = generator(config.scale, config.edge_factor, seed=config.seed)
        with timings.measure("write"):
            dataset = EdgeDataset.write(
                out_dir,
                u,
                v,
                num_vertices=config.num_vertices,
                num_shards=config.num_files,
                vertex_base=config.vertex_base,
                fmt=config.file_format,
                extra={"kernel": "k0", "generator": config.generator},
            )
        details: Details = {
            "phases": timings.as_dict(),
            "num_edges": dataset.num_edges,
            "num_shards": dataset.num_shards,
            "bytes_written": dataset.total_bytes(),
        }
        return dataset, details

    # ------------------------------------------------------------------
    def kernel1(
        self, config: PipelineConfig, source: EdgeDataset, out_dir: Path
    ) -> KernelOutput[EdgeDataset]:
        timings = Timings()
        if config.external_sort:
            with timings.measure("external_sort"):
                dataset = external_sort_dataset(
                    source,
                    out_dir,
                    config=ExternalSortConfig(algorithm=config.sort_algorithm),
                    num_shards=config.num_files,
                    by_end_vertex=config.sort_by_end_vertex,
                )
        else:
            with timings.measure("read"):
                u, v = source.read_all()
            with timings.measure("sort"):
                u, v = sort_edges(
                    u,
                    v,
                    algorithm=config.sort_algorithm,
                    num_vertices=source.num_vertices,
                    by_end_vertex=config.sort_by_end_vertex,
                )
            with timings.measure("write"):
                dataset = EdgeDataset.write(
                    out_dir,
                    u,
                    v,
                    num_vertices=source.num_vertices,
                    num_shards=config.num_files,
                    vertex_base=config.vertex_base,
                    fmt=config.file_format,
                    extra={"kernel": "k1", "sorted_by": "u"},
                )
        details: Details = {
            "phases": timings.as_dict(),
            "algorithm": "external" if config.external_sort else config.sort_algorithm,
            "num_shards": dataset.num_shards,
        }
        return dataset, details

    # ------------------------------------------------------------------
    def kernel2(
        self, config: PipelineConfig, source: EdgeDataset
    ) -> KernelOutput[AdjacencyHandle]:
        timings = Timings()
        n = source.num_vertices
        with timings.measure("read"):
            u, v = source.read_all()

        with timings.measure("construct"):
            rows, cols, vals = _collapse_duplicates(u, v)
            pre_filter_total = float(vals.sum())

        with timings.measure("filter"):
            din = np.bincount(cols, weights=vals, minlength=n)
            max_in = din.max() if n else 0.0
            supernode_count = 0
            leaf_count = 0
            if max_in > 0:
                supernode_mask = din == max_in
                leaf_mask = din == 1
                eliminate = supernode_mask | leaf_mask
                supernode_count = int(supernode_mask.sum())
                leaf_count = int(leaf_mask.sum())
                keep = ~eliminate[cols]
                rows, cols, vals = rows[keep], cols[keep], vals[keep]

        with timings.measure("normalize"):
            dout = np.bincount(rows, weights=vals, minlength=n)
            nonzero = dout > 0
            inv = np.ones(n, dtype=np.float64)
            inv[nonzero] = 1.0 / dout[nonzero]
            vals = vals * inv[rows]

        handle = CooAdjacency(n, rows, cols, vals, pre_filter_total)
        details: Details = {
            "phases": timings.as_dict(),
            "nnz": handle.nnz,
            "pre_filter_entry_total": pre_filter_total,
            "max_in_degree": float(max_in),
            "supernode_columns": supernode_count,
            "leaf_columns": leaf_count,
            "nonzero_rows": int(nonzero.sum()),
        }
        return handle, details

    # ------------------------------------------------------------------
    def kernel3(
        self, config: PipelineConfig, matrix: AdjacencyHandle
    ) -> KernelOutput[np.ndarray]:
        if not isinstance(matrix, CooAdjacency):
            raise TypeError(
                f"numpy backend needs CooAdjacency, got {type(matrix).__name__}"
            )
        n = matrix.num_vertices
        rows, cols, vals = matrix.rows, matrix.cols, matrix.vals
        c = config.damping
        r = self.initial_rank(config)
        scale_by_n = config.formula == "appendix"
        for _ in range(config.iterations):
            contributions = r[rows] * vals
            spread = np.bincount(cols, weights=contributions, minlength=n)
            teleport = (1.0 - c) * r.sum()
            if scale_by_n:
                teleport /= n
            r = c * spread + teleport
        details: Details = {
            "iterations": config.iterations,
            "damping": c,
            "rank_sum": float(r.sum()),
        }
        return r, details
