"""Pipeline backends: interchangeable kernel implementations.

The paper implements the serial benchmark in six languages (C++, Python,
Python w/Pandas, Matlab, Octave, Julia) and compares them on one
platform.  This package reproduces that axis inside Python with five
genuinely different implementation technologies:

========== ==============================================================
name        technology
========== ==============================================================
python      pure standard library: lists, dicts, ``sorted``, f-strings —
            the paper's interpreted-loop baseline
numpy       vectorised numpy arrays, hand-rolled COO/CSR kernels
scipy       ``scipy.sparse`` matrices (the conventional fast path)
dataframe   :mod:`repro.frame` columnar dataframe (the "Pandas" analogue)
graphblas   :mod:`repro.grb` GraphBLAS-lite semiring substrate
========== ==============================================================

All backends implement :class:`repro.backends.base.Backend` and must
produce bit-identical Kernel 1 outputs and numerically identical Kernel
2/3 outputs for the same input dataset — enforced by the cross-backend
integration tests.
"""

from __future__ import annotations

from repro.backends.base import AdjacencyHandle, Backend, KernelOutput
from repro.backends.registry import available_backends, get_backend, register_backend

__all__ = [
    "AdjacencyHandle",
    "Backend",
    "KernelOutput",
    "available_backends",
    "get_backend",
    "register_backend",
]
