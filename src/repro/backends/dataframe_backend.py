"""The dataframe backend: pipeline over :mod:`repro.frame`.

The analogue of the paper's "Python with Pandas" implementation.  Edges
live in a two-column frame; Kernel 1 is ``sort_values("u")``, Kernel 2's
degrees are ``groupby_sum`` aggregations joined back onto the edge
table, and Kernel 3's SpMV is the classic dataframe formulation:
*compute per-edge contributions, group by destination, sum*.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro._util import Timings
from repro.backends.base import AdjacencyHandle, Backend, Details, KernelOutput
from repro.core.config import PipelineConfig
from repro.edgeio.dataset import EdgeDataset
from repro.frame import Frame
from repro.generators.registry import get_generator
from repro.sort.external import ExternalSortConfig, external_sort_dataset


class FrameAdjacency(AdjacencyHandle):
    """Kernel 2 output as an edge frame with a ``weight`` column."""

    def __init__(self, num_vertices: int, edges: Frame, pre_filter_total: float) -> None:
        self._n = num_vertices
        self.edges = edges  # columns: u, v, weight (deduplicated)
        self._pre_filter_total = float(pre_filter_total)

    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def nnz(self) -> int:
        return self.edges.num_rows

    @property
    def pre_filter_entry_total(self) -> float:
        return self._pre_filter_total

    def to_scipy_csr(self) -> sp.csr_matrix:
        return sp.coo_matrix(
            (
                self.edges.column("weight"),
                (self.edges.column("u"), self.edges.column("v")),
            ),
            shape=(self._n, self._n),
        ).tocsr()


class DataframeBackend(Backend):
    """Columnar-dataframe implementation of all four kernels."""

    name = "dataframe"
    capabilities = frozenset({"serial", "streaming", "async"})

    def adjacency_from_csr(self, matrix, pre_filter_total):
        # CSR -> COO yields row-major (u, then v) triples — the same
        # order the serial Kernel 2's key-groupby produces, so Kernel
        # 3's per-edge contribution sums see an identical ordering.
        coo = matrix.tocoo()
        edges = Frame({
            "u": coo.row.astype(np.int64),
            "v": coo.col.astype(np.int64),
            "weight": coo.data.astype(np.float64),
        })
        return FrameAdjacency(matrix.shape[0], edges, pre_filter_total)

    # ------------------------------------------------------------------
    def kernel0(self, config: PipelineConfig, out_dir: Path) -> KernelOutput[EdgeDataset]:
        timings = Timings()
        generator = get_generator(config.generator)
        with timings.measure("generate"):
            u, v = generator(config.scale, config.edge_factor, seed=config.seed)
        with timings.measure("frame"):
            frame = Frame({"u": u, "v": v})
        with timings.measure("write"):
            dataset = EdgeDataset.write(
                out_dir,
                frame.column("u"),
                frame.column("v"),
                num_vertices=config.num_vertices,
                num_shards=config.num_files,
                vertex_base=config.vertex_base,
                fmt=config.file_format,
                extra={"kernel": "k0", "generator": config.generator},
            )
        details: Details = {
            "phases": timings.as_dict(),
            "num_edges": dataset.num_edges,
            "num_shards": dataset.num_shards,
            "bytes_written": dataset.total_bytes(),
        }
        return dataset, details

    # ------------------------------------------------------------------
    def kernel1(
        self, config: PipelineConfig, source: EdgeDataset, out_dir: Path
    ) -> KernelOutput[EdgeDataset]:
        timings = Timings()
        if config.external_sort:
            with timings.measure("external_sort"):
                dataset = external_sort_dataset(
                    source,
                    out_dir,
                    config=ExternalSortConfig(algorithm="numpy"),
                    num_shards=config.num_files,
                    by_end_vertex=config.sort_by_end_vertex,
                )
        else:
            with timings.measure("read"):
                u, v = source.read_all()
                frame = Frame({"u": u, "v": v})
            with timings.measure("sort"):
                keys = ["u", "v"] if config.sort_by_end_vertex else "u"
                frame = frame.sort_values(keys)
            with timings.measure("write"):
                dataset = EdgeDataset.write(
                    out_dir,
                    frame.column("u"),
                    frame.column("v"),
                    num_vertices=source.num_vertices,
                    num_shards=config.num_files,
                    vertex_base=config.vertex_base,
                    fmt=config.file_format,
                    extra={"kernel": "k1", "sorted_by": "u"},
                )
        details: Details = {
            "phases": timings.as_dict(),
            "algorithm": "external" if config.external_sort else "frame-sort",
            "num_shards": dataset.num_shards,
        }
        return dataset, details

    # ------------------------------------------------------------------
    def kernel2(
        self, config: PipelineConfig, source: EdgeDataset
    ) -> KernelOutput[AdjacencyHandle]:
        timings = Timings()
        n = source.num_vertices
        with timings.measure("read"):
            u, v = source.read_all()
            edges = Frame({"u": u, "v": v})

        with timings.measure("construct"):
            # Duplicate accumulation: count rows per (u, v) pair via a
            # composite key groupby — the dataframe idiom for sparse().
            key = edges.column("u") * n + edges.column("v")
            grouped = Frame({"key": key}).groupby_size("key")
            keys = grouped.column("key")
            weights = grouped.column("size").astype(np.float64)
            dedup = Frame({
                "u": keys // n,
                "v": keys % n,
                "weight": weights,
            })
            pre_filter_total = float(weights.sum())

        with timings.measure("filter"):
            din_frame = dedup.groupby_sum("v", "weight")
            din_vals = din_frame.column("weight_sum")
            max_in = din_vals.max() if len(din_vals) else 0.0
            supernode_count = 0
            leaf_count = 0
            if max_in > 0:
                bad_mask = (din_vals == max_in) | (din_vals == 1)
                supernode_count = int((din_vals == max_in).sum())
                leaf_count = int((din_vals == 1).sum())
                bad_vertices = din_frame.column("v")[bad_mask]
                eliminate = np.zeros(n, dtype=bool)
                eliminate[bad_vertices] = True
                dedup = dedup.filter(~eliminate[dedup.column("v")])

        with timings.measure("normalize"):
            dout_frame = dedup.groupby_sum("u", "weight")
            joined = dedup.merge(
                dout_frame.select(["u", "weight_sum"]), on="u", how="left"
            )
            dout_per_edge = joined.column("weight_sum")
            weight = joined.column("weight")
            safe_dout = np.where(dout_per_edge > 0, dout_per_edge, 1.0)
            normalized = np.where(dout_per_edge > 0, weight / safe_dout, weight)
            dedup = dedup.assign(weight=normalized)
            nonzero_rows = int((dout_frame.column("weight_sum") > 0).sum())

        handle = FrameAdjacency(n, dedup, pre_filter_total)
        details: Details = {
            "phases": timings.as_dict(),
            "nnz": handle.nnz,
            "pre_filter_entry_total": pre_filter_total,
            "max_in_degree": float(max_in),
            "supernode_columns": supernode_count,
            "leaf_columns": leaf_count,
            "nonzero_rows": nonzero_rows,
        }
        return handle, details

    # ------------------------------------------------------------------
    def kernel3(
        self, config: PipelineConfig, matrix: AdjacencyHandle
    ) -> KernelOutput[np.ndarray]:
        if not isinstance(matrix, FrameAdjacency):
            raise TypeError(
                f"dataframe backend needs FrameAdjacency, got {type(matrix).__name__}"
            )
        n = matrix.num_vertices
        edges = matrix.edges
        src = edges.column("u")
        dst = edges.column("v")
        weight = edges.column("weight")
        c = config.damping
        r = self.initial_rank(config)
        scale_by_n = config.formula == "appendix"
        for _ in range(config.iterations):
            contrib_frame = Frame({"v": dst, "contribution": r[src] * weight})
            spread_frame = contrib_frame.groupby_sum("v", "contribution")
            spread = np.zeros(n, dtype=np.float64)
            spread[spread_frame.column("v")] = spread_frame.column("contribution_sum")
            teleport = (1.0 - c) * r.sum()
            if scale_by_n:
                teleport /= n
            r = c * spread + teleport
        details: Details = {
            "iterations": config.iterations,
            "damping": c,
            "rank_sum": float(r.sum()),
        }
        return r, details
