"""Backend interface: the four kernels as abstract methods.

A backend owns *how* each kernel is computed; the pipeline driver owns
sequencing, timing, and contract verification.  Backends communicate
through the filesystem (Kernels 0→1→2, as the benchmark requires) and
through :class:`AdjacencyHandle` (Kernel 2→3, in memory).

Every kernel method returns ``(output, details)`` where ``details`` is a
JSON-safe dict of free-form metrics folded into the
:class:`repro.core.results.KernelResult`.
"""

from __future__ import annotations

import abc
from pathlib import Path
from typing import Dict, Tuple, TypeVar

import numpy as np
import scipy.sparse as sp

from repro.core.config import PipelineConfig
from repro.edgeio.dataset import EdgeDataset

#: Free-form kernel metrics.
Details = Dict[str, object]

T = TypeVar("T")
KernelOutput = Tuple[T, Details]


class AdjacencyHandle(abc.ABC):
    """Backend-specific wrapper around the Kernel 2 output matrix.

    Exposes the minimal cross-backend surface: size, entry counts used
    by contract checks, and a conversion to ``scipy.sparse`` for
    validation and comparison.
    """

    @property
    @abc.abstractmethod
    def num_vertices(self) -> int:
        """Matrix dimension ``N``."""

    @property
    @abc.abstractmethod
    def nnz(self) -> int:
        """Stored entries after filtering and normalisation."""

    @property
    @abc.abstractmethod
    def pre_filter_entry_total(self) -> float:
        """Sum of all adjacency counts *before* column elimination.

        The benchmark contract requires this to equal ``M`` ("all the
        entries in A should sum to M", Section IV.C).
        """

    @abc.abstractmethod
    def to_scipy_csr(self) -> sp.csr_matrix:
        """Materialise the normalised matrix as scipy CSR (float64)."""


class Backend(abc.ABC):
    """One complete serial implementation of the four-kernel pipeline."""

    #: Registry name; subclasses must override.
    name: str = ""

    #: Execution strategies this backend's kernels compose with
    #: (see :mod:`repro.core.executor`):
    #:
    #: * ``"serial"`` — always supported (the four abstract kernels);
    #: * ``"streaming"`` — the out-of-core Kernel 2 can hand this
    #:   backend a scipy CSR matrix via :meth:`adjacency_from_csr` and
    #:   its Kernel 3 will accept the resulting handle;
    #: * ``"parallel"`` — the sharded K2+K3 path produces rank vectors
    #:   numerically matching this backend's serial output;
    #: * ``"async"`` — the overlapped executor's generic Kernel 0/1
    #:   tasks reproduce this backend's serial kernel output (true for
    #:   the shared-generator numpy-family backends, not for the
    #:   pure-python backend with its own random stream), and
    #:   :meth:`adjacency_from_csr` is implemented for the pipelined
    #:   Kernel 2 hand-off.
    capabilities: frozenset = frozenset({"serial"})

    # ------------------------------------------------------------------
    # Kernel 0 — Generate
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def kernel0(
        self, config: PipelineConfig, out_dir: Path
    ) -> KernelOutput[EdgeDataset]:
        """Generate the Kronecker (or configured) graph and write edge
        files to ``out_dir``.

        Returns the written dataset.  Generation and file writing are
        both inside the measured region (the paper's Figure 4 measures
        Kernel 0 end-to-end even though it is officially untimed).
        """

    # ------------------------------------------------------------------
    # Kernel 1 — Sort
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def kernel1(
        self, config: PipelineConfig, source: EdgeDataset, out_dir: Path
    ) -> KernelOutput[EdgeDataset]:
        """Read ``source`` edge files, sort by start vertex, write the
        sorted dataset to ``out_dir`` in the same format."""

    # ------------------------------------------------------------------
    # Kernel 2 — Filter
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def kernel2(
        self, config: PipelineConfig, source: EdgeDataset
    ) -> KernelOutput[AdjacencyHandle]:
        """Read the sorted edge files and produce the filtered,
        row-normalised adjacency matrix:

        1. ``A = sparse(u, v, 1, N, N)`` (duplicates accumulate);
        2. ``din = sum(A, 1)``;
        3. ``A[:, din == max(din)] = 0`` and ``A[:, din == 1] = 0``;
        4. rows with ``dout > 0`` divided by their ``dout``.
        """

    # ------------------------------------------------------------------
    # Kernel 3 — PageRank
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def kernel3(
        self, config: PipelineConfig, matrix: AdjacencyHandle
    ) -> KernelOutput[np.ndarray]:
        """Run ``config.iterations`` fixed PageRank iterations.

        The initial vector is uniform random (seeded from
        ``config.seed``) normalised to unit 1-norm; each iteration is
        ``r <- c*(r@A) + (1-c)*sum(r)/N`` (``"appendix"`` formula) or
        the paper body's no-``/N`` variant when configured.

        Returns the final rank row-vector of length ``N``.
        """

    # ------------------------------------------------------------------
    # Capability hooks
    # ------------------------------------------------------------------
    def adjacency_from_csr(
        self, matrix: sp.csr_matrix, pre_filter_total: float
    ) -> AdjacencyHandle:
        """Adopt an externally built (row-normalised) CSR matrix as this
        backend's Kernel 2 output handle.

        The streaming executor builds the filtered matrix out-of-core
        (:func:`repro.core.streaming.streaming_kernel2`) and needs to
        hand it to the backend's Kernel 3.  Backends declaring the
        ``"streaming"`` capability must override this.
        """
        raise NotImplementedError(
            f"backend {self.name!r} cannot adopt an external CSR matrix; "
            f"it does not support the 'streaming' execution strategy"
        )

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def initial_rank(config: PipelineConfig) -> np.ndarray:
        """The benchmark's initial rank vector.

        Drawn from a child stream of the config seed so Kernel 3's
        start point is identical across backends, then 1-norm
        normalised (``r = rand(1, N); r = r ./ norm(r, 1)``).
        """
        from repro._util import derive_seed, resolve_rng

        rng = resolve_rng(derive_seed(config.seed, 3))
        r = rng.random(config.num_vertices)
        return r / np.abs(r).sum()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<backend {self.name!r}>"
