"""The graphblas backend: pipeline over :mod:`repro.grb`.

Demonstrates the paper's closing suggestion that "implementations using
the GraphBLAS standard would enable comparison of the GraphBLAS
capabilities with other technologies": every Kernel 2/3 step is a
GraphBLAS-vocabulary operation (``build``, ``reduce_columns``,
``clear_columns``, ``scale_rows``, ``vxm`` under ``plus_times``).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro._util import Timings
from repro.backends.base import AdjacencyHandle, Backend, Details, KernelOutput
from repro.core.config import PipelineConfig
from repro.edgeio.dataset import EdgeDataset
from repro.generators.registry import get_generator
from repro.grb import Matrix, PLUS_TIMES, Vector, vxm
from repro.sort.external import ExternalSortConfig, external_sort_dataset
from repro.sort.inmemory import sort_edges


class GrbAdjacency(AdjacencyHandle):
    """Kernel 2 output as a :class:`repro.grb.Matrix`."""

    def __init__(self, matrix: Matrix, pre_filter_total: float) -> None:
        self.matrix = matrix
        self._pre_filter_total = float(pre_filter_total)

    @property
    def num_vertices(self) -> int:
        return self.matrix.nrows

    @property
    def nnz(self) -> int:
        return self.matrix.nvals

    @property
    def pre_filter_entry_total(self) -> float:
        return self._pre_filter_total

    def to_scipy_csr(self) -> sp.csr_matrix:
        m = self.matrix
        return sp.csr_matrix(
            (m.values.copy(), m.col_idx.copy(), m.row_ptr.copy()),
            shape=m.shape,
        )


class GraphBlasBackend(Backend):
    """GraphBLAS-lite implementation of all four kernels."""

    name = "graphblas"
    capabilities = frozenset({"serial", "streaming", "async"})

    def adjacency_from_csr(self, matrix, pre_filter_total):
        # scipy CSR and repro.grb.Matrix share the same storage layout,
        # so adoption is a zero-copy re-wrap of the three arrays.
        csr = matrix.tocsr()
        adopted = Matrix(
            csr.shape[0],
            csr.shape[1],
            csr.indptr.astype(np.int64),
            csr.indices.astype(np.int64),
            csr.data.astype(np.float64),
        )
        return GrbAdjacency(adopted, pre_filter_total)

    # ------------------------------------------------------------------
    def kernel0(self, config: PipelineConfig, out_dir: Path) -> KernelOutput[EdgeDataset]:
        timings = Timings()
        generator = get_generator(config.generator)
        with timings.measure("generate"):
            u, v = generator(config.scale, config.edge_factor, seed=config.seed)
        with timings.measure("write"):
            dataset = EdgeDataset.write(
                out_dir,
                u,
                v,
                num_vertices=config.num_vertices,
                num_shards=config.num_files,
                vertex_base=config.vertex_base,
                fmt=config.file_format,
                extra={"kernel": "k0", "generator": config.generator},
            )
        details: Details = {
            "phases": timings.as_dict(),
            "num_edges": dataset.num_edges,
            "num_shards": dataset.num_shards,
            "bytes_written": dataset.total_bytes(),
        }
        return dataset, details

    # ------------------------------------------------------------------
    def kernel1(
        self, config: PipelineConfig, source: EdgeDataset, out_dir: Path
    ) -> KernelOutput[EdgeDataset]:
        timings = Timings()
        if config.external_sort:
            with timings.measure("external_sort"):
                dataset = external_sort_dataset(
                    source,
                    out_dir,
                    config=ExternalSortConfig(algorithm=config.sort_algorithm),
                    num_shards=config.num_files,
                    by_end_vertex=config.sort_by_end_vertex,
                )
        else:
            with timings.measure("read"):
                u, v = source.read_all()
            with timings.measure("sort"):
                u, v = sort_edges(
                    u,
                    v,
                    algorithm=config.sort_algorithm,
                    num_vertices=source.num_vertices,
                    by_end_vertex=config.sort_by_end_vertex,
                )
            with timings.measure("write"):
                dataset = EdgeDataset.write(
                    out_dir,
                    u,
                    v,
                    num_vertices=source.num_vertices,
                    num_shards=config.num_files,
                    vertex_base=config.vertex_base,
                    fmt=config.file_format,
                    extra={"kernel": "k1", "sorted_by": "u"},
                )
        details: Details = {
            "phases": timings.as_dict(),
            "algorithm": "external" if config.external_sort else config.sort_algorithm,
            "num_shards": dataset.num_shards,
        }
        return dataset, details

    # ------------------------------------------------------------------
    def kernel2(
        self, config: PipelineConfig, source: EdgeDataset
    ) -> KernelOutput[AdjacencyHandle]:
        timings = Timings()
        n = source.num_vertices
        with timings.measure("read"):
            u, v = source.read_all()

        with timings.measure("construct"):
            adjacency = Matrix.build(u, v, nrows=n, ncols=n)
            pre_filter_total = adjacency.reduce_scalar()

        with timings.measure("filter"):
            din = adjacency.reduce_columns()
            max_in = din.max() if n else 0.0
            supernode_count = 0
            leaf_count = 0
            if max_in > 0:
                supernode_mask = din == max_in
                leaf_mask = din == 1
                eliminate = supernode_mask | leaf_mask
                supernode_count = int(supernode_mask.sum())
                leaf_count = int(leaf_mask.sum())
                adjacency = adjacency.clear_columns(eliminate)

        with timings.measure("normalize"):
            dout = adjacency.reduce_rows()
            nonzero = dout > 0
            inv = np.ones(n, dtype=np.float64)
            inv[nonzero] = 1.0 / dout[nonzero]
            adjacency = adjacency.scale_rows(inv)

        handle = GrbAdjacency(adjacency, pre_filter_total)
        details: Details = {
            "phases": timings.as_dict(),
            "nnz": handle.nnz,
            "pre_filter_entry_total": pre_filter_total,
            "max_in_degree": float(max_in),
            "supernode_columns": supernode_count,
            "leaf_columns": leaf_count,
            "nonzero_rows": int(nonzero.sum()),
        }
        return handle, details

    # ------------------------------------------------------------------
    def kernel3(
        self, config: PipelineConfig, matrix: AdjacencyHandle
    ) -> KernelOutput[np.ndarray]:
        if not isinstance(matrix, GrbAdjacency):
            raise TypeError(
                f"graphblas backend needs GrbAdjacency, got {type(matrix).__name__}"
            )
        a = matrix.matrix
        n = matrix.num_vertices
        c = config.damping
        r = Vector(self.initial_rank(config))
        scale_by_n = config.formula == "appendix"
        for _ in range(config.iterations):
            spread = vxm(r, a, PLUS_TIMES)
            teleport = (1.0 - c) * r.reduce()
            if scale_by_n:
                teleport /= n
            r = spread.scale(c).ewise_add(Vector.full(n, teleport))
        rank = r.to_dense()
        details: Details = {
            "iterations": config.iterations,
            "damping": c,
            "rank_sum": float(rank.sum()),
        }
        return rank, details
