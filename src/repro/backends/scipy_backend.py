"""The scipy backend: ``scipy.sparse`` kernels.

This is the reference high-performance implementation — the analogue of
the paper's Matlab/Julia codes, whose kernels are one-liner sparse
operations.  Kernel 2 is a direct transcription of the paper's
Matlab listing into scipy:

====================================  =================================
paper (Matlab)                        here (scipy)
====================================  =================================
``A = sparse(u,v,1,N,N)``             ``coo_matrix((1s,(u,v))).tocsr()``
``din = sum(A,1)``                    ``A.sum(axis=0)``
``A(:,din==max(din)) = 0``            right-multiply by column selector
``A(:,din==1) = 0``                   right-multiply by column selector
``dout = sum(A,2)``                   ``A.sum(axis=1)``
``A(i,:) = A(i,:) ./ dout(i)``        left-multiply by ``diag(1/dout)``
====================================  =================================
"""

from __future__ import annotations

from pathlib import Path
from typing import Tuple

import numpy as np
import scipy.sparse as sp

from repro._util import Timings
from repro.backends.base import AdjacencyHandle, Backend, Details, KernelOutput
from repro.core.config import PipelineConfig
from repro.edgeio.dataset import EdgeDataset
from repro.generators.registry import get_generator
from repro.sort.external import ExternalSortConfig, external_sort_dataset
from repro.sort.inmemory import sort_edges


class ScipyAdjacency(AdjacencyHandle):
    """Kernel 2 output as a scipy CSR matrix."""

    def __init__(self, matrix: sp.csr_matrix, pre_filter_total: float) -> None:
        self._matrix = matrix.tocsr()
        self._pre_filter_total = float(pre_filter_total)

    @property
    def num_vertices(self) -> int:
        return self._matrix.shape[0]

    @property
    def nnz(self) -> int:
        return int(self._matrix.nnz)

    @property
    def pre_filter_entry_total(self) -> float:
        return self._pre_filter_total

    @property
    def matrix(self) -> sp.csr_matrix:
        """The underlying CSR matrix (not copied)."""
        return self._matrix

    def to_scipy_csr(self) -> sp.csr_matrix:
        return self._matrix.copy()


class ScipyBackend(Backend):
    """scipy.sparse implementation of all four kernels."""

    name = "scipy"
    capabilities = frozenset({"serial", "streaming", "parallel", "async"})

    def adjacency_from_csr(self, matrix, pre_filter_total):
        return ScipyAdjacency(matrix, pre_filter_total)

    # ------------------------------------------------------------------
    def kernel0(self, config: PipelineConfig, out_dir: Path) -> KernelOutput[EdgeDataset]:
        timings = Timings()
        generator = get_generator(config.generator)
        with timings.measure("generate"):
            u, v = generator(config.scale, config.edge_factor, seed=config.seed)
        with timings.measure("write"):
            dataset = EdgeDataset.write(
                out_dir,
                u,
                v,
                num_vertices=config.num_vertices,
                num_shards=config.num_files,
                vertex_base=config.vertex_base,
                fmt=config.file_format,
                extra={"kernel": "k0", "generator": config.generator},
            )
        details: Details = {
            "phases": timings.as_dict(),
            "num_edges": dataset.num_edges,
            "num_shards": dataset.num_shards,
            "bytes_written": dataset.total_bytes(),
        }
        return dataset, details

    # ------------------------------------------------------------------
    def kernel1(
        self, config: PipelineConfig, source: EdgeDataset, out_dir: Path
    ) -> KernelOutput[EdgeDataset]:
        timings = Timings()
        if config.external_sort:
            with timings.measure("external_sort"):
                dataset = external_sort_dataset(
                    source,
                    out_dir,
                    config=ExternalSortConfig(algorithm=config.sort_algorithm),
                    num_shards=config.num_files,
                    by_end_vertex=config.sort_by_end_vertex,
                )
        else:
            with timings.measure("read"):
                u, v = source.read_all()
            with timings.measure("sort"):
                u, v = sort_edges(
                    u,
                    v,
                    algorithm=config.sort_algorithm,
                    num_vertices=source.num_vertices,
                    by_end_vertex=config.sort_by_end_vertex,
                )
            with timings.measure("write"):
                dataset = EdgeDataset.write(
                    out_dir,
                    u,
                    v,
                    num_vertices=source.num_vertices,
                    num_shards=config.num_files,
                    vertex_base=config.vertex_base,
                    fmt=config.file_format,
                    extra={"kernel": "k1", "sorted_by": "u"},
                )
        details: Details = {
            "phases": timings.as_dict(),
            "algorithm": "external" if config.external_sort else config.sort_algorithm,
            "num_shards": dataset.num_shards,
        }
        return dataset, details

    # ------------------------------------------------------------------
    def kernel2(
        self, config: PipelineConfig, source: EdgeDataset
    ) -> KernelOutput[AdjacencyHandle]:
        timings = Timings()
        n = source.num_vertices
        with timings.measure("read"):
            u, v = source.read_all()

        with timings.measure("construct"):
            ones = np.ones(len(u), dtype=np.float64)
            adjacency = sp.coo_matrix((ones, (u, v)), shape=(n, n)).tocsr()
            pre_filter_total = float(adjacency.sum())

        with timings.measure("filter"):
            din = np.asarray(adjacency.sum(axis=0)).ravel()
            max_in = din.max() if len(din) else 0.0
            eliminate = np.zeros(n, dtype=bool)
            supernode_count = 0
            leaf_count = 0
            if max_in > 0:
                supernode_mask = din == max_in
                leaf_mask = din == 1
                eliminate = supernode_mask | leaf_mask
                supernode_count = int(supernode_mask.sum())
                leaf_count = int(leaf_mask.sum())
                keep_diag = sp.diags((~eliminate).astype(np.float64))
                adjacency = (adjacency @ keep_diag).tocsr()
                adjacency.eliminate_zeros()

        with timings.measure("normalize"):
            dout = np.asarray(adjacency.sum(axis=1)).ravel()
            inv = np.ones(n, dtype=np.float64)
            nonzero = dout > 0
            inv[nonzero] = 1.0 / dout[nonzero]
            adjacency = sp.diags(inv) @ adjacency
            adjacency = adjacency.tocsr()

        handle = ScipyAdjacency(adjacency, pre_filter_total)
        details: Details = {
            "phases": timings.as_dict(),
            "nnz": handle.nnz,
            "pre_filter_entry_total": pre_filter_total,
            "max_in_degree": float(max_in),
            "supernode_columns": supernode_count,
            "leaf_columns": leaf_count,
            "nonzero_rows": int(nonzero.sum()),
        }
        return handle, details

    # ------------------------------------------------------------------
    def kernel3(
        self, config: PipelineConfig, matrix: AdjacencyHandle
    ) -> KernelOutput[np.ndarray]:
        if not isinstance(matrix, ScipyAdjacency):
            raise TypeError(
                f"scipy backend needs ScipyAdjacency, got {type(matrix).__name__}"
            )
        a = matrix.matrix
        at = a.T.tocsr()  # one transposed copy; r@A == (A.T @ r)
        n = matrix.num_vertices
        c = config.damping
        r = self.initial_rank(config)
        scale_by_n = config.formula == "appendix"
        for _ in range(config.iterations):
            teleport = (1.0 - c) * r.sum()
            if scale_by_n:
                teleport /= n
            r = c * (at @ r) + teleport
        details: Details = {
            "iterations": config.iterations,
            "damping": c,
            "rank_sum": float(r.sum()),
        }
        return r, details
