"""Backend registry: name-based lookup and registration.

The built-in backends register at import; downstream users can add their
own with :func:`register_backend` (e.g. a Dask or Ray implementation)
and the harness, CLI, and benchmarks pick them up by name.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.backends.base import Backend


_REGISTRY: Dict[str, Type[Backend]] = {}


def register_backend(cls: Type[Backend], *, replace: bool = False) -> Type[Backend]:
    """Register a backend class under ``cls.name``.

    Usable as a decorator.  Raises ``ValueError`` on duplicate names
    unless ``replace`` is set.
    """
    if not cls.name:
        raise ValueError(f"{cls.__name__} must define a non-empty 'name'")
    if cls.name in _REGISTRY and not replace:
        raise ValueError(f"backend {cls.name!r} is already registered")
    _REGISTRY[cls.name] = cls
    return cls


def _ensure_builtins() -> None:
    """Import built-in backends lazily to avoid import cycles."""
    if _REGISTRY:
        return
    from repro.backends.dataframe_backend import DataframeBackend
    from repro.backends.graphblas_backend import GraphBlasBackend
    from repro.backends.numpy_backend import NumpyBackend
    from repro.backends.python_backend import PythonBackend
    from repro.backends.scipy_backend import ScipyBackend

    for cls in (PythonBackend, NumpyBackend, ScipyBackend, DataframeBackend,
                GraphBlasBackend):
        if cls.name not in _REGISTRY:
            _REGISTRY[cls.name] = cls


def available_backends() -> List[str]:
    """Sorted list of registered backend names."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def get_backend(name: str) -> Backend:
    """Instantiate a backend by name.

    Raises
    ------
    KeyError
        With the list of valid names when ``name`` is unknown.
    """
    _ensure_builtins()
    try:
        return _REGISTRY[name]()
    except KeyError:
        valid = ", ".join(available_backends())
        raise KeyError(f"unknown backend {name!r}; available: {valid}") from None
