"""Row-block partitioning of the vertex space.

The paper (Sections IV.C/D): "a common decomposition would be to have
each processor hold a set of rows, since this would correspond to how
the files have been sorted in kernel 1."  ``RowPartition`` owns the
arithmetic of that decomposition: contiguous vertex ranges, near-equal
sizes, and owner lookup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro._util import check_positive_int


@dataclass(frozen=True)
class RowPartition:
    """Contiguous block partition of ``num_vertices`` rows over ``size`` ranks.

    Block sizes differ by at most one row; rank ``r`` owns
    ``[start(r), end(r))``.

    Examples
    --------
    >>> p = RowPartition(num_vertices=10, size=3)
    >>> [p.bounds(r) for r in range(3)]
    [(0, 4), (4, 7), (7, 10)]
    >>> p.owner_of(np.array([0, 5, 9])).tolist()
    [0, 1, 2]
    """

    num_vertices: int
    size: int

    def __post_init__(self) -> None:
        check_positive_int("num_vertices", self.num_vertices)
        check_positive_int("size", self.size)

    def bounds(self, rank: int) -> Tuple[int, int]:
        """[start, end) vertex range owned by ``rank``."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} outside [0, {self.size})")
        base = self.num_vertices // self.size
        remainder = self.num_vertices % self.size
        start = rank * base + min(rank, remainder)
        size = base + (1 if rank < remainder else 0)
        return start, start + size

    def local_count(self, rank: int) -> int:
        """Number of rows owned by ``rank``."""
        start, end = self.bounds(rank)
        return end - start

    def all_bounds(self) -> List[Tuple[int, int]]:
        """Bounds for every rank, rank-ordered."""
        return [self.bounds(rank) for rank in range(self.size)]

    def owner_of(self, vertices: np.ndarray) -> np.ndarray:
        """Owning rank of each vertex (vectorised).

        Uses ``searchsorted`` over the block starts, so cost is
        O(len(vertices) * log(size)).
        """
        vertices = np.asarray(vertices)
        if len(vertices) and (vertices.min() < 0 or vertices.max() >= self.num_vertices):
            raise ValueError(
                f"vertices outside [0, {self.num_vertices}): "
                f"min={vertices.min()}, max={vertices.max()}"
            )
        starts = np.array([self.bounds(r)[0] for r in range(self.size)], dtype=np.int64)
        return (np.searchsorted(starts, vertices, side="right") - 1).astype(np.int64)
