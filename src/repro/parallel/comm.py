"""Abstract message-passing communicator.

Deliberately shaped like the mpi4py lower-case object API (the standard
Python HPC idiom) so the rank programs in :mod:`repro.parallel.kernels`
read like MPI code and could be ported to real MPI directly.  Payloads
are numpy arrays or picklable scalars; reductions operate elementwise.

Traffic model: each operation logs bytes under the *naive* algorithm
(star reduce + star broadcast for collectives), matching the "simple
models of the hardware" the paper uses for performance prediction.
Vendors' tree/ring algorithms move fewer bytes; the model is an upper
bound with the right asymptotics.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, List, Optional

import numpy as np

from repro.parallel.traffic import TrafficLog

#: Reduction operators accepted by :meth:`Communicator.allreduce`.
REDUCE_OPS = {
    "sum": np.add,
    "max": np.maximum,
    "min": np.minimum,
}


def payload_nbytes(value: Any) -> int:
    """Approximate wire size of a payload in bytes."""
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (bool, np.bool_)):
        return 1
    if isinstance(value, (int, np.integer, float, np.floating)):
        return 8
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, (list, tuple)):
        return sum(payload_nbytes(v) for v in value)
    return 64  # conservative default for other picklables


class Communicator(abc.ABC):
    """Rank-local handle to a communication group of ``size`` ranks."""

    def __init__(self, rank: int, size: int, traffic: Optional[TrafficLog]) -> None:
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        if not 0 <= rank < size:
            raise ValueError(f"rank {rank} outside [0, {size})")
        self.rank = rank
        self.size = size
        self.traffic = traffic if traffic is not None else TrafficLog()

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def send(self, dest: int, payload: Any) -> None:
        """Send a payload to ``dest`` (non-blocking buffered semantics)."""

    @abc.abstractmethod
    def recv(self, source: int) -> Any:
        """Receive the next payload from ``source`` (blocking)."""

    # ------------------------------------------------------------------
    # Collectives (must be called by every rank of the group)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def barrier(self) -> None:
        """Block until every rank reaches the barrier."""

    @abc.abstractmethod
    def bcast(self, payload: Any, root: int = 0) -> Any:
        """Broadcast ``payload`` from ``root`` to every rank."""

    @abc.abstractmethod
    def allreduce(self, value: Any, op: str = "sum") -> Any:
        """Elementwise reduction of every rank's value, result everywhere."""

    @abc.abstractmethod
    def allgather(self, value: Any) -> List[Any]:
        """Gather every rank's value, returned as a rank-ordered list."""

    @abc.abstractmethod
    def alltoall(self, payloads: List[Any]) -> List[Any]:
        """Personalised exchange: ``payloads[d]`` goes to rank ``d``;
        returns the list of payloads received, indexed by source."""

    # ------------------------------------------------------------------
    # Shared traffic-accounting helpers
    # ------------------------------------------------------------------
    def _log_collective(self, op: str, nbytes: int, messages: int) -> None:
        """Log a collective once (rank 0 logs on behalf of the group)."""
        if self.rank == 0:
            self.traffic.record(op, nbytes, messages, rank=0)

    def _account_bcast(self, payload: Any) -> None:
        n = payload_nbytes(payload)
        self._log_collective("bcast", n * (self.size - 1), self.size - 1)

    def _account_allreduce(self, payload: Any) -> None:
        n = payload_nbytes(payload)
        self._log_collective("allreduce", 2 * n * (self.size - 1), 2 * (self.size - 1))

    def _account_allgather(self, values: List[Any]) -> None:
        total = sum(payload_nbytes(v) for v in values)
        self._log_collective(
            "allgather", total * (self.size - 1), self.size * (self.size - 1)
        )

    def _account_alltoall(self, matrix_bytes: int) -> None:
        self._log_collective("alltoall", matrix_bytes, self.size * (self.size - 1))

    @staticmethod
    def reduce_values(values: List[Any], op: str) -> Any:
        """Apply the named reduction across a list of payloads."""
        try:
            ufunc: Callable = REDUCE_OPS[op]
        except KeyError:
            raise ValueError(
                f"unknown reduce op {op!r}; expected one of {sorted(REDUCE_OPS)}"
            ) from None
        result = values[0]
        for value in values[1:]:
            result = ufunc(result, value)
        return result
