"""Parallel pipeline substrate.

The paper describes (Sections IV.C/D) how a parallel implementation
would decompose the pipeline: each processor holds a block of matrix
*rows* (matching the Kernel 1 sort order), Kernel 2 aggregates in-degree
across processors and broadcasts the eliminated vertices, and Kernel 3
sums per-processor partial rank vectors every iteration — predicting
that Kernel 3 is network-communication dominated.

This package reproduces that design without requiring MPI:

* :class:`Communicator` — the abstract message-passing interface
  (send/recv, bcast, allreduce, allgather, alltoall) with byte-accurate
  traffic accounting;
* :class:`SimCommunicator` — threads in one process, deterministic,
  used for tests and for *measuring* communication volumes;
* :class:`MpCommunicator` — the same rank programs under
  ``multiprocessing`` for true-parallel integration tests;
* :mod:`repro.parallel.kernels` — row-block parallel Kernel 2/3 whose
  results are bit-compatible with the serial backends;
* :func:`run_parallel_pipeline` — end-to-end parallel K2+K3 driver.
"""

from __future__ import annotations

from repro.parallel.comm import Communicator
from repro.parallel.traffic import TrafficLog, TrafficRecord
from repro.parallel.sim import SimCommunicator, run_rank_programs
from repro.parallel.mp import run_rank_programs_mp
from repro.parallel.partition import RowPartition
from repro.parallel.kernels import (
    exchange_edges_by_owner,
    parallel_kernel0,
    parallel_kernel1,
    parallel_kernel2,
    parallel_kernel3,
)
from repro.parallel.driver import ParallelRunResult, run_parallel_pipeline

__all__ = [
    "Communicator",
    "MpCommunicator",
    "ParallelRunResult",
    "RowPartition",
    "SimCommunicator",
    "TrafficLog",
    "TrafficRecord",
    "exchange_edges_by_owner",
    "parallel_kernel0",
    "parallel_kernel1",
    "parallel_kernel2",
    "parallel_kernel3",
    "run_parallel_pipeline",
    "run_rank_programs",
    "run_rank_programs_mp",
]

from repro.parallel.mp import MpCommunicator  # noqa: E402  (circular-safe)
