"""Multiprocessing communicator: real process parallelism.

Runs the same rank programs as :mod:`repro.parallel.sim` under
``multiprocessing``, so the parallel kernels get true CPU parallelism
(each process has its own GIL).  Collectives use a star topology through
rank 0: every rank funnels its contribution to rank 0's queue, rank 0
reduces/assembles, and fans results back out through per-rank queues —
the same naive algorithm the traffic model assumes.

Intended for integration tests and demonstration (the paper's parallel
discussion is analytic); scalability of the star hub is not a goal.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Any, Callable, List, Optional

import numpy as np

from repro.parallel.comm import Communicator, payload_nbytes
from repro.parallel.traffic import TrafficLog

#: Tag a dying rank pushes to the hub so collectives fail fast instead
#: of blocking until the collection timeout.
_POISON_TAG = "__rank_failed__"


class MpCommunicator(Communicator):
    """Queue-backed communicator for one rank of a process group."""

    def __init__(
        self,
        rank: int,
        size: int,
        to_hub: "mp.Queue",
        from_hub: List["mp.Queue"],
        p2p: List[List["mp.Queue"]],
        traffic: Optional[TrafficLog] = None,
    ) -> None:
        super().__init__(rank, size, traffic)
        self._to_hub = to_hub
        self._from_hub = from_hub
        self._p2p = p2p

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def send(self, dest: int, payload: Any) -> None:
        if not 0 <= dest < self.size:
            raise ValueError(f"dest {dest} outside [0, {self.size})")
        self.traffic.record("send", payload_nbytes(payload), 1, self.rank)
        self._p2p[self.rank][dest].put(payload)

    def recv(self, source: int) -> Any:
        if not 0 <= source < self.size:
            raise ValueError(f"source {source} outside [0, {self.size})")
        return self._p2p[source][self.rank].get()

    # ------------------------------------------------------------------
    # Star-topology collectives
    # ------------------------------------------------------------------
    def _hub_round(self, tag: str, value: Any, assemble: Callable[[List[Any]], Any]) -> Any:
        """One gather-to-hub / fan-out round.

        ``assemble`` runs on rank 0 over the rank-ordered contribution
        list and its result is distributed to every rank.
        """
        if self.rank == 0:
            contributions: List[Any] = [None] * self.size
            contributions[0] = value
            for _ in range(self.size - 1):
                src, src_tag, payload = self._to_hub.get()
                if src_tag == _POISON_TAG:
                    raise RuntimeError(
                        f"rank {src} failed during collective {tag!r}: "
                        f"{payload}"
                    )
                if src_tag != tag:
                    raise RuntimeError(
                        f"collective mismatch at hub: expected {tag!r}, "
                        f"rank {src} sent {src_tag!r}"
                    )
                contributions[src] = payload
            result = assemble(contributions)
            for dest in range(1, self.size):
                self._from_hub[dest].put((tag, result))
            return result
        self._to_hub.put((self.rank, tag, value))
        result_tag, result = self._from_hub[self.rank].get()
        if result_tag != tag:
            raise RuntimeError(
                f"collective mismatch at rank {self.rank}: expected {tag!r}, "
                f"hub sent {result_tag!r}"
            )
        return result

    def barrier(self) -> None:
        self._hub_round("barrier", None, lambda contributions: None)

    def bcast(self, payload: Any, root: int = 0) -> Any:
        if root != 0:
            # Route through rank 0: root hands its payload up first.
            marker = payload if self.rank == root else None
            gathered = self._hub_round("bcast-gather", marker, list)
            result = gathered[root]
        else:
            result = self._hub_round(
                "bcast", payload if self.rank == 0 else None,
                lambda contributions: contributions[0],
            )
        self._account_bcast(result)
        return result

    def allreduce(self, value: Any, op: str = "sum") -> Any:
        result = self._hub_round(
            "allreduce", value, lambda vals: self.reduce_values(vals, op)
        )
        self._account_allreduce(value)
        if isinstance(result, np.ndarray):
            return result.copy()
        return result

    def allgather(self, value: Any) -> List[Any]:
        result = self._hub_round("allgather", value, list)
        self._account_allgather(result)
        return result

    def alltoall(self, payloads: List[Any]) -> List[Any]:
        if len(payloads) != self.size:
            raise ValueError(
                f"alltoall needs {self.size} payloads, got {len(payloads)}"
            )
        matrix = self._hub_round("alltoall", payloads, list)
        received = [matrix[src][self.rank] for src in range(self.size)]
        off_diagonal = sum(
            payload_nbytes(matrix[s][d])
            for s in range(self.size)
            for d in range(self.size)
            if s != d
        )
        self._account_alltoall(off_diagonal)
        return received


def _worker(
    program: Callable[..., Any],
    rank: int,
    size: int,
    to_hub: "mp.Queue",
    from_hub: List["mp.Queue"],
    p2p: List[List["mp.Queue"]],
    result_queue: "mp.Queue",
    args: tuple,
) -> None:
    comm = MpCommunicator(rank, size, to_hub, from_hub, p2p)
    try:
        result = program(comm, *args)
        result_queue.put((rank, "ok", result, comm.traffic.summary()))
    except BaseException as exc:  # noqa: BLE001 - marshalled to parent
        result_queue.put((rank, "error", repr(exc), None))
        if rank != 0:
            # Unblock the hub if it is waiting on this rank's collective
            # contribution; rank 0 re-raises the failure immediately.
            to_hub.put((rank, _POISON_TAG, repr(exc)))


def run_rank_programs_mp(
    program: Callable[..., Any],
    size: int,
    *args: Any,
    timeout: float = 300.0,
) -> List[Any]:
    """Run ``program(comm, *args)`` on ``size`` OS processes.

    The program and arguments must be picklable (module-level functions,
    numpy arrays).  Returns rank-ordered results.

    Raises
    ------
    RuntimeError
        If any rank failed or results did not arrive within ``timeout``.
    """
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    ctx = mp.get_context("fork")
    to_hub: "mp.Queue" = ctx.Queue()
    from_hub = [ctx.Queue() for _ in range(size)]
    p2p = [[ctx.Queue() for _ in range(size)] for _ in range(size)]
    result_queue: "mp.Queue" = ctx.Queue()

    processes = [
        ctx.Process(
            target=_worker,
            args=(program, rank, size, to_hub, from_hub, p2p, result_queue, args),
            name=f"mp-rank-{rank}",
        )
        for rank in range(size)
    ]
    for process in processes:
        process.start()

    results: List[Any] = [None] * size
    failures: List[str] = []
    try:
        for _ in range(size):
            rank, status, payload, _traffic = result_queue.get(timeout=timeout)
            if status == "ok":
                results[rank] = payload
            else:
                failures.append(f"rank {rank}: {payload}")
    except Exception as exc:  # queue.Empty or unpickling issues
        failures.append(f"collection failed: {exc!r}")
    finally:
        for process in processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                failures.append(f"{process.name} terminated (deadlock?)")
    if failures:
        raise RuntimeError("; ".join(failures))
    return results
