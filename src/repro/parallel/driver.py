"""End-to-end parallel K2+K3 driver.

``run_parallel_pipeline`` takes an edge list (typically a Kernel 1
output read back from disk), distributes it over ``num_ranks`` simulated
or real ranks, runs the distributed Kernel 2 and Kernel 3, and returns
the rank vector plus the measured communication traffic — ready to feed
the performance models.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.parallel.comm import Communicator
from repro.parallel.kernels import (
    exchange_edges_by_owner,
    parallel_kernel2,
    parallel_kernel3,
)
from repro.parallel.mp import run_rank_programs_mp
from repro.parallel.partition import RowPartition
from repro.parallel.sim import run_rank_programs
from repro.parallel.traffic import TrafficLog


@dataclass
class ParallelRunResult:
    """Output of a distributed K2+K3 run.

    Attributes
    ----------
    rank_vector:
        Final PageRank vector (identical across ranks).
    num_ranks:
        Group size used.
    traffic:
        Traffic summary (``total_bytes``, ``bytes_by_op``, …); only
        populated by the simulated executor, where the log is shared.
    kernel2_details:
        Rank-0 metrics from the distributed Kernel 2.
    local_nnz:
        Per-rank stored entries after filtering (load-balance signal).
    kernel2_seconds / kernel3_seconds:
        Slowest rank's wall-clock for the exchange+K2 phase and the K3
        phase.  Communication (allreduce/bcast) synchronises the ranks
        at each phase boundary, so the per-rank maximum approximates
        the phase's global wall-clock even though the fused program
        never barriers explicitly.
    """

    rank_vector: np.ndarray
    num_ranks: int
    traffic: Dict[str, object] = field(default_factory=dict)
    kernel2_details: Dict[str, object] = field(default_factory=dict)
    local_nnz: List[int] = field(default_factory=list)
    kernel2_seconds: float = 0.0
    kernel3_seconds: float = 0.0


def _rank_program(
    comm: Communicator,
    u: np.ndarray,
    v: np.ndarray,
    num_vertices: int,
    initial_rank: np.ndarray,
    damping: float,
    iterations: int,
    formula: str,
):
    """The per-rank program: exchange, Kernel 2, Kernel 3."""
    partition = RowPartition(num_vertices=num_vertices, size=comm.size)
    # Every rank starts from the rank-0 slice of the global edge list —
    # emulate a sharded read where rank r reads shard r.
    per_rank = len(u) // comm.size
    start = comm.rank * per_rank
    end = len(u) if comm.rank == comm.size - 1 else start + per_rank
    my_u, my_v = u[start:end], v[start:end]

    t0 = time.perf_counter()
    local_u, local_v = exchange_edges_by_owner(comm, partition, my_u, my_v)
    matrix, k2_details = parallel_kernel2(comm, partition, local_u, local_v)
    t1 = time.perf_counter()
    rank_vector = parallel_kernel3(
        comm,
        matrix,
        initial_rank,
        damping=damping,
        iterations=iterations,
        formula=formula,
    )
    t2 = time.perf_counter()
    return rank_vector, k2_details, matrix.nnz, t1 - t0, t2 - t1


def run_parallel_pipeline(
    u: np.ndarray,
    v: np.ndarray,
    num_vertices: int,
    *,
    num_ranks: int = 4,
    initial_rank: Optional[np.ndarray] = None,
    damping: float = 0.85,
    iterations: int = 20,
    formula: str = "appendix",
    executor: str = "sim",
) -> ParallelRunResult:
    """Run distributed Kernel 2 + Kernel 3 over an edge list.

    Parameters
    ----------
    u, v:
        Full edge list (0-based labels below ``num_vertices``).
    num_vertices:
        Vertex count ``N``.
    num_ranks:
        Group size.
    initial_rank:
        Kernel 3 start vector; uniform ``1/N`` when omitted.
    executor:
        ``"sim"`` (threads, traffic-accounted) or ``"mp"``
        (multiprocessing, true process parallelism; traffic is logged
        per process and not aggregated).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.generators import kronecker_edges
    >>> u, v = kronecker_edges(6, 4, seed=9)
    >>> out = run_parallel_pipeline(u, v, 64, num_ranks=3, iterations=5)
    >>> out.rank_vector.shape
    (64,)
    """
    if executor not in ("sim", "mp"):
        raise ValueError(f"executor must be 'sim' or 'mp', got {executor!r}")
    if initial_rank is None:
        initial_rank = np.full(num_vertices, 1.0 / num_vertices)

    args = (u, v, num_vertices, initial_rank, damping, iterations, formula)
    if executor == "sim":
        traffic = TrafficLog()
        outputs = run_rank_programs(_rank_program, num_ranks, *args, traffic=traffic)
        traffic_summary = traffic.summary()
    else:
        outputs = run_rank_programs_mp(_rank_program, num_ranks, *args)
        traffic_summary = {}

    rank_vectors = [out[0] for out in outputs]
    for other in rank_vectors[1:]:
        if not np.allclose(rank_vectors[0], other, rtol=1e-12, atol=1e-15):
            raise RuntimeError("ranks disagree on the final PageRank vector")
    return ParallelRunResult(
        rank_vector=rank_vectors[0],
        num_ranks=num_ranks,
        traffic=traffic_summary,
        kernel2_details=outputs[0][1],
        local_nnz=[out[2] for out in outputs],
        kernel2_seconds=max(out[3] for out in outputs),
        kernel3_seconds=max(out[4] for out in outputs),
    )
