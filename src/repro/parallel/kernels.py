"""Row-block parallel Kernels 2 and 3.

Faithful implementations of the paper's parallel decomposition notes:

* **Kernel 2** (Section IV.C): each rank holds the adjacency rows it
  owns; "the in-degree info will need to be aggregated and the selected
  vertices for elimination broadcast" — implemented as an ``allreduce``
  of the partial in-degree vectors followed by a ``bcast`` of the
  elimination mask from rank 0.  Out-degree and normalisation are
  rank-local (rows live on one rank).
* **Kernel 3** (Section IV.D): "each processor would compute its own
  value of r that would be summed across all processors and broadcast
  back" — an ``allreduce`` of the per-rank partial spread vectors each
  iteration, which the paper predicts dominates parallel runtime.

Results are numerically identical to the serial numpy backend: the same
dedup/filter/normalise arithmetic runs on disjoint row blocks, and
float64 summation order per column matches because each column
contribution within a rank is produced by the same ``bincount``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.parallel.comm import Communicator
from repro.parallel.partition import RowPartition

EdgePair = Tuple[np.ndarray, np.ndarray]


def parallel_kernel0(
    comm: Communicator,
    scale: int,
    edge_factor: int = 16,
    *,
    seed: int = 0,
    block_edges: int = 1 << 18,
) -> EdgePair:
    """Distributed Kernel 0: each rank generates its share of edges.

    Exploits the property the paper highlights — the Graph500 generator
    "can be run in parallel without requiring communication between
    processors": the edge stream is cut into blocks with independent
    derived seeds (see :func:`repro.generators.kronecker.kronecker_blocks`)
    and blocks are dealt round-robin to ranks.  The union over ranks is
    exactly the serial generator's multiset; no messages are exchanged.

    Returns this rank's ``(u, v)`` share.
    """
    from repro.generators.kronecker import kronecker_blocks

    parts_u = []
    parts_v = []
    for index, (u, v) in enumerate(
        kronecker_blocks(scale, edge_factor, block_edges=block_edges,
                         seed=seed)
    ):
        if index % comm.size == comm.rank:
            parts_u.append(u)
            parts_v.append(v)
    if parts_u:
        return np.concatenate(parts_u), np.concatenate(parts_v)
    return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))


def parallel_kernel1(
    comm: Communicator,
    partition: RowPartition,
    local_u: np.ndarray,
    local_v: np.ndarray,
    *,
    algorithm: str = "numpy",
) -> EdgePair:
    """Distributed Kernel 1: range-partitioned sample sort.

    The paper expects parallel Kernel 1 performance to be "dominated by
    a combination of the storage I/O time and the communication required
    to sort the data".  The communication part is one personalised
    all-to-all routing every edge to the rank owning its start-vertex
    range; a local in-memory sort then makes rank r's block globally
    ordered before rank r+1's (concatenating rank outputs yields the
    serial Kernel 1 result, up to tie order).

    Returns this rank's sorted block.
    """
    from repro.sort.inmemory import sort_edges

    routed_u, routed_v = exchange_edges_by_owner(comm, partition, local_u, local_v)
    return sort_edges(
        routed_u, routed_v,
        algorithm=algorithm,
        num_vertices=partition.num_vertices,
    )


def exchange_edges_by_owner(
    comm: Communicator,
    partition: RowPartition,
    u: np.ndarray,
    v: np.ndarray,
) -> EdgePair:
    """Shuffle edges so each rank holds exactly its own rows' edges.

    The parallel analogue of Kernel 1's output layout: after the
    exchange, rank ``r`` holds every edge whose start vertex lies in its
    row block.  Implemented as one personalised all-to-all.
    """
    owners = partition.owner_of(u)
    payloads = []
    for dest in range(comm.size):
        mask = owners == dest
        payloads.append((u[mask], v[mask]))
    received = comm.alltoall(payloads)
    local_u = np.concatenate([part[0] for part in received]) if received else u[:0]
    local_v = np.concatenate([part[1] for part in received]) if received else v[:0]
    return local_u.astype(np.int64), local_v.astype(np.int64)


@dataclass
class LocalMatrix:
    """One rank's row block of the normalised adjacency matrix (COO).

    Row indices are *global* vertex ids restricted to the rank's range;
    column indices span the full vertex space.
    """

    partition: RowPartition
    rank: int
    rows: np.ndarray
    cols: np.ndarray
    vals: np.ndarray

    @property
    def nnz(self) -> int:
        """Stored entries on this rank."""
        return len(self.vals)


def _collapse_duplicates(u: np.ndarray, v: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Row-major dedup with counts (same arithmetic as the numpy backend)."""
    if len(u) == 0:
        return u, v, np.empty(0, dtype=np.float64)
    order = np.lexsort((v, u))
    su = u[order]
    sv = v[order]
    new_pair = np.r_[True, (su[1:] != su[:-1]) | (sv[1:] != sv[:-1])]
    group_id = np.cumsum(new_pair) - 1
    counts = np.bincount(group_id).astype(np.float64)
    return su[new_pair], sv[new_pair], counts


def parallel_kernel2(
    comm: Communicator,
    partition: RowPartition,
    local_u: np.ndarray,
    local_v: np.ndarray,
) -> Tuple[LocalMatrix, dict]:
    """Distributed Kernel 2 over one rank's edges.

    Parameters
    ----------
    comm:
        The rank's communicator.
    partition:
        Row-block partition (must match the edge exchange).
    local_u, local_v:
        Edges owned by this rank (``partition.owner_of(local_u) == rank``).

    Returns
    -------
    (matrix, details):
        The rank's normalised row block and a metrics dict
        (pre-filter entry total is the *global* sum, as the contract
        requires).
    """
    n = partition.num_vertices

    # Local construction: dedup this rank's rows.
    rows, cols, vals = _collapse_duplicates(local_u, local_v)
    local_total = float(vals.sum())
    global_total = float(comm.allreduce(local_total, op="sum"))

    # In-degree aggregation across ranks (columns are distributed).
    local_din = np.bincount(cols, weights=vals, minlength=n)
    din = comm.allreduce(local_din, op="sum")

    # Rank 0 selects the eliminated vertices and broadcasts the mask.
    if comm.rank == 0:
        max_in = din.max() if n else 0.0
        if max_in > 0:
            eliminate = (din == max_in) | (din == 1)
        else:
            eliminate = np.zeros(n, dtype=bool)
    else:
        eliminate = None
    eliminate = comm.bcast(eliminate, root=0)

    keep = ~eliminate[cols]
    rows, cols, vals = rows[keep], cols[keep], vals[keep]

    # Out-degree and normalisation are local to the row block.
    lo, hi = partition.bounds(comm.rank)
    local_width = hi - lo
    dout = np.bincount(rows - lo, weights=vals, minlength=local_width)
    nonzero = dout > 0
    inv = np.ones(local_width, dtype=np.float64)
    inv[nonzero] = 1.0 / dout[nonzero]
    vals = vals * inv[rows - lo]

    matrix = LocalMatrix(partition, comm.rank, rows, cols, vals)
    details = {
        "pre_filter_entry_total": global_total,
        "eliminated_columns": int(eliminate.sum()),
        "local_nnz": matrix.nnz,
        "nonzero_local_rows": int(nonzero.sum()),
    }
    return matrix, details


def parallel_kernel3(
    comm: Communicator,
    matrix: LocalMatrix,
    initial_rank: np.ndarray,
    *,
    damping: float = 0.85,
    iterations: int = 20,
    formula: str = "appendix",
) -> np.ndarray:
    """Distributed Kernel 3: allreduce of partial spreads per iteration.

    Every rank keeps the full rank vector ``r`` (it is dense and small
    relative to the edges); each iteration computes the partial spread
    from the rank's rows and allreduces it — the communication pattern
    the paper predicts will dominate.

    Returns the full final rank vector (identical on every rank).
    """
    if formula not in ("appendix", "paper-body"):
        raise ValueError(f"formula must be 'appendix' or 'paper-body', got {formula!r}")
    n = matrix.partition.num_vertices
    r = np.asarray(initial_rank, dtype=np.float64)
    if r.shape != (n,):
        raise ValueError(f"initial_rank shape {r.shape} != ({n},)")
    c = damping
    rows, cols, vals = matrix.rows, matrix.cols, matrix.vals
    for _ in range(iterations):
        contributions = r[rows] * vals
        partial = np.bincount(cols, weights=contributions, minlength=n)
        spread = comm.allreduce(partial, op="sum")
        teleport = (1.0 - c) * r.sum()
        if formula == "appendix":
            teleport /= n
        r = c * spread + teleport
    return r
