"""In-process simulated communicator (threads).

``run_rank_programs(program, size)`` runs ``size`` copies of a rank
program concurrently in threads, giving each a :class:`SimCommunicator`
wired to a shared collective state.  Because everything lives in one
process the simulator is deterministic, debuggable, and byte-accurate
for traffic accounting — the measurement tool behind the paper's
"network-limited" kernel analysis.

Python's GIL means no actual compute parallelism; that is irrelevant
here — the simulator validates *correctness* of the decomposition and
*measures* communication, while :mod:`repro.parallel.mp` provides real
process parallelism.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.parallel.comm import Communicator, payload_nbytes
from repro.parallel.traffic import TrafficLog


class _GroupState:
    """Shared state for one communicator group."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.barrier = threading.Barrier(size)
        self.slots: List[Any] = [None] * size
        self.matrix: List[List[Any]] = [[None] * size for _ in range(size)]
        self.result: Any = None
        self.queues: Dict[Tuple[int, int], "queue.Queue[Any]"] = {
            (src, dst): queue.Queue() for src in range(size) for dst in range(size)
        }


class SimCommunicator(Communicator):
    """Thread-backed communicator for one rank of a simulated group."""

    def __init__(self, rank: int, size: int, state: _GroupState,
                 traffic: Optional[TrafficLog] = None) -> None:
        super().__init__(rank, size, traffic)
        self._state = state

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def send(self, dest: int, payload: Any) -> None:
        if not 0 <= dest < self.size:
            raise ValueError(f"dest {dest} outside [0, {self.size})")
        self.traffic.record("send", payload_nbytes(payload), 1, self.rank)
        self._state.queues[(self.rank, dest)].put(payload)

    def recv(self, source: int) -> Any:
        if not 0 <= source < self.size:
            raise ValueError(f"source {source} outside [0, {self.size})")
        return self._state.queues[(source, self.rank)].get()

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        self._state.barrier.wait()

    def bcast(self, payload: Any, root: int = 0) -> Any:
        state = self._state
        if self.rank == root:
            state.result = payload
            self._account_bcast(payload)
        state.barrier.wait()
        result = state.result
        state.barrier.wait()
        return result

    def allreduce(self, value: Any, op: str = "sum") -> Any:
        state = self._state
        state.slots[self.rank] = value
        state.barrier.wait()
        if self.rank == 0:
            state.result = self.reduce_values(list(state.slots), op)
            self._account_allreduce(value)
        state.barrier.wait()
        result = state.result
        state.barrier.wait()
        if isinstance(result, np.ndarray):
            return result.copy()
        return result

    def allgather(self, value: Any) -> List[Any]:
        state = self._state
        state.slots[self.rank] = value
        state.barrier.wait()
        gathered = list(state.slots)
        if self.rank == 0:
            self._account_allgather(gathered)
        state.barrier.wait()
        return gathered

    def alltoall(self, payloads: List[Any]) -> List[Any]:
        if len(payloads) != self.size:
            raise ValueError(
                f"alltoall needs {self.size} payloads, got {len(payloads)}"
            )
        state = self._state
        for dest, payload in enumerate(payloads):
            state.matrix[self.rank][dest] = payload
        state.barrier.wait()
        received = [state.matrix[src][self.rank] for src in range(self.size)]
        if self.rank == 0:
            off_diagonal = sum(
                payload_nbytes(state.matrix[s][d])
                for s in range(self.size)
                for d in range(self.size)
                if s != d
            )
            self._account_alltoall(off_diagonal)
        state.barrier.wait()
        return received


def run_rank_programs(
    program: Callable[..., Any],
    size: int,
    *args: Any,
    traffic: Optional[TrafficLog] = None,
    timeout: float = 120.0,
) -> List[Any]:
    """Run ``program(comm, *args)`` on ``size`` simulated ranks.

    Parameters
    ----------
    program:
        Rank program; receives a :class:`SimCommunicator` as its first
        argument.  All ranks get the same ``*args``.
    size:
        Number of ranks.
    traffic:
        Optional shared traffic log (a fresh one is created otherwise;
        retrieve it from any rank's communicator if needed).
    timeout:
        Per-thread join timeout; a deadlocked program raises rather
        than hanging the test suite.

    Returns
    -------
    list
        Rank-ordered return values.

    Raises
    ------
    RuntimeError
        If any rank raised (the first error is re-raised as the cause)
        or the join timed out (likely collective mismatch/deadlock).
    """
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    state = _GroupState(size)
    shared_traffic = traffic if traffic is not None else TrafficLog()
    results: List[Any] = [None] * size
    errors: List[Tuple[int, BaseException]] = []

    def runner(rank: int) -> None:
        comm = SimCommunicator(rank, size, state, shared_traffic)
        try:
            results[rank] = program(comm, *args)
        except BaseException as exc:  # noqa: BLE001 - propagated below
            errors.append((rank, exc))
            state.barrier.abort()

    threads = [
        threading.Thread(target=runner, args=(rank,), name=f"sim-rank-{rank}")
        for rank in range(size)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout)
    alive = [t.name for t in threads if t.is_alive()]
    if alive:
        state.barrier.abort()
        raise RuntimeError(f"simulated ranks deadlocked or timed out: {alive}")
    if errors:
        rank, exc = errors[0]
        if isinstance(exc, threading.BrokenBarrierError):
            others = [r for r, e in errors if not isinstance(e, threading.BrokenBarrierError)]
            raise RuntimeError(
                f"rank {rank} hit a broken barrier (other failing ranks: {others})"
            ) from exc
        raise RuntimeError(f"rank {rank} failed: {exc}") from exc
    return results
