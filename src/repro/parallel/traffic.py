"""Communication traffic accounting.

Every collective or point-to-point operation on a communicator logs a
:class:`TrafficRecord`.  The log is the bridge between the parallel
implementation and the performance models: the paper claims Kernel 3's
parallel form is network-dominated, and the traffic log supplies the
measured byte counts that the alpha-beta model turns into predicted
time.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class TrafficRecord:
    """One communication event.

    Attributes
    ----------
    op:
        Operation name (``send``, ``bcast``, ``allreduce`` …).
    bytes_moved:
        Total bytes crossing rank boundaries for this event, modelled
        with the naive algorithm (e.g. an allreduce among ``p`` ranks of
        an ``n``-byte payload moves ``2*(p-1)*n`` bytes).
    messages:
        Number of point-to-point messages the naive algorithm uses.
    rank:
        The rank that logged the event (collectives are logged once, by
        rank 0, to avoid double counting).
    """

    op: str
    bytes_moved: int
    messages: int
    rank: int


class TrafficLog:
    """Thread-safe accumulator of :class:`TrafficRecord` events."""

    def __init__(self) -> None:
        self._records: List[TrafficRecord] = []
        self._lock = threading.Lock()

    def record(self, op: str, bytes_moved: int, messages: int, rank: int) -> None:
        """Append one event."""
        with self._lock:
            self._records.append(
                TrafficRecord(op=op, bytes_moved=int(bytes_moved),
                              messages=int(messages), rank=rank)
            )

    @property
    def records(self) -> List[TrafficRecord]:
        """Copy of all events so far."""
        with self._lock:
            return list(self._records)

    @property
    def total_bytes(self) -> int:
        """Total bytes across all events."""
        with self._lock:
            return sum(r.bytes_moved for r in self._records)

    @property
    def total_messages(self) -> int:
        """Total messages across all events."""
        with self._lock:
            return sum(r.messages for r in self._records)

    def bytes_by_op(self) -> Dict[str, int]:
        """Bytes aggregated per operation name."""
        out: Dict[str, int] = {}
        with self._lock:
            for record in self._records:
                out[record.op] = out.get(record.op, 0) + record.bytes_moved
        return out

    def clear(self) -> None:
        """Reset the log."""
        with self._lock:
            self._records.clear()

    def summary(self) -> Dict[str, object]:
        """JSON-safe rollup used by results and benchmarks."""
        return {
            "total_bytes": self.total_bytes,
            "total_messages": self.total_messages,
            "bytes_by_op": self.bytes_by_op(),
        }
