"""CSR sparse matrix for GraphBLAS-lite.

``Matrix`` stores compressed sparse rows (``row_ptr``, ``col_idx``,
``values``) over float64 and implements exactly the operations Kernel 2
and Kernel 3 need, in GraphBLAS vocabulary:

* ``build`` — COO triples with duplicate accumulation
  (``sparse(u, v, 1, N, N)`` semantics);
* ``reduce_rows`` / ``reduce_columns`` — out-degree / in-degree;
* ``clear_columns`` — the super-node / leaf elimination;
* ``scale_rows`` — row normalisation by out-degree;
* ``mxv`` / ``vxm`` (in :mod:`repro.grb.ops`) — the PageRank product.

Construction is a counting sort on row indices (the CSR row-pointer
build), all O(nnz + n); no scipy involved.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro._util import check_nonneg_int, check_positive_int, check_same_length
from repro.grb.semiring import Monoid, PLUS


class Matrix:
    """An ``nrows x ncols`` CSR sparse matrix of float64 values.

    Instances are immutable from the public API's point of view: every
    operation returns a new matrix (cheap — arrays are shared when
    unchanged).  Explicit zeros are permitted and reported by ``nvals``
    until :meth:`prune` removes them.
    """

    __slots__ = ("nrows", "ncols", "row_ptr", "col_idx", "values")

    def __init__(
        self,
        nrows: int,
        ncols: int,
        row_ptr: np.ndarray,
        col_idx: np.ndarray,
        values: np.ndarray,
    ) -> None:
        self.nrows = check_nonneg_int("nrows", nrows)
        self.ncols = check_nonneg_int("ncols", ncols)
        self.row_ptr = np.asarray(row_ptr, dtype=np.int64)
        self.col_idx = np.asarray(col_idx, dtype=np.int64)
        self.values = np.asarray(values, dtype=np.float64)
        if len(self.row_ptr) != nrows + 1:
            raise ValueError(
                f"row_ptr length {len(self.row_ptr)} != nrows + 1 = {nrows + 1}"
            )
        if self.row_ptr[0] != 0 or self.row_ptr[-1] != len(self.col_idx):
            raise ValueError("row_ptr must start at 0 and end at nnz")
        check_same_length("col_idx", self.col_idx, "values", self.values)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        values: Optional[np.ndarray] = None,
        *,
        nrows: int,
        ncols: int,
        dup: Monoid = PLUS,
    ) -> "Matrix":
        """Build from COO triples, accumulating duplicates with ``dup``.

        Parameters
        ----------
        rows, cols:
            Integer coordinate arrays.
        values:
            Entry values; defaults to all-ones (edge counting).
        nrows, ncols:
            Matrix shape.
        dup:
            Monoid combining duplicate coordinates (default ``plus`` —
            Matlab ``sparse`` semantics, required by Kernel 2).

        Examples
        --------
        >>> import numpy as np
        >>> m = Matrix.build(np.array([0, 0]), np.array([1, 1]), nrows=2, ncols=2)
        >>> m.nvals, m.reduce_scalar()
        (1, 2.0)
        """
        check_positive_int("nrows", nrows)
        check_positive_int("ncols", ncols)
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        check_same_length("rows", rows, "cols", cols)
        if values is None:
            values = np.ones(len(rows), dtype=np.float64)
        else:
            values = np.asarray(values, dtype=np.float64)
            check_same_length("rows", rows, "values", values)
        if len(rows):
            if rows.min() < 0 or rows.max() >= nrows:
                raise ValueError(
                    f"row indices outside [0, {nrows}): "
                    f"min={rows.min()}, max={rows.max()}"
                )
            if cols.min() < 0 or cols.max() >= ncols:
                raise ValueError(
                    f"col indices outside [0, {ncols}): "
                    f"min={cols.min()}, max={cols.max()}"
                )

        # Sort by (row, col) so duplicates become adjacent, then collapse.
        order = np.lexsort((cols, rows))
        r = rows[order]
        c = cols[order]
        w = values[order]
        if len(r):
            new_entry = np.r_[True, (r[1:] != r[:-1]) | (c[1:] != c[:-1])]
            group_id = np.cumsum(new_entry) - 1
            num_groups = int(group_id[-1]) + 1
            ur = r[new_entry]
            uc = c[new_entry]
            if dup.ufunc is np.add:
                uw = np.bincount(group_id, weights=w, minlength=num_groups)
            else:
                uw = np.full(num_groups, dup.identity, dtype=np.float64)
                dup.ufunc.at(uw, group_id, w)
        else:
            ur = r
            uc = c
            uw = w.astype(np.float64)

        row_counts = np.bincount(ur, minlength=nrows)
        row_ptr = np.zeros(nrows + 1, dtype=np.int64)
        np.cumsum(row_counts, out=row_ptr[1:])
        return cls(nrows, ncols, row_ptr, uc, uw)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "Matrix":
        """Build from a dense 2-D array, keeping non-zero entries."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError(f"expected 2-D array, got shape {dense.shape}")
        rows, cols = np.nonzero(dense)
        return cls.build(
            rows.astype(np.int64),
            cols.astype(np.int64),
            dense[rows, cols],
            nrows=dense.shape[0],
            ncols=dense.shape[1],
        )

    @classmethod
    def empty(cls, nrows: int, ncols: int) -> "Matrix":
        """All-zero matrix with no stored entries."""
        check_positive_int("nrows", nrows)
        check_positive_int("ncols", ncols)
        return cls(
            nrows,
            ncols,
            np.zeros(nrows + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        """(nrows, ncols)."""
        return (self.nrows, self.ncols)

    @property
    def nvals(self) -> int:
        """Number of stored entries (including explicit zeros)."""
        return len(self.values)

    def row_degrees(self) -> np.ndarray:
        """Stored-entry count per row (out-degree when values are counts)."""
        return np.diff(self.row_ptr)

    def to_dense(self) -> np.ndarray:
        """Materialise as a dense array (small matrices / tests only)."""
        dense = np.zeros((self.nrows, self.ncols), dtype=np.float64)
        row_of = np.repeat(np.arange(self.nrows), self.row_degrees())
        np.add.at(dense, (row_of, self.col_idx), self.values)
        return dense

    def extract_row(self, row: int) -> Tuple[np.ndarray, np.ndarray]:
        """Column indices and values of one row (views, no copy)."""
        if not 0 <= row < self.nrows:
            raise IndexError(f"row {row} outside [0, {self.nrows})")
        lo, hi = self.row_ptr[row], self.row_ptr[row + 1]
        return self.col_idx[lo:hi], self.values[lo:hi]

    def isclose(self, other: "Matrix", *, rtol: float = 1e-9, atol: float = 1e-12) -> bool:
        """Structural + numeric equality up to tolerance (after pruning)."""
        a = self.prune()
        b = other.prune()
        return (
            a.shape == b.shape
            and np.array_equal(a.row_ptr, b.row_ptr)
            and np.array_equal(a.col_idx, b.col_idx)
            and bool(np.allclose(a.values, b.values, rtol=rtol, atol=atol))
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Matrix(shape={self.shape}, nvals={self.nvals})"

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def reduce_rows(self, monoid: Monoid = PLUS) -> np.ndarray:
        """Per-row reduction (``sum(A, 2)`` when monoid is plus)."""
        return monoid.segment_reduce(self.values, self.row_ptr)

    def reduce_columns(self, monoid: Monoid = PLUS) -> np.ndarray:
        """Per-column reduction (``sum(A, 1)`` when monoid is plus)."""
        if monoid.ufunc is np.add:
            return np.bincount(
                self.col_idx, weights=self.values, minlength=self.ncols
            )
        out = np.full(self.ncols, monoid.identity, dtype=np.float64)
        monoid.ufunc.at(out, self.col_idx, self.values)
        return out

    def reduce_scalar(self, monoid: Monoid = PLUS) -> float:
        """Whole-matrix reduction (``sum(A(:))``)."""
        return monoid.reduce(self.values)

    # ------------------------------------------------------------------
    # Structural transforms
    # ------------------------------------------------------------------
    def clear_columns(self, column_mask: np.ndarray) -> "Matrix":
        """Zero every entry whose column is flagged in ``column_mask``.

        Implements Kernel 2's ``A(:, mask) = 0``.  Entries are removed
        (not left as explicit zeros).

        Parameters
        ----------
        column_mask:
            Boolean array of length ``ncols``; True columns are cleared.
        """
        column_mask = np.asarray(column_mask, dtype=bool)
        if len(column_mask) != self.ncols:
            raise ValueError(
                f"column_mask length {len(column_mask)} != ncols {self.ncols}"
            )
        keep = ~column_mask[self.col_idx]
        return self._filter_entries(keep)

    def prune(self) -> "Matrix":
        """Drop stored entries whose value is exactly zero."""
        keep = self.values != 0.0
        if keep.all():
            return self
        return self._filter_entries(keep)

    def _filter_entries(self, keep: np.ndarray) -> "Matrix":
        """New matrix retaining entries where ``keep`` is True."""
        row_of = np.repeat(np.arange(self.nrows), self.row_degrees())
        new_rows = row_of[keep]
        new_cols = self.col_idx[keep]
        new_vals = self.values[keep]
        counts = np.bincount(new_rows, minlength=self.nrows)
        row_ptr = np.zeros(self.nrows + 1, dtype=np.int64)
        np.cumsum(counts, out=row_ptr[1:])
        return Matrix(self.nrows, self.ncols, row_ptr, new_cols, new_vals)

    def scale_rows(self, factors: np.ndarray) -> "Matrix":
        """Multiply each row ``i`` by ``factors[i]``.

        Kernel 2's normalisation is ``scale_rows(1 / dout)`` restricted
        to rows with ``dout > 0``; pass factor 1.0 for untouched rows.
        """
        factors = np.asarray(factors, dtype=np.float64)
        if len(factors) != self.nrows:
            raise ValueError(
                f"factors length {len(factors)} != nrows {self.nrows}"
            )
        expanded = np.repeat(factors, self.row_degrees())
        return Matrix(
            self.nrows, self.ncols, self.row_ptr, self.col_idx,
            self.values * expanded,
        )

    def apply(self, fn) -> "Matrix":
        """Apply an element-wise function to the stored values."""
        new_vals = np.asarray(fn(self.values.copy()), dtype=np.float64)
        if new_vals.shape != self.values.shape:
            raise ValueError("apply must preserve the number of entries")
        return Matrix(self.nrows, self.ncols, self.row_ptr, self.col_idx, new_vals)

    def select(self, predicate) -> "Matrix":
        """Keep entries where ``predicate(values) -> bool mask`` holds."""
        keep = np.asarray(predicate(self.values), dtype=bool)
        if keep.shape != self.values.shape:
            raise ValueError("select predicate must return a mask per entry")
        return self._filter_entries(keep)

    def transpose(self) -> "Matrix":
        """Return ``A.T`` as a new CSR matrix (counting-sort transpose)."""
        row_of = np.repeat(np.arange(self.nrows), self.row_degrees())
        return Matrix.build(
            self.col_idx, row_of, self.values,
            nrows=self.ncols, ncols=self.nrows,
        )

    def to_coo(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """COO view: (rows, cols, values), row-major ordered."""
        row_of = np.repeat(np.arange(self.nrows), self.row_degrees())
        return row_of, self.col_idx.copy(), self.values.copy()
