"""Matrix-matrix products and element-wise matrix operations.

Extends GraphBLAS-lite beyond what the pipeline strictly needs, enabling
the graph algorithms in :mod:`repro.grb.algorithms` (BFS, triangle
counting — operations from the paper's Figure 2 taxonomy such as
"extend search/hop" and "bulk analyze graphs").

``mxm`` is implemented as a row-wise expansion: for each row ``i`` of
``A``, the rows of ``B`` indexed by ``A``'s column indices are combined
— the classical CSR SpGEMM formulated with numpy segment primitives.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.grb.matrix import Matrix
from repro.grb.semiring import PLUS_TIMES, Semiring


def mxm(a: Matrix, b: Matrix, semiring: Semiring = PLUS_TIMES) -> Matrix:
    """Sparse matrix-matrix product ``C = A ⊕.⊗ B``.

    ``C[i, k] = add.reduce_j( multiply(A[i, j], B[j, k]) )``

    Parameters
    ----------
    a, b:
        Conforming matrices (``a.ncols == b.nrows``).
    semiring:
        Semiring; the additive monoid combines duplicate contributions.

    Examples
    --------
    >>> import numpy as np
    >>> p = Matrix.from_dense(np.array([[0.0, 1.0], [1.0, 0.0]]))
    >>> mxm(p, p).to_dense().tolist()     # permutation squared = identity
    [[1.0, 0.0], [0.0, 1.0]]

    Notes
    -----
    Materialises one intermediate COO triple per multiplied pair before
    reduction; fine for the benchmark-scale graphs this library targets
    (the classic Gustavson row-merge would reduce peak memory, not
    asymptotic work).
    """
    if a.ncols != b.nrows:
        raise ValueError(
            f"inner dimensions differ: a is {a.shape}, b is {b.shape}"
        )
    if a.nvals == 0 or b.nvals == 0:
        return Matrix.empty(a.nrows, b.ncols)

    # For each stored entry (i, j, x) of A, expand against row j of B.
    a_rows = np.repeat(np.arange(a.nrows), a.row_degrees())
    b_degrees = np.diff(b.row_ptr)
    expand_counts = b_degrees[a.col_idx]

    out_rows = np.repeat(a_rows, expand_counts)
    out_a_vals = np.repeat(a.values, expand_counts)

    # Gather the B entries for each expansion: offsets into B's arrays.
    starts = b.row_ptr[a.col_idx]
    total = int(expand_counts.sum())
    if total == 0:
        return Matrix.empty(a.nrows, b.ncols)
    # Index vector: for entry e with count c_e, emit starts[e] .. +c_e.
    entry_of = np.repeat(np.arange(len(starts)), expand_counts)
    first_index = np.zeros(len(starts) + 1, dtype=np.int64)
    np.cumsum(expand_counts, out=first_index[1:])
    within = np.arange(total, dtype=np.int64) - first_index[entry_of]
    b_indices = starts[entry_of] + within

    out_cols = b.col_idx[b_indices]
    contributions = semiring.multiply(out_a_vals, b.values[b_indices])
    return Matrix.build(
        out_rows, out_cols, contributions,
        nrows=a.nrows, ncols=b.ncols, dup=semiring.add,
    )


def ewise_mult(a: Matrix, b: Matrix, op: Optional[Callable] = None) -> Matrix:
    """Element-wise (Hadamard) product on the *intersection* of patterns.

    Entries present in only one operand vanish (GraphBLAS eWiseMult
    semantics).  ``op`` defaults to multiplication.
    """
    _check_same_shape(a, b)
    op = op if op is not None else np.multiply
    dense_keys_a, vals_a = _entry_keys(a)
    dense_keys_b, vals_b = _entry_keys(b)
    common, ia, ib = np.intersect1d(
        dense_keys_a, dense_keys_b, assume_unique=True, return_indices=True
    )
    if len(common) == 0:
        return Matrix.empty(a.nrows, a.ncols)
    rows = (common // a.ncols).astype(np.int64)
    cols = (common % a.ncols).astype(np.int64)
    values = op(vals_a[ia], vals_b[ib])
    return Matrix.build(rows, cols, values, nrows=a.nrows, ncols=a.ncols)


def ewise_add(a: Matrix, b: Matrix, op: Optional[Callable] = None) -> Matrix:
    """Element-wise combine on the *union* of patterns.

    Entries present in one operand pass through unchanged; shared
    entries are combined with ``op`` (default addition) — GraphBLAS
    eWiseAdd semantics.
    """
    _check_same_shape(a, b)
    if op is None or op is np.add:
        rows_a, cols_a, vals_a = a.to_coo()
        rows_b, cols_b, vals_b = b.to_coo()
        return Matrix.build(
            np.concatenate([rows_a, rows_b]),
            np.concatenate([cols_a, cols_b]),
            np.concatenate([vals_a, vals_b]),
            nrows=a.nrows, ncols=a.ncols,
        )
    keys_a, vals_a = _entry_keys(a)
    keys_b, vals_b = _entry_keys(b)
    common, ia, ib = np.intersect1d(
        keys_a, keys_b, assume_unique=True, return_indices=True
    )
    only_a = np.setdiff1d(np.arange(len(keys_a)), ia, assume_unique=True)
    only_b = np.setdiff1d(np.arange(len(keys_b)), ib, assume_unique=True)
    keys = np.concatenate([common, keys_a[only_a], keys_b[only_b]])
    values = np.concatenate([
        op(vals_a[ia], vals_b[ib]), vals_a[only_a], vals_b[only_b],
    ])
    rows = (keys // a.ncols).astype(np.int64)
    cols = (keys % a.ncols).astype(np.int64)
    return Matrix.build(rows, cols, values, nrows=a.nrows, ncols=a.ncols)


def apply_mask(a: Matrix, mask: Matrix, *, complement: bool = False) -> Matrix:
    """Keep only entries of ``a`` where ``mask`` has a stored entry.

    With ``complement`` the kept set is inverted — entries of ``a``
    *not* covered by the mask survive.  Mask values are ignored
    (structural mask, the common GraphBLAS case).
    """
    _check_same_shape(a, mask)
    keys_a, _ = _entry_keys(a)
    keys_m, _ = _entry_keys(mask)
    member = np.isin(keys_a, keys_m, assume_unique=True)
    keep = ~member if complement else member
    rows_a, cols_a, vals_a = a.to_coo()
    return Matrix.build(
        rows_a[keep], cols_a[keep], vals_a[keep],
        nrows=a.nrows, ncols=a.ncols,
    )


def _entry_keys(m: Matrix):
    """Linearised (row * ncols + col) keys of the stored entries.

    CSR order makes the keys strictly increasing, hence unique/sorted.
    """
    rows, cols, vals = m.to_coo()
    return rows * m.ncols + cols, vals


def _check_same_shape(a: Matrix, b: Matrix) -> None:
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
