"""Monoids and semirings for GraphBLAS-lite.

A *monoid* is an associative binary operator with an identity; a
*semiring* pairs an additive monoid with a multiplicative binary op.
Matrix-vector products are defined over a semiring:
``y[i] = add.reduce_j( mult(A[i, j], x[j]) )``.

Only float64 carriers are supported (GraphBLAS type polymorphism is out
of scope); boolean semantics (``lor_land``) are expressed over 0.0/1.0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np


@dataclass(frozen=True)
class Monoid:
    """An associative reduction operator with identity.

    Attributes
    ----------
    name:
        Registry name, e.g. ``"plus"``.
    ufunc:
        The numpy binary ufunc implementing the operation; must be
        associative and commutative for segment reductions to be valid.
    identity:
        Neutral element (the value of an empty reduction).
    """

    name: str
    ufunc: np.ufunc
    identity: float

    def reduce(self, values: np.ndarray) -> float:
        """Reduce a 1-D array to a scalar; empty input gives identity."""
        if values.size == 0:
            return float(self.identity)
        return float(self.ufunc.reduce(values))

    def segment_reduce(self, values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
        """Reduce consecutive segments ``values[offsets[i]:offsets[i+1]]``.

        Parameters
        ----------
        values:
            Data array.
        offsets:
            Length ``n+1`` non-decreasing segment boundaries, with
            ``offsets[0] == 0`` and ``offsets[-1] == len(values)``.

        Returns
        -------
        Length-``n`` array; empty segments yield ``identity``.

        Notes
        -----
        ``np.ufunc.reduceat`` returns ``values[i]`` (not identity) for
        empty segments and mis-handles a trailing empty segment, so this
        wrapper post-fills empty segments explicitly.
        """
        n = len(offsets) - 1
        out = np.full(n, self.identity, dtype=np.float64)
        if n == 0 or values.size == 0:
            return out
        starts = offsets[:-1]
        nonempty = offsets[1:] > starts
        if not nonempty.any():
            return out
        safe_starts = np.minimum(starts[nonempty], values.size - 1)
        out[nonempty] = self.ufunc.reduceat(values, safe_starts)
        return out


@dataclass(frozen=True)
class Semiring:
    """An (add-monoid, multiply-op) pair defining ``mxv``/``vxm``.

    Attributes
    ----------
    name:
        Registry name, e.g. ``"plus_times"``.
    add:
        Additive monoid.
    multiply:
        Multiplicative numpy binary ufunc.
    """

    name: str
    add: Monoid
    multiply: np.ufunc


PLUS = Monoid("plus", np.add, 0.0)
MIN = Monoid("min", np.minimum, np.inf)
MAX = Monoid("max", np.maximum, -np.inf)
LOR = Monoid("lor", np.logical_or, 0.0)

PLUS_TIMES = Semiring("plus_times", PLUS, np.multiply)
MIN_PLUS = Semiring("min_plus", MIN, np.add)
MAX_TIMES = Semiring("max_times", MAX, np.multiply)
LOR_LAND = Semiring("lor_land", LOR, np.logical_and)

_REGISTRY: Dict[str, Semiring] = {
    s.name: s for s in (PLUS_TIMES, MIN_PLUS, MAX_TIMES, LOR_LAND)
}


def available_semirings() -> Dict[str, Semiring]:
    """Copy of the semiring registry keyed by name."""
    return dict(_REGISTRY)


def get_semiring(name: str) -> Semiring:
    """Look up a semiring by name.

    Raises
    ------
    KeyError
        With the list of valid names when ``name`` is unknown.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        valid = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown semiring {name!r}; available: {valid}") from None
