"""Dense vector type for GraphBLAS-lite.

The pipeline's vectors (rank vector ``r``, degree vectors) are dense, so
``Vector`` wraps a contiguous float64 numpy array with monoid reductions
and element-wise operations.  A sparse vector type is unnecessary for
the benchmark and deliberately omitted.
"""

from __future__ import annotations

from typing import Callable, Union

import numpy as np

from repro._util import check_positive_int
from repro.grb.semiring import Monoid, PLUS

ArrayLike = Union[np.ndarray, list, tuple]


class Vector:
    """A dense float64 vector of fixed size.

    Examples
    --------
    >>> x = Vector.from_dense([1.0, 2.0, 3.0])
    >>> x.reduce()
    6.0
    >>> bool((x.apply(lambda a: a * 2).to_dense() == [2.0, 4.0, 6.0]).all())
    True
    """

    __slots__ = ("_data",)

    def __init__(self, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 1:
            raise ValueError(f"Vector requires 1-D data, got shape {data.shape}")
        self._data = data

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, size: int) -> "Vector":
        """All-zeros vector of ``size`` entries."""
        check_positive_int("size", size)
        return cls(np.zeros(size, dtype=np.float64))

    @classmethod
    def full(cls, size: int, value: float) -> "Vector":
        """Constant vector."""
        check_positive_int("size", size)
        return cls(np.full(size, float(value), dtype=np.float64))

    @classmethod
    def from_dense(cls, values: ArrayLike) -> "Vector":
        """Copy a dense array-like into a new vector."""
        return cls(np.array(values, dtype=np.float64))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of entries."""
        return len(self._data)

    def to_dense(self) -> np.ndarray:
        """Copy out the underlying dense array."""
        return self._data.copy()

    @property
    def values(self) -> np.ndarray:
        """Read-only view of the underlying array (no copy)."""
        view = self._data.view()
        view.flags.writeable = False
        return view

    def __len__(self) -> int:
        return self.size

    def __getitem__(self, index: int) -> float:
        return float(self._data[index])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Vector(size={self.size})"

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def reduce(self, monoid: Monoid = PLUS) -> float:
        """Reduce all entries with ``monoid`` (default: sum)."""
        return monoid.reduce(self._data)

    def norm1(self) -> float:
        """1-norm (sum of absolute values) — used to normalise ``r``."""
        return float(np.abs(self._data).sum())

    def apply(self, fn: Callable[[np.ndarray], np.ndarray]) -> "Vector":
        """Return a new vector with ``fn`` applied to the dense data."""
        out = np.asarray(fn(self._data.copy()), dtype=np.float64)
        if out.shape != self._data.shape:
            raise ValueError(
                f"apply result shape {out.shape} != vector shape {self._data.shape}"
            )
        return Vector(out)

    def scale(self, scalar: float) -> "Vector":
        """Multiply every entry by ``scalar``."""
        return Vector(self._data * float(scalar))

    def ewise_add(self, other: "Vector") -> "Vector":
        """Element-wise sum with another vector of equal size."""
        self._check_size(other)
        return Vector(self._data + other._data)

    def ewise_mult(self, other: "Vector") -> "Vector":
        """Element-wise (Hadamard) product."""
        self._check_size(other)
        return Vector(self._data * other._data)

    def isclose(self, other: "Vector", *, rtol: float = 1e-9, atol: float = 1e-12) -> bool:
        """Element-wise approximate equality."""
        self._check_size(other)
        return bool(np.allclose(self._data, other._data, rtol=rtol, atol=atol))

    def _check_size(self, other: "Vector") -> None:
        if self.size != other.size:
            raise ValueError(f"size mismatch: {self.size} != {other.size}")
