"""GraphBLAS-lite: a small sparse linear-algebra substrate.

The paper (Sections I and IV): "The linear algebraic nature of PageRank
makes it well suited to being implemented using the GraphBLAS standard."
This package provides the subset of GraphBLAS needed to express the
whole pipeline — and enough generality (semirings, monoids, element-wise
ops, select) to write other graph algorithms against it:

* :class:`Matrix` — CSR sparse matrix with duplicate-accumulating
  ``build`` (exactly Matlab's ``sparse(u,v,1,N,N)`` semantics);
* :class:`Vector` — dense vector with monoid reductions;
* :mod:`repro.grb.semiring` — ``plus_times``, ``min_plus``,
  ``max_times``, ``lor_land`` semirings over float64;
* ``mxv`` / ``vxm`` — matrix-vector products under any registered
  semiring, with a fast path for ``plus_times``.

The implementation is pure numpy (bincount / reduceat segment kernels);
it is deliberately independent of ``scipy.sparse`` so the scipy backend
and the graphblas backend are genuinely distinct implementations.
"""

from __future__ import annotations

from repro.grb.semiring import (
    LOR_LAND,
    MAX_TIMES,
    MIN_PLUS,
    PLUS_TIMES,
    Monoid,
    Semiring,
    available_semirings,
    get_semiring,
)
from repro.grb.vector import Vector
from repro.grb.matrix import Matrix
from repro.grb.ops import mxv, vxm
from repro.grb.mxm import apply_mask, ewise_add, ewise_mult, mxm
from repro.grb.algorithms import (
    bfs_levels,
    connected_components,
    pagerank_grb,
    triangle_count,
)

__all__ = [
    "LOR_LAND",
    "MAX_TIMES",
    "MIN_PLUS",
    "Matrix",
    "Monoid",
    "PLUS_TIMES",
    "Semiring",
    "Vector",
    "apply_mask",
    "available_semirings",
    "bfs_levels",
    "connected_components",
    "ewise_add",
    "ewise_mult",
    "get_semiring",
    "mxm",
    "mxv",
    "pagerank_grb",
    "triangle_count",
    "vxm",
]
