"""Graph algorithms written against GraphBLAS-lite.

The paper motivates GraphBLAS as the natural vocabulary for the
pipeline's linear-algebraic kernels; these algorithms demonstrate the
substrate carries the *other* operations of the paper's Figure 2
("extend search/hop", "construct graph relationships", "bulk analyze
graphs") with the same primitives:

* :func:`bfs_levels` — level-synchronous BFS via masked ``vxm`` over the
  boolean semiring;
* :func:`triangle_count` — Burkhardt's ``sum(A ⊗ (A ⊕.⊗ A)) / 6``
  formulation with ``mxm`` + element-wise mask;
* :func:`connected_components` — label propagation with ``min``
  reductions (weakly connected, edges treated as undirected);
* :func:`pagerank_grb` — the Kernel 3 update expressed purely in
  GraphBLAS ops (used to cross-check the graphblas backend).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.grb.matrix import Matrix
from repro.grb.mxm import ewise_mult, mxm
from repro.grb.ops import vxm
from repro.grb.semiring import LOR_LAND, MIN, PLUS_TIMES
from repro.grb.vector import Vector


def _boolean(adjacency: Matrix) -> Matrix:
    """Structural (0/1-valued) copy of a matrix."""
    return adjacency.apply(lambda vals: (vals != 0).astype(np.float64))


def bfs_levels(adjacency: Matrix, source: int) -> np.ndarray:
    """Breadth-first search levels from ``source``.

    Parameters
    ----------
    adjacency:
        Square matrix; an entry (i, j) is a directed edge i -> j.
    source:
        Start vertex.

    Returns
    -------
    Length-``n`` int64 array: hops from the source (0 for the source,
    -1 for unreachable vertices).

    Examples
    --------
    >>> import numpy as np
    >>> path = Matrix.from_dense(np.array([[0., 1., 0.], [0., 0., 1.],
    ...                                    [0., 0., 0.]]))
    >>> bfs_levels(path, 0).tolist()
    [0, 1, 2]
    """
    n = adjacency.nrows
    if adjacency.nrows != adjacency.ncols:
        raise ValueError(f"adjacency must be square, got {adjacency.shape}")
    if not 0 <= source < n:
        raise ValueError(f"source {source} outside [0, {n})")
    boolean = _boolean(adjacency)
    levels = np.full(n, -1, dtype=np.int64)
    levels[source] = 0
    frontier = np.zeros(n)
    frontier[source] = 1.0
    for depth in range(1, n + 1):
        nxt = vxm(Vector(frontier), boolean, LOR_LAND).to_dense()
        # Mask out already-visited vertices (the complement mask).
        nxt[levels >= 0] = 0.0
        if not nxt.any():
            break
        levels[nxt > 0] = depth
        frontier = nxt
    return levels


def triangle_count(adjacency: Matrix) -> int:
    """Number of triangles in the *undirected* view of the graph.

    Uses ``sum(A .* (A @ A)) / 6`` over the symmetrised, de-looped
    boolean adjacency — each triangle is counted once per ordered vertex
    pair of the 3! orderings.

    Examples
    --------
    >>> import numpy as np
    >>> tri = Matrix.from_dense(np.array([[0., 1., 1.], [1., 0., 1.],
    ...                                   [1., 1., 0.]]))
    >>> triangle_count(tri)
    1
    """
    if adjacency.nrows != adjacency.ncols:
        raise ValueError(f"adjacency must be square, got {adjacency.shape}")
    from repro.grb.mxm import ewise_add

    sym = ewise_add(adjacency, adjacency.transpose())
    sym = _boolean(sym).select(lambda vals: vals > 0)
    # Remove self-loops: they create degenerate "triangles".
    rows, cols, vals = sym.to_coo()
    off_diag = rows != cols
    sym = Matrix.build(rows[off_diag], cols[off_diag], vals[off_diag],
                       nrows=sym.nrows, ncols=sym.ncols)
    paths2 = mxm(sym, sym, PLUS_TIMES)
    closed = ewise_mult(sym, paths2)
    return int(round(closed.reduce_scalar() / 6.0))


def connected_components(adjacency: Matrix, *, max_iterations: int = 0) -> np.ndarray:
    """Weakly connected component labels by min-label propagation.

    Each vertex starts with its own id; every round each vertex adopts
    the minimum label among itself and its (undirected) neighbours,
    until no label changes.

    Returns
    -------
    Length-``n`` int64 array; vertices share a value iff they share a
    weakly connected component.  Labels are the minimum vertex id of
    the component.
    """
    n = adjacency.nrows
    if adjacency.nrows != adjacency.ncols:
        raise ValueError(f"adjacency must be square, got {adjacency.shape}")
    from repro.grb.mxm import ewise_add

    sym = ewise_add(adjacency, adjacency.transpose())
    sym = _boolean(sym)
    labels = np.arange(n, dtype=np.float64)
    limit = max_iterations if max_iterations > 0 else n
    for _ in range(limit):
        # Candidate per vertex: min over in-neighbours of their label.
        # vxm under (min, *) with boolean matrix: candidate[j] =
        # min_i labels[i] where edge (i, j) exists.
        spread = np.full(n, np.inf)
        rows, cols, _ = sym.to_coo()
        if len(rows):
            np.minimum.at(spread, cols, labels[rows])
        nxt = np.minimum(labels, spread)
        if np.array_equal(nxt, labels):
            break
        labels = nxt
    return labels.astype(np.int64)


def pagerank_grb(
    adjacency: Matrix,
    *,
    damping: float = 0.85,
    iterations: int = 20,
    initial_rank: np.ndarray = None,
) -> Tuple[np.ndarray, float]:
    """Kernel 3 expressed purely in GraphBLAS operations.

    ``adjacency`` must already be row-normalised (Kernel 2 output).
    Returns ``(rank, final_mass)``.
    """
    n = adjacency.nrows
    if initial_rank is None:
        r = Vector.full(n, 1.0 / n)
    else:
        r = Vector(np.asarray(initial_rank, dtype=np.float64))
        r = r.scale(1.0 / r.norm1())
    for _ in range(iterations):
        spread = vxm(r, adjacency, PLUS_TIMES)
        teleport = (1.0 - damping) * r.reduce() / n
        r = spread.scale(damping).ewise_add(Vector.full(n, teleport))
    rank = r.to_dense()
    return rank, float(rank.sum())
