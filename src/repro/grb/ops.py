"""Matrix-vector products under a semiring.

``vxm`` (row-vector times matrix) is the PageRank workhorse:
``r' = r @ A`` distributes each rank share along out-edges.  ``mxv`` is
the column-vector form.  Both have an O(nnz) fast path for the
``plus_times`` semiring (bincount / segment-sum) and a generic path
using ``ufunc.at`` scatter-reduction for any other monoid.
"""

from __future__ import annotations

import numpy as np

from repro.grb.matrix import Matrix
from repro.grb.semiring import PLUS_TIMES, Semiring
from repro.grb.vector import Vector


def vxm(x: Vector, a: Matrix, semiring: Semiring = PLUS_TIMES) -> Vector:
    """Row-vector-matrix product ``y = x ⊕.⊗ A``.

    ``y[j] = add.reduce_i( multiply(x[i], A[i, j]) )``

    Parameters
    ----------
    x:
        Vector of size ``a.nrows``.
    a:
        Matrix.
    semiring:
        Semiring; defaults to arithmetic ``plus_times``.

    Examples
    --------
    >>> import numpy as np
    >>> a = Matrix.from_dense(np.array([[0.0, 1.0], [1.0, 0.0]]))
    >>> vxm(Vector.from_dense([2.0, 3.0]), a).to_dense().tolist()
    [3.0, 2.0]
    """
    if x.size != a.nrows:
        raise ValueError(f"vector size {x.size} != matrix nrows {a.nrows}")
    xv = x.values
    row_of = np.repeat(np.arange(a.nrows), np.diff(a.row_ptr))
    contributions = semiring.multiply(xv[row_of], a.values)
    if semiring.add.ufunc is np.add:
        out = np.bincount(
            a.col_idx, weights=contributions, minlength=a.ncols
        ).astype(np.float64)
    else:
        out = np.full(a.ncols, semiring.add.identity, dtype=np.float64)
        semiring.add.ufunc.at(out, a.col_idx, contributions)
    return Vector(out)


def mxv(a: Matrix, x: Vector, semiring: Semiring = PLUS_TIMES) -> Vector:
    """Matrix-column-vector product ``y = A ⊕.⊗ x``.

    ``y[i] = add.reduce_j( multiply(A[i, j], x[j]) )``

    Examples
    --------
    >>> import numpy as np
    >>> a = Matrix.from_dense(np.array([[0.0, 2.0], [0.0, 0.0]]))
    >>> mxv(a, Vector.from_dense([5.0, 7.0])).to_dense().tolist()
    [14.0, 0.0]
    """
    if x.size != a.ncols:
        raise ValueError(f"vector size {x.size} != matrix ncols {a.ncols}")
    xv = x.values
    contributions = semiring.multiply(a.values, xv[a.col_idx])
    out = semiring.add.segment_reduce(contributions, a.row_ptr)
    return Vector(out)
