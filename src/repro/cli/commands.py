"""CLI subcommand implementations: thin clients over :mod:`repro.api`.

Every benchmark-executing command builds a declarative
:class:`~repro.api.spec.RunSpec`/:class:`~repro.api.spec.SweepSpec`
(possibly from a ``--scenario`` name) and hands it to the API layer —
no command constructs a ``Pipeline`` or plumbs config fields into the
executors directly.  Output discipline: requested payloads (``--json``,
tables, reports) go to **stdout**; progress and diagnostics go to
**stderr**; exit codes are 0 success, 1 benchmark-level failure
(contract violation, validation mismatch), 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict

from repro.api import (
    RunSpec,
    SweepSpec,
    execute_spec,
    execute_sweep,
    get_scenario,
    BUILTIN_SCENARIOS,
)
from repro.backends.registry import available_backends
from repro.core.config import KernelName, PipelineConfig
from repro.generators.registry import available_generators
from repro.harness.experiments import available_experiments, run_experiment
from repro.harness.records import save_records
from repro.harness.tables import render_table


def _diag(message: str) -> None:
    """Print a diagnostic line (never the requested payload) to stderr."""
    print(message, file=sys.stderr, flush=True)


def _print_kernel_report(result) -> None:
    rows = []
    for kernel in result.kernels:
        cached = kernel.details.get("artifact_cache") == "hit"
        rows.append(
            [
                kernel.kernel.value + (" (cache hit)" if cached else ""),
                f"{kernel.seconds:.4f}",
                # A cache read's speed is not the kernel's throughput.
                "-" if cached else f"{kernel.edges_per_second:,.0f}",
                "yes" if kernel.officially_timed else "no (fig. 4 only)",
            ]
        )
    print(
        render_table(
            ["kernel", "seconds", "edges/s", "officially timed"],
            rows,
            title=(
                f"scale={result.config.scale} backend={result.config.backend} "
                f"N={result.config.num_vertices:,} M={result.config.num_edges:,}"
            ),
        )
    )
    if result.kernels:
        overlap = result.kernels[-1].details.get("overlap_saved_s")
        if overlap is not None:
            # Async strategy: kernel seconds above are busy time; the
            # overlap's saving shows up in the end-to-end wall-clock.
            wall = result.kernels[-1].details.get("pipeline_wall_seconds")
            lanes = result.kernels[-1].details.get("lane_busy_seconds") or {}
            lane_note = "".join(
                f"; codec on {kind} lanes ({busy:.4f}s busy)"
                for kind, busy in sorted(lanes.items())
            )
            shm_saved = result.kernels[-1].details.get("shm_bytes_saved")
            shm_note = (
                f"; shm saved {_human_bytes(int(shm_saved))} of pipe traffic"
                if shm_saved else ""
            )
            print(
                f"async overlap: wall {wall:.4f}s for "
                f"{result.total_seconds:.4f}s of kernel busy time "
                f"(overlap saved {overlap:.4f}s){lane_note}{shm_note}"
            )


#: ``run`` argument → :class:`RunSpec` field (identity unless renamed).
_RUN_SPEC_ARGS = {
    "scale": "scale",
    "edge_factor": "edge_factor",
    "seed": "seed",
    "num_files": "num_files",
    "backend": "backend",
    "generator": "generator",
    "damping": "damping",
    "iterations": "iterations",
    "file_format": "file_format",
    "sort_algorithm": "sort_algorithm",
    "external_sort": "external_sort",
    "formula": "formula",
    "execution": "execution",
    "ranks": "parallel_ranks",
    "parallel_executor": "parallel_executor",
    "batch_edges": "streaming_batch_edges",
    "async_lanes": "async_lanes",
    "shard_plane": "shard_plane",
    "cache_mmap": "cache_mmap",
    "data_dir": "data_dir",
    "repeats": "repeats",
}


def _validation_mode(
    args: argparse.Namespace, base: str = "contracts"
) -> str:
    """Compose the two independent flag pairs over a base mode.

    ``--validate``/``--no-validate`` toggle the eigenvector check and
    ``--no-verify`` drops the contracts — each flag moves only its own
    axis, so ``--no-verify`` on a scenario with full validation yields
    ``validate-only``, not ``off``.
    """
    validate = base in ("full", "validate-only")
    contracts = base in ("full", "contracts")
    if args.validate:
        validate = True
    if args.no_validate:
        validate = False
    if args.no_verify:
        contracts = False
    if validate:
        return "full" if contracts else "validate-only"
    return "contracts" if contracts else "off"


def _explicit_run_flags(args: argparse.Namespace) -> Dict[str, object]:
    """Spec fields whose flags the user actually set.

    A flag counts as explicit when its token appears on the original
    command line (``--repeats 1`` overrides a scenario even though 1
    equals the parser default) *or* its parsed value differs from the
    parser default (the fallback for library callers handing in a bare
    namespace, and for exotic spellings the token scan misses, e.g.
    argparse prefix abbreviations).
    """
    argv = getattr(args, "_argv", None) or []
    present = {
        arg
        for arg in _RUN_SPEC_ARGS
        for opt in ("--" + arg.replace("_", "-"),)
        if any(tok == opt or tok.startswith(opt + "=") for tok in argv)
    }
    parser: argparse.ArgumentParser = args.run_parser
    return {
        spec_field: getattr(args, arg)
        for arg, spec_field in _RUN_SPEC_ARGS.items()
        if arg in present or getattr(args, arg) != parser.get_default(arg)
    }


def run_spec_from_args(args: argparse.Namespace) -> RunSpec:
    """Build the job spec the ``run`` command submits.

    Without ``--scenario``, every flag maps straight onto a spec field.
    With it, the scenario provides the spec and any flag present on the
    command line overrides the matching field (so ``repro run
    --scenario paper-s18 --seed 9`` reseeds the scenario without
    disturbing its shape).
    """
    # --trace takes a *path* but the spec field is a bool; the path
    # itself stays CLI-side (cmd_run writes the export there).
    want_trace = getattr(args, "trace", None) is not None
    if args.scenario is None:
        overrides: Dict[str, object] = {
            spec_field: getattr(args, arg)
            for arg, spec_field in _RUN_SPEC_ARGS.items()
        }
        overrides["validation"] = _validation_mode(args)
        if want_trace:
            overrides["trace"] = True
        return RunSpec(**overrides)  # type: ignore[arg-type]
    spec = get_scenario(args.scenario, **_explicit_run_flags(args))
    if args.validate or args.no_validate or args.no_verify:
        spec = spec.with_overrides(
            validation=_validation_mode(args, base=spec.validation)
        )
    if want_trace:
        spec = spec.with_overrides(trace=True)
    return spec


def cmd_run(args: argparse.Namespace) -> int:
    """One pipeline job, declaratively specified, run via the API."""
    spec = run_spec_from_args(args)
    if spec.repeats > 1 and spec.cache_policy == "shared" \
            and not args.cache_dir:
        # cache-warm-style workloads are pointless without a cache root.
        _diag(
            "note: this spec repeats with cache_policy='shared' but no "
            "--cache-dir is set; repeats will regenerate everything "
            "instead of recording cache hits"
        )
    outcome = execute_spec(
        spec,
        cache_dir=Path(args.cache_dir) if args.cache_dir else None,
    )
    result = outcome.result
    trace_path = getattr(args, "trace", None)
    if trace_path and result.trace is not None:
        from repro.core.trace import chrome_trace

        Path(trace_path).write_text(
            json.dumps(chrome_trace(result.trace), sort_keys=True)
        )
        _diag(f"trace written to {trace_path} (open in Perfetto / "
              f"chrome://tracing)")
    failed = result.validation is not None and not result.validation["passed"]
    if args.json:
        doc = result.to_dict()
        if spec.repeats > 1:
            # The per-kernel best across repeats (what the sweep
            # harness reports); `kernels` above is the last repeat.
            from dataclasses import asdict

            doc["best_records"] = [asdict(r) for r in outcome.records]
        print(json.dumps(doc, indent=2, sort_keys=True))
        if failed:
            _diag(
                "error: validation failed "
                f"(l1={result.validation['l1_distance']:.4f}, "
                f"cosine={result.validation['cosine_similarity']:.6f})"
            )
        return 1 if failed else 0
    _print_kernel_report(result)
    if spec.repeats > 1:
        rows = [
            [r.kernel, f"{r.seconds:.4f}",
             "-" if r.cached else f"{r.edges_per_second:,.0f}"]
            for r in outcome.records
        ]
        print(render_table(
            ["kernel", "seconds", "edges/s"], rows,
            title=f"best of {spec.repeats} repeats",
        ))
    if result.validation is not None:
        status = "PASS" if result.validation["passed"] else "FAIL"
        print(
            f"validation: {status} "
            f"(l1={result.validation['l1_distance']:.4f}, "
            f"cosine={result.validation['cosine_similarity']:.6f})"
        )
    return 1 if failed else 0


def sweep_spec_from_args(args: argparse.Namespace) -> SweepSpec:
    """Build the grid spec behind ``sweep``/``report``.

    Measurement sweeps run with contracts off (their extra file reads
    would perturb I/O caching between kernels) — matching the harness's
    historical default.
    """
    base = RunSpec(
        scale=args.scales[0],
        seed=args.seed,
        execution=args.execution,
        validation="off",
        cache_policy="shared" if args.cache_dir else "off",
    )
    return SweepSpec(
        base=base,
        scales=tuple(args.scales),
        backends=tuple(args.backends),
        repeats=args.repeats,
    )


def _sweep_progress(config, repeat) -> None:
    _diag(f"... backend={config.backend} scale={config.scale} repeat={repeat}")


def cmd_sweep(args: argparse.Namespace) -> int:
    """Backend x scale sweep with a summary table."""
    records = execute_sweep(
        sweep_spec_from_args(args),
        cache_dir=Path(args.cache_dir) if args.cache_dir else None,
        progress=_sweep_progress,
    )
    rows = [
        [r.backend, r.scale, r.kernel, f"{r.seconds:.4f}", f"{r.edges_per_second:,.0f}"]
        for r in records
    ]
    print(render_table(["backend", "scale", "kernel", "seconds", "edges/s"], rows))
    if args.output:
        save_records(records, Path(args.output))
        print(f"records written to {args.output}")
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    """Regenerate one of the paper's figures."""
    output = run_experiment(
        args.experiment_id,
        scales=args.scales,
        backends=args.backends,
        repeats=args.repeats,
        execution=args.execution,
        cache_dir=Path(args.cache_dir) if args.cache_dir else None,
    )
    print(output.text)
    if args.output:
        save_records(output.records, Path(args.output))
        print(f"records written to {args.output}")
    return 0


def cmd_tables(args: argparse.Namespace) -> int:
    """Regenerate one of the paper's tables."""
    output = run_experiment(args.experiment_id, scales=args.scales)
    print(output.text)
    return 0


def cmd_parallel(args: argparse.Namespace) -> int:
    """Distributed K2+K3 with traffic accounting and model comparison."""
    from repro.generators import kronecker_edges
    from repro.parallel import run_parallel_pipeline
    from repro.perfmodel import LAPTOP_CLASS, predict_parallel_kernel3

    num_vertices = 1 << args.scale
    u, v = kronecker_edges(args.scale, args.edge_factor, seed=args.seed)
    result = run_parallel_pipeline(
        u,
        v,
        num_vertices,
        num_ranks=args.ranks,
        iterations=args.iterations,
        executor=args.executor,
    )
    print(
        f"parallel K2+K3: scale={args.scale} ranks={args.ranks} "
        f"executor={args.executor}"
    )
    print(f"  rank vector sum: {result.rank_vector.sum():.6f}")
    print(f"  per-rank nnz (load balance): {result.local_nnz}")
    if result.traffic:
        print(f"  traffic: {result.traffic['total_bytes']:,} bytes "
              f"in {result.traffic['total_messages']:,} messages")
        for op, nbytes in sorted(result.traffic["bytes_by_op"].items()):
            print(f"    {op:10s} {nbytes:,} bytes")
    prediction = predict_parallel_kernel3(
        LAPTOP_CLASS, len(u), num_vertices, args.ranks,
        iterations=args.iterations,
    )
    print(
        f"  alpha-beta model (laptop-class): k3 ~{prediction.edges_per_second:,.0f}"
        f" edges/s; dominant term: "
        f"{max(prediction.terms, key=prediction.terms.get)}"
    )
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    """Run the pipeline and the Section IV.D eigenvector check."""
    spec = RunSpec(
        scale=args.scale, seed=args.seed, backend=args.backend,
        validation="full",
    )
    result = execute_spec(spec).result
    report = result.validation
    assert report is not None
    status = "PASS" if report["passed"] else "FAIL"
    print(
        f"{status}: l1={report['l1_distance']:.6f} "
        f"cosine={report['cosine_similarity']:.8f} "
        f"eigenvalue={report['eigenvalue']:.6f} "
        f"tolerance={report['tolerance']}"
    )
    return 0 if report["passed"] else 1


def cmd_golden(args: argparse.Namespace) -> int:
    """Produce or verify a golden correctness record."""
    from repro.harness.goldens import GoldenRecord, golden_for_config

    config = PipelineConfig(scale=args.scale, seed=args.seed,
                            backend=args.backend)
    record = golden_for_config(config)
    if args.save:
        record.save(Path(args.save))
        print(f"golden record written to {args.save}")
    if args.check:
        reference = GoldenRecord.load(Path(args.check))
        differences = reference.differences(record)
        if differences:
            print("GOLDEN MISMATCH:")
            for diff in differences:
                print(f"  {diff}")
            return 1
        print("golden record matches")
        return 0
    if not args.save:
        print(record.to_json())
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Run sweeps and emit a paper-vs-measured markdown report."""
    from repro.harness.report import build_report

    records = execute_sweep(
        sweep_spec_from_args(args),
        cache_dir=Path(args.cache_dir) if args.cache_dir else None,
        progress=_sweep_progress,
    )
    document = build_report(records)
    if args.output:
        Path(args.output).write_text(document, encoding="utf-8")
        print(f"report written to {args.output}")
    else:
        print(document)
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    """Calibrate the hardware model and compare against measurements."""
    from repro.perfmodel.compare import extrapolation_study, render_comparison

    study = extrapolation_study(
        calibration_scale=args.calibration_scale,
        predicted_scales=args.scales,
        backend=args.backend,
        seed=args.seed,
    )
    print(f"calibrated on scale {study.calibration_scale} "
          f"({args.backend} backend); model rates:")
    hw = study.hardware
    print(f"  memory bandwidth : {hw.mem_bw_bytes_per_s:,.0f} B/s")
    print(f"  storage write    : {hw.storage_write_bytes_per_s:,.0f} B/s")
    print(f"  storage read     : {hw.storage_read_bytes_per_s:,.0f} B/s")
    print(f"  scalar op rate   : {hw.scalar_ops_per_s:,.0f} ops/s")
    for scale, comparisons in sorted(study.comparisons.items()):
        print(f"\nscale {scale} (N={1 << scale:,}, M={16 << scale:,}):")
        print(render_comparison(comparisons))
    print(f"\nworst error factor: {study.worst_error():.2f}x")
    return 0


def cmd_scaling(args: argparse.Namespace) -> int:
    """Run a size- or strong-scaling study and print the table."""
    from repro.harness.scaling import (
        render_size_scaling,
        render_strong_scaling,
        size_scaling,
        strong_scaling,
    )

    if args.mode == "size":
        kernel = KernelName(args.kernel)
        study = size_scaling(
            args.scales, backend=args.backend, kernel=kernel, seed=args.seed
        )
        print(render_size_scaling(study))
        return 0
    study = strong_scaling(
        args.ranks, scale=args.scale, iterations=args.iterations,
        seed=args.seed,
    )
    print(render_strong_scaling(study))
    print("note: simulated ranks share one GIL; the load-bearing columns "
          "are allreduce bytes and the per-rank balance, not wall-clock "
          "speedup")
    return 0


def _human_bytes(num_bytes: float) -> str:
    """Render a byte count with a binary-unit suffix."""
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:,.0f}{unit}" if unit == "B" else f"{value:,.1f}{unit}"
        value /= 1024
    return f"{value:,.1f}GiB"  # pragma: no cover - unreachable


def cmd_cache_ls(args: argparse.Namespace) -> int:
    """List artifact-cache entries, least recently used first."""
    import datetime

    from repro.core.artifacts import ArtifactCache

    cache = ArtifactCache(Path(args.cache_dir))
    entries = cache.entries()
    rows = [
        [
            entry.kind,
            entry.key,
            _human_bytes(entry.num_bytes),
            datetime.datetime.fromtimestamp(entry.mtime).strftime(
                "%Y-%m-%d %H:%M:%S"
            ),
        ]
        for entry in entries
    ]
    print(render_table(["kind", "key", "size", "last used"], rows,
                       title=f"artifact cache at {args.cache_dir}"))
    total = sum(entry.num_bytes for entry in entries)
    print(f"{len(entries)} entries, {_human_bytes(total)} total")
    return 0


def cmd_cache_rm(args: argparse.Namespace) -> int:
    """Remove cache entries by key (optionally limited to one kind)."""
    from repro.core.artifacts import ArtifactCache

    cache = ArtifactCache(Path(args.cache_dir))
    removed = cache.remove(args.key, kind=args.kind)
    for entry in removed:
        print(f"removed {entry.kind}/{entry.key} ({_human_bytes(entry.num_bytes)})")
    if not removed:
        # remove() skips entries whose shared lock a reader holds; an
        # entry dir still on disk now means "in use", not "absent".
        kinds = [args.kind] if args.kind else list(ArtifactCache.KINDS)
        if any(cache.entry_dir(kind, args.key).exists() for kind in kinds):
            print(
                f"error: cache entry {args.key!r} is in use by a "
                f"concurrent reader; retry once its run finishes",
                file=sys.stderr,
            )
        else:
            print(f"error: no cache entry with key {args.key!r}",
                  file=sys.stderr)
        return 1
    return 0


def cmd_cache_prune(args: argparse.Namespace) -> int:
    """Evict least-recently-used entries until the cache fits the budget."""
    from repro.core.artifacts import ArtifactCache

    cache = ArtifactCache(Path(args.cache_dir))
    evicted = cache.prune(args.max_bytes)
    freed = sum(entry.num_bytes for entry in evicted)
    for entry in evicted:
        print(f"evicted {entry.kind}/{entry.key} ({_human_bytes(entry.num_bytes)})")
    print(
        f"evicted {len(evicted)} entries, freed {_human_bytes(freed)}; "
        f"cache now {_human_bytes(cache.total_bytes())} "
        f"(budget {_human_bytes(args.max_bytes)})"
    )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the benchmark job service's HTTP front end until ^C."""
    from repro.service.httpd import run_server

    worker_listen = None
    if args.listen_workers is not None:
        host, _, port = str(args.listen_workers).rpartition(":")
        if not host:  # a bare port listens on loopback
            host = "127.0.0.1"
        try:
            worker_listen = (host, int(port))
        except ValueError:
            raise ValueError(
                f"--listen-workers takes HOST:PORT, got "
                f"{args.listen_workers!r}"
            )
    return run_server(
        host=args.host,
        port=args.port,
        workers=args.workers,
        worker_kind=args.worker_kind,
        cache_dir=Path(args.cache_dir) if args.cache_dir else None,
        store_path=Path(args.store) if args.store else None,
        compact=args.compact,
        worker_listen=worker_listen,
        heartbeat_timeout=args.heartbeat_timeout,
    )


def cmd_worker(args: argparse.Namespace) -> int:
    """Run a remote worker agent until the service shuts it down."""
    from repro.service.agent import run_worker

    return run_worker(
        args.connect,
        cache_dir=Path(args.cache_dir) if args.cache_dir else None,
        worker_id=args.worker_id,
        heartbeat_interval=args.heartbeat_interval,
        reconnect_delay=args.reconnect_delay,
        max_reconnects=args.max_reconnects,
        artifact_sync=not args.no_artifact_sync,
        job_delay=args.job_delay,
    )


def cmd_info(args: argparse.Namespace) -> int:
    """List registered backends, generators, scenarios, experiments."""
    del args
    print("backends:")
    for name in available_backends():
        print(f"  {name}")
    print("generators:")
    for name, description in available_generators().items():
        print(f"  {name:12s} {description}")
    print("scenarios:")
    for name, description in BUILTIN_SCENARIOS.describe():
        print(f"  {name:18s} {description}")
    print("experiments:")
    for name, description in available_experiments().items():
        print(f"  {name:8s} {description}")
    return 0
