"""Command-line interface (``repro-pipeline``).

Subcommands::

    repro-pipeline run       # one pipeline run, per-kernel report
    repro-pipeline sweep     # (backend x scale) measurement grid
    repro-pipeline figures   # regenerate paper figures 4-7
    repro-pipeline tables    # regenerate paper tables I / II
    repro-pipeline parallel  # distributed K2+K3 demo with traffic + model
    repro-pipeline validate  # eigenvector cross-check of Kernel 3
    repro-pipeline info      # list backends / generators / experiments
"""

from __future__ import annotations

from repro.cli.main import build_parser, main

__all__ = ["build_parser", "main"]
