"""``repro-pipeline`` entry point: argument parsing and dispatch."""

from __future__ import annotations

import argparse
import math
import sys
from typing import List, Optional

from repro.cli import commands
from repro.core.artifacts import ArtifactCache
from repro.core.config import (
    ASYNC_LANES,
    DEFAULT_PARALLEL_RANKS,
    DEFAULT_STREAMING_BATCH_EDGES,
    EXECUTION_MODES,
    KernelName,
    PARALLEL_EXECUTORS,
    SHARD_PLANES,
)
from repro.core.exceptions import ExecutorCapabilityError, PipelineError
from repro.service.pool import WORKER_KINDS


def _csv_ints(text: str) -> List[int]:
    try:
        return [int(part) for part in text.split(",") if part.strip()]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"expected comma-separated ints: {exc}")


def _csv_strs(text: str) -> List[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


_SIZE_SUFFIXES = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30, "t": 1 << 40}


def _size_bytes(text: str) -> int:
    """Parse a byte budget like ``500M``, ``2G``, ``1048576``, or ``0``."""
    raw = text.strip().lower().rstrip("b")
    multiplier = 1
    if raw and raw[-1] in _SIZE_SUFFIXES:
        multiplier = _SIZE_SUFFIXES[raw[-1]]
        raw = raw[:-1]
    try:
        value = float(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a size like 500M, 2G, or a byte count; got {text!r}"
        )
    if not math.isfinite(value) or value < 0:
        raise argparse.ArgumentTypeError(
            f"size must be a finite value >= 0, got {text!r}"
        )
    return int(value * multiplier)


def build_parser() -> argparse.ArgumentParser:
    """Construct the full argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-pipeline",
        description=(
            "PageRank Pipeline Benchmark (Dreher et al. 2016) — run the "
            "four-kernel pipeline, sweeps, and the paper's tables/figures."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the pipeline once and report")
    run.add_argument("--scenario", default=None,
                     help="named workload from the scenario registry "
                          "(see `repro-pipeline info`); other flags act "
                          "as overrides when they differ from their "
                          "defaults")
    run.add_argument("--scale", type=int, default=12, help="Graph500 scale S")
    run.add_argument("--edge-factor", type=int, default=16)
    run.add_argument("--backend", default="scipy")
    run.add_argument("--generator", default="kronecker")
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--num-files", type=int, default=1,
                     help="shard count for kernel 0/1 output files")
    run.add_argument("--iterations", type=int, default=20)
    run.add_argument("--damping", type=float, default=0.85)
    run.add_argument("--sort-algorithm", default="numpy",
                     choices=["numpy", "counting", "radix"])
    run.add_argument("--external-sort", action="store_true",
                     help="force the out-of-core sort path in kernel 1")
    run.add_argument("--file-format", default="tsv",
                     choices=["tsv", "npy", "tsv.gz"])
    run.add_argument("--formula", default="appendix",
                     choices=["appendix", "paper-body"],
                     help="kernel 3 update form (paper-body documents "
                          "the body text's typo)")
    run.add_argument("--data-dir", default=None,
                     help="keep kernel files here instead of a temp dir")
    run.add_argument("--execution", default="serial",
                     choices=list(EXECUTION_MODES),
                     help="execution strategy: serial (in-memory), "
                          "streaming (out-of-core kernel 2), parallel "
                          "(sharded kernels 2+3), or async (overlap stage "
                          "I/O with compute; per-kernel times report busy "
                          "time and the recovered wall-clock is reported "
                          "as overlap_saved_s)")
    run.add_argument("--cache-dir", default=None,
                     help="reuse kernel 0/1 outputs from this artifact "
                          "cache (created on first use); the cached "
                          "kernel files then live under the cache, not "
                          "--data-dir")
    run.add_argument("--ranks", type=int, default=DEFAULT_PARALLEL_RANKS,
                     help="rank count for --execution parallel")
    run.add_argument("--parallel-executor", default="sim",
                     choices=list(PARALLEL_EXECUTORS),
                     help="communicator for --execution parallel: sim "
                          "(threads, traffic-accounted) or mp (real "
                          "processes)")
    run.add_argument("--batch-edges", type=int,
                     default=DEFAULT_STREAMING_BATCH_EDGES,
                     help="pass-1 batch size for --execution streaming")
    run.add_argument("--async-lanes", default="thread",
                     choices=list(ASYNC_LANES),
                     help="for --execution async: run the GIL-bound TSV "
                          "codec tasks on scheduler threads (thread) or "
                          "offload them to lane worker processes "
                          "(process); results are bit-identical, K3 "
                          "details report per-lane busy time")
    run.add_argument("--shard-plane", default="pipe",
                     choices=list(SHARD_PLANES),
                     help="for --async-lanes process: hand edge arrays "
                          "to lane workers over their pipes (pipe) or "
                          "through shared-memory ShardBuffer segments "
                          "(shm, zero-copy; falls back to pipe with a "
                          "warning where /dev/shm is unavailable); "
                          "results are bit-identical, K3 details report "
                          "handoff_mode and shm_bytes_saved")
    run.add_argument("--cache-mmap", action="store_true",
                     help="serve npy shard payloads from --cache-dir as "
                          "read-only memory-mapped views so concurrent "
                          "runs share one page-cache copy")
    run.add_argument("--repeats", type=int, default=1,
                     help="repeat the run; per-kernel records keep the "
                          "best time")
    run.add_argument("--validate", action="store_true",
                     help="run the eigenvector cross-check after kernel 3")
    run.add_argument("--no-validate", action="store_true",
                     help="skip the eigenvector cross-check even if "
                          "--validate was given (overrides it)")
    run.add_argument("--no-verify", action="store_true",
                     help="skip the inter-kernel contract checks "
                          "(benchmark loops only; validation is separate, "
                          "see --no-validate)")
    run.add_argument("--trace", metavar="PATH", default=None,
                     help="record a span trace of the run (executor "
                          "stages, scheduler tasks, lane ops, shm "
                          "segments) and write it here as a Chrome/"
                          "Perfetto trace.json")
    run.add_argument("--json", action="store_true",
                     help="emit the JSON result on stdout (diagnostics "
                          "go to stderr)")
    # The subparser rides along so cmd_run can tell explicit flags from
    # defaults when composing them over a --scenario.
    run.set_defaults(func=commands.cmd_run, run_parser=run)

    sweep = sub.add_parser("sweep", help="run a (backend x scale) grid")
    sweep.add_argument("--scales", type=_csv_ints, default=[10, 12, 14])
    sweep.add_argument("--backends", type=_csv_strs,
                       default=["python", "numpy", "scipy", "dataframe", "graphblas"])
    sweep.add_argument("--repeats", type=int, default=1)
    sweep.add_argument("--seed", type=int, default=1)
    sweep.add_argument("--execution", default="serial",
                       choices=list(EXECUTION_MODES))
    sweep.add_argument("--cache-dir", default=None,
                       help="reuse kernel 0/1 outputs across cells/repeats")
    sweep.add_argument("--output", default=None,
                       help="write records to this .json/.csv file")
    sweep.set_defaults(func=commands.cmd_sweep)

    figures = sub.add_parser("figures", help="regenerate paper figures 4-7")
    figures.add_argument("--id", dest="experiment_id", default="fig7",
                         choices=["fig4", "fig5", "fig6", "fig7"])
    figures.add_argument("--scales", type=_csv_ints, default=None)
    figures.add_argument("--backends", type=_csv_strs, default=None)
    figures.add_argument("--repeats", type=int, default=1)
    figures.add_argument("--execution", default="serial",
                         choices=list(EXECUTION_MODES))
    figures.add_argument("--cache-dir", default=None,
                         help="reuse kernel 0/1 outputs across cells/repeats")
    figures.add_argument("--output", default=None,
                         help="also write records to this .json/.csv file")
    figures.set_defaults(func=commands.cmd_figures)

    tables = sub.add_parser("tables", help="regenerate paper tables I / II")
    tables.add_argument("--id", dest="experiment_id", default="table2",
                        choices=["table1", "table2"])
    tables.add_argument("--scales", type=_csv_ints, default=None)
    tables.set_defaults(func=commands.cmd_tables)

    parallel = sub.add_parser(
        "parallel", help="distributed K2+K3 demo (simulated ranks)"
    )
    parallel.add_argument("--scale", type=int, default=12)
    parallel.add_argument("--edge-factor", type=int, default=16)
    parallel.add_argument("--ranks", type=int, default=4)
    parallel.add_argument("--iterations", type=int, default=20)
    parallel.add_argument("--seed", type=int, default=1)
    parallel.add_argument("--executor", default="sim", choices=["sim", "mp"])
    parallel.set_defaults(func=commands.cmd_parallel)

    validate = sub.add_parser(
        "validate", help="eigenvector cross-check of a pipeline run"
    )
    validate.add_argument("--scale", type=int, default=10)
    validate.add_argument("--backend", default="scipy")
    validate.add_argument("--seed", type=int, default=1)
    validate.add_argument("--tolerance", type=float, default=0.05)
    validate.set_defaults(func=commands.cmd_validate)

    golden = sub.add_parser(
        "golden",
        help="produce or check a golden correctness record "
             "(the paper's 'what outputs should be recorded?' answer)",
    )
    golden.add_argument("--scale", type=int, default=8)
    golden.add_argument("--backend", default="scipy")
    golden.add_argument("--seed", type=int, default=1)
    golden.add_argument("--save", default=None,
                        help="write the record to this JSON file")
    golden.add_argument("--check", default=None,
                        help="compare against a previously saved record")
    golden.set_defaults(func=commands.cmd_golden)

    report = sub.add_parser(
        "report", help="run sweeps and emit a paper-vs-measured markdown report"
    )
    report.add_argument("--scales", type=_csv_ints, default=[10, 12])
    report.add_argument("--backends", type=_csv_strs,
                        default=["python", "numpy", "scipy", "dataframe",
                                 "graphblas"])
    report.add_argument("--repeats", type=int, default=1)
    report.add_argument("--seed", type=int, default=1)
    report.add_argument("--execution", default="serial",
                        choices=list(EXECUTION_MODES))
    report.add_argument("--cache-dir", default=None,
                        help="reuse kernel 0/1 outputs across cells/repeats")
    report.add_argument("--output", default=None,
                        help="write the markdown report here (stdout otherwise)")
    report.set_defaults(func=commands.cmd_report)

    predict = sub.add_parser(
        "predict",
        help="calibrate the hardware model on one scale and compare "
             "predictions against measurements at others (paper Section V)",
    )
    predict.add_argument("--calibration-scale", type=int, default=10)
    predict.add_argument("--scales", type=_csv_ints, default=None,
                         help="scales to predict (default: calibration+2)")
    predict.add_argument("--backend", default="scipy")
    predict.add_argument("--seed", type=int, default=1)
    predict.set_defaults(func=commands.cmd_predict)

    scaling = sub.add_parser(
        "scaling",
        help="throughput-vs-size or strong-scaling (ranks) study",
    )
    scaling.add_argument("--mode", default="size",
                         choices=["size", "strong"])
    scaling.add_argument("--scales", type=_csv_ints, default=[8, 10, 12],
                         help="scales for --mode size")
    scaling.add_argument("--backend", default="scipy")
    scaling.add_argument("--kernel", default="k3-pagerank",
                         choices=[k.value for k in KernelName])
    scaling.add_argument("--scale", type=int, default=12,
                         help="problem size for --mode strong")
    scaling.add_argument("--ranks", type=_csv_ints, default=[2, 4, 8],
                         help="rank counts for --mode strong")
    scaling.add_argument("--iterations", type=int, default=20)
    scaling.add_argument("--seed", type=int, default=1)
    scaling.set_defaults(func=commands.cmd_scaling)

    cache = sub.add_parser(
        "cache",
        help="inspect and prune the kernel artifact cache "
             "(size-budgeted LRU over k0/k1 datasets and k2 matrices)",
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)

    cache_ls = cache_sub.add_parser(
        "ls", help="list cache entries, least recently used first"
    )
    cache_ls.add_argument("--cache-dir", required=True,
                          help="artifact cache root to inspect")
    cache_ls.set_defaults(func=commands.cmd_cache_ls)

    cache_rm = cache_sub.add_parser("rm", help="remove entries by key")
    cache_rm.add_argument("key", help="entry key (see `cache ls`)")
    cache_rm.add_argument("--cache-dir", required=True)
    cache_rm.add_argument("--kind", default=None,
                          choices=list(ArtifactCache.KINDS),
                          help="only remove the entry of this kind "
                               "(default: all kinds with that key)")
    cache_rm.set_defaults(func=commands.cmd_cache_rm)

    cache_prune = cache_sub.add_parser(
        "prune",
        help="evict least-recently-used entries until the cache fits "
             "a byte budget (0 empties it)",
    )
    cache_prune.add_argument("--cache-dir", required=True)
    cache_prune.add_argument("--max-bytes", type=_size_bytes, required=True,
                             help="size budget, e.g. 500M, 2G, or 0")
    cache_prune.set_defaults(func=commands.cmd_cache_prune)

    serve = sub.add_parser(
        "serve",
        help="start the benchmark job service's JSON-over-HTTP front "
             "end (submit RunSpecs or scenarios; many concurrent "
             "clients share one worker pool and artifact cache)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8734,
                       help="TCP port (0 picks a free one; the bound "
                            "address is printed on stdout)")
    serve.add_argument("--workers", type=int, default=2,
                       help="concurrent benchmark jobs")
    serve.add_argument("--worker-kind", default="thread",
                       choices=list(WORKER_KINDS),
                       help="where jobs execute: thread (in-process "
                            "worker threads), process (a pool of "
                            "long-lived worker processes), or remote "
                            "(TCP agents started with `repro-pipeline "
                            "worker --connect`); specs ship as JSON, "
                            "results return as the job store's "
                            "record/rank-digest documents either way")
    serve.add_argument("--cache-dir", default=None,
                       help="artifact cache shared by all jobs whose "
                            "spec allows it")
    serve.add_argument("--store", default=None,
                       help="durable JSONL job store (lifecycle events "
                            "+ per-kernel records); an existing store "
                            "is replayed on startup — finished jobs "
                            "restore verbatim, interrupted jobs "
                            "re-queue")
    serve.add_argument("--compact", action="store_true",
                       help="compact the job store on startup and "
                            "periodically while serving (drops "
                            "superseded lifecycle events, keeps "
                            "terminal results)")
    serve.add_argument("--listen-workers", default=None,
                       metavar="HOST:PORT",
                       help="with --worker-kind remote: TCP address to "
                            "accept worker registrations on (port 0 "
                            "picks a free one; the bound address is "
                            "printed as a `workers on HOST:PORT` line)")
    serve.add_argument("--heartbeat-timeout", type=float, default=10.0,
                       help="with --worker-kind remote: seconds without "
                            "a heartbeat before a worker is declared "
                            "lost and its in-flight job requeued")
    serve.set_defaults(func=commands.cmd_serve)

    worker = sub.add_parser(
        "worker",
        help="run a remote worker agent: connect to a `serve "
             "--worker-kind remote --listen-workers` service over TCP, "
             "execute dispatched jobs, stream results back, and "
             "heartbeat for liveness",
    )
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="the service's worker-listen address (a "
                             "bare port means 127.0.0.1)")
    worker.add_argument("--cache-dir", default=None,
                        help="this host's artifact cache; warm K0/K1 "
                             "entries sync to/from the service over "
                             "GET/PUT /artifacts so hits survive host "
                             "boundaries")
    worker.add_argument("--worker-id", default=None,
                        help="name announced at registration (default: "
                             "hostname-pid)")
    worker.add_argument("--heartbeat-interval", type=float, default=None,
                        help="seconds between heartbeats (default: the "
                             "service-advertised interval)")
    worker.add_argument("--reconnect-delay", type=float, default=1.0,
                        help="seconds to wait before redialing a lost "
                             "connection")
    worker.add_argument("--max-reconnects", type=int, default=None,
                        help="give up after this many consecutive "
                             "failed dials (default: retry forever)")
    worker.add_argument("--no-artifact-sync", action="store_true",
                        help="skip the cross-host artifact sync even "
                             "when --cache-dir is set")
    worker.add_argument("--job-delay", type=float, default=0.0,
                        help="sleep this long before executing each "
                             "job (fault-injection/testing aid)")
    worker.set_defaults(func=commands.cmd_worker)

    info = sub.add_parser(
        "info", help="list backends/generators/scenarios/experiments"
    )
    info.set_defaults(func=commands.cmd_info)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    # The raw argv rides along so `run --scenario` can tell which flags
    # were actually typed (see cli.commands._explicit_run_flags).
    args._argv = list(argv) if argv is not None else sys.argv[1:]
    try:
        return args.func(args)
    except ExecutorCapabilityError as exc:
        # Strategy/backend mismatch is a usage error (also a ValueError,
        # but listed first so it never falls into the benchmark-failure
        # branch below).
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except PipelineError as exc:
        # Kernel contract violations and their kin: the benchmark ran
        # and produced provably wrong output — exit 1, diagnose on
        # stderr (any --json payload already went to stdout).
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output was piped into something that closed early (e.g.
        # `repro-pipeline info | head`); exit quietly like other CLIs.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
