"""The async executor: overlap stage I/O with compute via the stage graph.

The pipeline's kernels are alternately I/O-bound (Kernel 0 writes edge
files, Kernel 1 reads and rewrites them) and compute-bound (Kernel 2
filters, Kernel 3 iterates), which is exactly the shape where serial
execution leaves wall-clock on the table.  :class:`AsyncExecutor`
decomposes each stage of the :class:`~repro.core.stages.ExecutionPlan`
into finer tasks on a :class:`~repro.core.scheduler.TaskGraph` and
overlaps work *across* stage boundaries while keeping each stage's own
GIL-bound hot loop serial:

* Kernel 0's shard writes run as a sequential chain (TSV encoding is
  CPU-bound — parallel encodes would fight over the GIL, not overlap),
  but Kernel 1's read of shard *i* starts the moment shard *i* is on
  disk, while Kernel 0 is still encoding shard *i+1*;
* the sorted stream is handed from the Kernel 1 sort task straight to
  Kernel 2's ingest lane in chunks
  (:func:`repro.core.streaming.streaming_kernel2`'s ``batch_source``),
  so pass-1 filtering runs while Kernel 1's chained shard writes
  persist the same data — which the contracts re-verify from disk
  afterwards;
* inside Kernel 2, ingest chunking, dedup compute, and spill writes
  proceed on three lanes joined by bounded hand-off queues
  (``overlap_io=True``);
* with ``config.async_lanes="process"``, the GIL-bound TSV codec tasks
  — Kernel 0/1 shard encodes and Kernel 1 shard decodes — are marked
  ``lane="process"`` and dispatched to a
  :class:`~repro.core.lanes.ProcessLanePool`, so encoding shard *i+1*
  genuinely overlaps the write of shard *i* and Kernel 2/3 compute
  instead of contending for the parent's GIL (the per-stage write
  chains that exist to serialise GIL-bound encodes are dropped: lane
  workers encode independent shards concurrently);
* with ``config.shard_plane="shm"`` on top of process lanes, the edge
  arrays those codec tasks exchange ride the zero-copy shard plane
  (:mod:`repro.core.shmplane`): Kernel 0/1 arrays live in
  :class:`~repro.core.shmplane.ShardBuffer` segments, only segment
  *names* cross the worker pipes, and the K1→K2 hand-off feeds Kernel 2
  read-only views of the shared sort output.  Results are bit-identical
  to the pipe plane; the bytes that skipped serialisation are reported
  as ``shm_bytes_saved`` next to ``handoff_mode`` in the Kernel 3
  details.

**Timing attribution stays honest.**  Each kernel's reported ``seconds``
is its *busy* time — the sum of time its tasks actually spent working,
with time spent blocked on upstream stages excluded — so Kernel 0/1/3
throughput (edges/second) remains comparable to the serial baseline.
Kernel 2 is the deliberate exception: the hand-off feeds it the sorted
stream in memory, so its busy time omits the dataset read/decode the
file-fed Kernel 2s pay; its details carry ``ingest_source:
"k1-handoff"`` so downstream consumers can tell the two figures apart.
The wall-clock the overlap recovered is reported separately:
``overlap_saved_s`` (with the end-to-end ``pipeline_wall_seconds``) in
the Kernel 3 details, and
:attr:`~repro.core.results.PipelineResult.wall_seconds` on the result.
Contracts are enforced exactly as in the other three executors, outside
all timed regions.

Fidelity note: results are bit-identical to the streaming executor (and,
for the scipy/numpy backends, to serial execution) because overlap only
reorders *independent* work — per-shard ordering, FIFO hand-off queues,
and the exactness of integer-valued count arithmetic preserve every
value-affecting order.  When the artifact cache or external sort
reroutes Kernel 0/1 I/O, those stages fall back to single coarse tasks
(a cache hit is already just a manifest read); Kernel 2's internal
overlap still applies.
"""

from __future__ import annotations

import threading
import time
import weakref
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.backends.base import Details
from repro.core import trace
from repro.core.config import KernelName, PipelineConfig
from repro.core.exceptions import KernelContractError
from repro.core.executor import Executor, StageOutput
from repro.core.lanes import DEFAULT_LANE_WORKERS, LaneTask, ProcessLanePool
from repro.core.results import KernelResult, PipelineResult
from repro.core.scheduler import ScheduleResult, SchedulerError, TaskGraph
from repro.core.shmplane import ShardBuffer, resolve_payload_via
from repro.core.stages import ARTIFACT_K1, ExecutionPlan, Stage, StageContext
from repro.edgeio.dataset import (
    EdgeDataset,
    read_shard_file,
    shard_file_name,
    shard_slices,
    write_shard,
)
from repro.edgeio.manifest import DatasetManifest

#: Scheduler pool width: one lane per concurrently-active role (a shard
#: write chain, a shard read chain, the K2 task and its two internal
#: lanes) — more threads would only add GIL contention.
DEFAULT_MAX_WORKERS = 4


class ShmEdgePair(tuple):
    """A ``(u, v)`` edge-array pair backed by one shared-memory segment.

    Unpacks exactly like the plain tuples the pipe plane passes around
    (``u, v = pair`` everywhere in the graph), but the arrays are
    *read-only views* into a :class:`~repro.core.shmplane.ShardBuffer`
    and the pair carries the buffer on ``.buffer`` so codec tasks can
    ship its *name* instead of the bytes.  A ``weakref.finalize`` ties
    the segment's lifetime to the pair: the moment the scheduler frees
    the task result (last reader done), the segment is unlinked — no
    reference cycles, no leak, and any still-live views keep their
    mapping until they die (``ShardBuffer.release`` tolerates that).
    """

    def __new__(cls, u: np.ndarray, v: np.ndarray, buffer: ShardBuffer):
        self = super().__new__(cls, (u, v))
        self.buffer = buffer
        # Tuple subclasses cannot be weak-referenced; anchor the
        # finalizer on the u view instead.  It lives exactly as long as
        # the pair's data is reachable (slices keep their base array
        # alive), so the segment unlinks when the last consumer lets go.
        weakref.finalize(u, buffer.release)
        return self

    @classmethod
    def wrap(cls, u: np.ndarray, v: np.ndarray) -> "ShmEdgePair":
        """Copy ``u``/``v`` into a fresh owned segment."""
        buffer = ShardBuffer.create(u, v)
        return cls(*buffer.arrays(), buffer)

    @classmethod
    def adopt(cls, name: str, stats: Optional["_ShmStats"] = None):
        """Take ownership of a segment a lane worker exported to us."""
        buffer = ShardBuffer.attach(name, owner=True)
        if stats is not None:
            stats.add(buffer.nbytes)
        return cls(*buffer.arrays(), buffer)


class _ShmStats:
    """Thread-safe tally of payload bytes the shm plane kept off pipes.

    Counted where serialisation would otherwise happen: each shm shard
    *encode* adds its slice's payload bytes (the pickle the pipe plane
    would have shipped to the worker), each shm shard *decode* adds the
    adopted segment's payload bytes (the pickle the worker would have
    shipped back).  In-parent hand-offs (K1 sort → K2 ingest) were
    already zero-copy under the pipe plane and are not counted.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.total = 0

    def add(self, nbytes: int) -> None:
        with self._lock:
            self.total += int(nbytes)


class AsyncExecutor(Executor):
    """Overlapped execution of the stage graph (``execution="async"``).

    Parameters
    ----------
    plan:
        Stage graph to execute (benchmark default when omitted).
    max_workers:
        Thread-pool width override; ``max_workers=1`` degenerates to
        serial scheduling (useful to isolate scheduler bugs from
        overlap bugs).
    """

    name = "async"
    required_capability = "async"
    k2_cache_variant = "streaming-csr"

    def __init__(
        self,
        plan: Optional[ExecutionPlan] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        super().__init__(plan)
        self.max_workers = max_workers

    # ------------------------------------------------------------------
    def _run_plan(
        self, ctx: StageContext, result: PipelineResult, *, verify: bool
    ) -> None:
        codec_lane = self._codec_lane(ctx.config)
        # Negotiate the shard plane before building the graph: the task
        # bodies bake the decision in (shm only pays where the codec is
        # lane-offloaded; otherwise nothing crosses a pipe to save).
        payload_via = (
            resolve_payload_via(ctx.config.shard_plane)
            if codec_lane == "process" else "pipe"
        )
        shm_stats = _ShmStats()
        graph, artifact_tasks = self._build_graph(
            ctx, verify, codec_lane, payload_via, shm_stats
        )
        lane_pool = (
            ProcessLanePool(DEFAULT_LANE_WORKERS, payload_via=payload_via)
            if codec_lane == "process" else None
        )
        if lane_pool is not None:
            # Concurrently with the schedule, not before it: worker
            # start-up (interpreter + numpy import) hides behind the
            # K0 generate task instead of extending the wall, and a
            # first dispatch that still beats the spawn just blocks on
            # the checkout queue (the wait is excluded from its busy
            # time).  Failures surface on the dispatch path as
            # LaneWorkerCrashError; shutdown() joins the warm-up.
            lane_pool.prestart(block=False)
        try:
            schedule = graph.run(
                max_workers=self._pool_width(codec_lane),
                lane_pool=lane_pool,
            )
        except SchedulerError as exc:
            # A contract violation inside a stage task must surface as
            # the same exception type the other executors raise.
            if isinstance(exc.__cause__, KernelContractError):
                raise exc.__cause__
            raise
        finally:
            if lane_pool is not None:
                lane_pool.shutdown()
        self._record_stage_spans(schedule)
        records = self._assemble(
            ctx, schedule, artifact_tasks, payload_via, shm_stats
        )
        for _, kernel_result in records:
            result.kernels.append(kernel_result)

    @staticmethod
    def _record_stage_spans(schedule: ScheduleResult) -> None:
        """Synthesize per-stage spans from the schedule's task timings.

        The async executor has no serial "stage ran here" interval —
        stages interleave — so each stage's span is the envelope of its
        group's tasks, placed on the run clock via the schedule's
        ``trace_origin``.  Busy time re-derived from the task spans is
        asserted against the schedule's own accounting, so the trace is
        a projection of the numbers the results report, never a second
        bookkeeping that can drift.
        """
        tracer = trace.current()
        if tracer is None or schedule.trace_origin is None:
            return
        group_busy = schedule.group_busy_seconds()
        span_busy = trace.task_busy_seconds(tracer.span_docs())
        groups: Dict[str, List] = {}
        for timing in schedule.timings.values():
            groups.setdefault(timing.group, []).append(timing)
        for group, timings in groups.items():
            started = min(t.started for t in timings)
            finished = max(t.finished for t in timings)
            busy = group_busy.get(group, 0.0)
            derived = span_busy.get(group)
            # Per-task values are bitwise equal (same samples, same
            # arithmetic); the sums may differ by association order.
            if derived is None or abs(derived - busy) > 1e-6:
                raise AssertionError(
                    f"span-derived busy for group {group!r} "
                    f"({derived}) disagrees with the schedule ({busy})"
                )
            tracer.add_span(
                f"stage:{group}", "stage",
                schedule.trace_origin + started, finished - started,
                args={"tasks": len(timings), "busy_seconds": busy},
            )

    def _codec_lane(self, config: PipelineConfig) -> str:
        """Which lane the TSV codec tasks run on for this config.

        Process offload applies only where it pays and where per-shard
        tasks exist at all: the fine-grained expansion (no artifact
        cache, no external sort) of a text format whose encode/decode
        is GIL-bound.  ``npy`` shards are raw buffer writes — the pipe
        transfer would cost more than the GIL time it buys back.
        """
        fine = config.cache_dir is None and not config.external_sort
        if (
            config.async_lanes == "process"
            and fine
            and config.file_format in ("tsv", "tsv.gz")
        ):
            return "process"
        return "thread"

    @staticmethod
    def _shard_write_fn(
        out_dir, index: int, source_task: str, config: PipelineConfig,
        codec_lane: str, payload_via: str = "pipe",
        shm_stats: Optional[_ShmStats] = None,
    ):
        """Body of one shard-write task reading arrays from ``source_task``.

        The single source of truth for the codec write: slice the
        source arrays to this shard, then either write in-thread or
        return the lane descriptor for the identical operation.  On the
        shm plane the descriptor carries only the segment name and the
        slice bounds — the worker maps the same pages the parent holds.
        """
        def write(results: Dict[str, object]):
            source = results[source_task]
            u, v = source
            start, end = shard_slices(len(u), config.num_files)[index]
            if codec_lane == "process":
                if payload_via == "shm" and isinstance(source, ShmEdgePair):
                    if shm_stats is not None:
                        # 16 bytes/edge (two int64s) that would have
                        # been pickled over the worker pipe.
                        shm_stats.add((end - start) * 16)
                    return LaneTask("encode-shard-shm", dict(
                        directory=str(out_dir), index=index,
                        shm=source.buffer.name, start=start, end=end,
                        fmt=config.file_format,
                        vertex_base=config.vertex_base,
                    ))
                return LaneTask("encode-shard", dict(
                    directory=str(out_dir), index=index,
                    u=u[start:end], v=v[start:end],
                    fmt=config.file_format,
                    vertex_base=config.vertex_base,
                ))
            return write_shard(
                out_dir, index, u[start:end], v[start:end],
                fmt=config.file_format, vertex_base=config.vertex_base,
            )

        return write

    @staticmethod
    def _chain_deps(
        codec_lane: str, anchor: str, previous: Optional[str]
    ) -> Tuple[str, ...]:
        """Dependencies for the next codec task in a per-stage series.

        Thread lane: chain onto the previous task — GIL-bound codecs
        would contend, not overlap.  Process lane: only the data/order
        anchor — independent lane workers run shards concurrently.
        """
        if codec_lane == "process" or previous is None:
            return (anchor,)
        return (anchor, previous)

    def _check_contract(
        self, stage: Stage, ctx: StageContext, details: Details, verify: bool
    ) -> None:
        """Run the stage's contract inside its artifact task.

        Fail-fast parity with the serial loop: a violation aborts the
        schedule before downstream stages waste work.  The check's
        duration is recorded (``contract_seconds``) and excluded from
        the stage's busy attribution — contracts stay outside timed
        regions, exactly as in the other executors.
        """
        if not verify or stage.contract is None:
            return
        t0 = time.perf_counter()
        stage.contract.check(ctx)
        details["contract_seconds"] = time.perf_counter() - t0

    def _pool_width(self, codec_lane: str = "thread") -> int:
        if self.max_workers is not None:
            return max(1, self.max_workers)
        if codec_lane == "process":
            # Dispatch threads spend their time blocked on lane pipes
            # (GIL released); widen the pool so they never crowd out
            # the compute lanes.
            return DEFAULT_MAX_WORKERS + DEFAULT_LANE_WORKERS
        return DEFAULT_MAX_WORKERS

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    def _build_graph(
        self, ctx: StageContext, verify: bool, codec_lane: str = "thread",
        payload_via: str = "pipe", shm_stats: Optional[_ShmStats] = None,
    ) -> Tuple[TaskGraph, Dict[str, str]]:
        """Expand the plan's stages into a task graph.

        Returns the graph plus a map from each stage's ``provides`` key
        to the name of its *artifact task* (the task whose result is
        that stage's ``(output, details)`` pair).  Fine-grained
        expansion applies when neither the artifact cache nor the
        external sort reroutes Kernel 0/1 I/O; otherwise stages run as
        one task each, still scheduled as early as dependencies allow.
        ``codec_lane="process"`` marks the shard encode/decode tasks
        for lane-pool dispatch (see :meth:`_codec_lane`);
        ``payload_via="shm"`` additionally routes their edge arrays
        through :class:`~repro.core.shmplane.ShardBuffer` segments.

        Contracts run inside each artifact task; a contract that reads
        an *earlier* stage's artifact is safe because every artifact
        task depends (directly or transitively) on the artifact tasks
        of the stages it requires — the default plan's contracts read
        nothing beyond that.
        """
        config = ctx.config
        graph = TaskGraph()
        artifact_tasks: Dict[str, str] = {}
        fine = config.cache_dir is None and not config.external_sort
        k0_write_tasks: Optional[List[str]] = None
        k1_sort_task: Optional[str] = None

        for stage in self.plan.stages:
            deps = tuple(artifact_tasks[key] for key in stage.requires)
            if stage.kernel is KernelName.K0_GENERATE and fine:
                task, k0_write_tasks = self._expand_generate(
                    graph, ctx, stage, verify, codec_lane, payload_via,
                    shm_stats,
                )
            elif (
                stage.kernel is KernelName.K1_SORT
                and fine
                and k0_write_tasks is not None
            ):
                task, k1_sort_task = self._expand_sort(
                    graph, ctx, stage, k0_write_tasks, deps, verify,
                    codec_lane, payload_via, shm_stats,
                )
            elif stage.kernel is KernelName.K2_FILTER:
                task = self._expand_filter(
                    graph, ctx, stage, deps, k1_sort_task, verify
                )
            else:
                task = self._coarse_stage(graph, ctx, stage, deps, verify)
            artifact_tasks[stage.provides] = task
        return graph, artifact_tasks

    def _coarse_stage(
        self, graph: TaskGraph, ctx: StageContext, stage: Stage, deps,
        verify: bool,
    ) -> str:
        """One stage as one task, routed through the base handlers
        (which include the Kernel 0/1 artifact-cache paths)."""

        def fn(results: Dict[str, object]) -> StageOutput:
            output, details = self._run_stage(stage, ctx)
            details = dict(details)
            ctx.artifacts[stage.provides] = output
            self._check_contract(stage, ctx, details, verify)
            return output, details

        return graph.add(
            stage.kernel.value, fn, deps=deps, group=stage.kernel.value,
            retain=True,
        )

    def _expand_generate(
        self, graph: TaskGraph, ctx: StageContext, stage: Stage, verify: bool,
        codec_lane: str = "thread", payload_via: str = "pipe",
        shm_stats: Optional[_ShmStats] = None,
    ) -> Tuple[str, List[str]]:
        """Kernel 0 as generate → shard writes → manifest.

        On the thread lane, writes chain (encode is GIL-bound; parallel
        encodes would contend, not overlap) and the overlap comes from
        Kernel 1 reading finished shards while the chain is still
        encoding later ones.  On the process lane the chain is dropped:
        lane workers encode independent shards concurrently, so shard
        *i+1*'s encode overlaps shard *i*'s write as well.
        """
        from repro.generators.registry import get_generator

        config = ctx.config
        out_dir = ctx.base_dir / "k0"
        group = stage.kernel.value

        def generate(results: Dict[str, object]):
            generator = get_generator(config.generator)
            u, v = generator(config.scale, config.edge_factor, seed=config.seed)
            out_dir.mkdir(parents=True, exist_ok=True)
            u = np.asarray(u, dtype=np.int64)
            v = np.asarray(v, dtype=np.int64)
            if payload_via == "shm":
                # One segment for the whole stage output; every shard
                # write ships only (name, start, end) over its pipe.
                return ShmEdgePair.wrap(u, v)
            return u, v

        gen_task = graph.add("k0:generate", generate, group=group)

        write_tasks: List[str] = []
        previous: Optional[str] = None
        for index in range(config.num_files):
            # gen is the data-dependency anchor (its arrays must stay
            # alive); on the thread lane the previous write rides along
            # as an ordering-only chain link.
            previous = graph.add(
                f"k0:write:{index}",
                self._shard_write_fn(out_dir, index, gen_task, config,
                                     codec_lane, payload_via, shm_stats),
                deps=self._chain_deps(codec_lane, gen_task, previous),
                group=group, lane=codec_lane,
            )
            write_tasks.append(previous)

        def publish(results: Dict[str, object]) -> StageOutput:
            u, _ = results[gen_task]
            manifest = DatasetManifest(
                num_vertices=config.num_vertices,
                num_edges=len(u),
                vertex_base=config.vertex_base,
                shards=[results[name] for name in write_tasks],
                fmt=config.file_format,
                extra={"kernel": "k0", "generator": config.generator},
            )
            manifest.save(out_dir)
            dataset = EdgeDataset(out_dir, manifest)
            details: Details = {
                "num_edges": dataset.num_edges,
                "num_shards": dataset.num_shards,
                "bytes_written": dataset.total_bytes(),
                "generator": config.generator,
            }
            ctx.artifacts[stage.provides] = dataset
            self._check_contract(stage, ctx, details, verify)
            return dataset, details

        publish_task = graph.add(
            "k0:dataset", publish,
            deps=tuple(write_tasks) + (gen_task,), group=group,
            retain=True,
        )
        return publish_task, write_tasks

    def _expand_sort(
        self,
        graph: TaskGraph,
        ctx: StageContext,
        stage: Stage,
        k0_write_tasks: List[str],
        artifact_deps: Tuple[str, ...],
        verify: bool,
        codec_lane: str = "thread",
        payload_via: str = "pipe",
        shm_stats: Optional[_ShmStats] = None,
    ) -> Tuple[str, str]:
        """Kernel 1 as shard reads → sort → shard writes.

        Each read task depends only on *its* Kernel 0 shard write — not
        on the whole Kernel 0 stage — which is where the K0-write /
        K1-read overlap comes from.  The sort task's result doubles as
        the hand-off to Kernel 2's ingest lane, so the shard writes that
        persist the sorted dataset run concurrently with the filter.
        On the process lane, reads (TSV decode) and writes (TSV encode)
        are lane-pool tasks and the encode chain is dropped.
        """
        from repro.sort.inmemory import sort_edges

        config = ctx.config
        src_dir = ctx.base_dir / "k0"
        out_dir = ctx.base_dir / "k1"
        group = stage.kernel.value

        read_tasks: List[str] = []
        previous: Optional[str] = None
        for index, write_task in enumerate(k0_write_tasks):
            def read(results: Dict[str, object], index: int = index):
                path = src_dir / shard_file_name(index, config.file_format)
                if codec_lane == "process":
                    if payload_via == "shm":
                        # The worker decodes into a fresh segment and
                        # exports it; only the name crosses the pipe
                        # back, and the parent-side post hook adopts
                        # ownership (the scheduler frees the result →
                        # the segment unlinks).
                        return LaneTask(
                            "decode-shard-shm",
                            dict(path=str(path), fmt=config.file_format,
                                 vertex_base=config.vertex_base),
                            post=lambda name: ShmEdgePair.adopt(
                                name, shm_stats
                            ),
                        )
                    return LaneTask("decode-shard", dict(
                        path=str(path), fmt=config.file_format,
                        vertex_base=config.vertex_base,
                    ))
                return read_shard_file(
                    path, fmt=config.file_format,
                    vertex_base=config.vertex_base,
                )

            previous = graph.add(
                f"k1:read:{index}", read,
                deps=self._chain_deps(codec_lane, write_task, previous),
                group=group, lane=codec_lane,
            )
            read_tasks.append(previous)

        def sort(results: Dict[str, object]):
            u = np.concatenate([results[name][0] for name in read_tasks])
            v = np.concatenate([results[name][1] for name in read_tasks])
            out_dir.mkdir(parents=True, exist_ok=True)
            sorted_u, sorted_v = sort_edges(
                u, v,
                algorithm=config.sort_algorithm,
                num_vertices=config.num_vertices,
                by_end_vertex=config.sort_by_end_vertex,
            )
            if payload_via == "shm":
                # The K1 shard writes *and* the K1→K2 hand-off all read
                # from this one segment (zero-copy fan-out).
                return ShmEdgePair.wrap(sorted_u, sorted_v)
            return sorted_u, sorted_v

        sort_task = graph.add(
            "k1:sort", sort, deps=tuple(read_tasks), group=group
        )

        write_tasks: List[str] = []
        previous = None
        for index in range(config.num_files):
            previous = graph.add(
                f"k1:write:{index}",
                self._shard_write_fn(out_dir, index, sort_task, config,
                                     codec_lane, payload_via, shm_stats),
                deps=self._chain_deps(codec_lane, sort_task, previous),
                group=group, lane=codec_lane,
            )
            write_tasks.append(previous)

        def publish(results: Dict[str, object]) -> StageOutput:
            u, _ = results[sort_task]
            manifest = DatasetManifest(
                num_vertices=config.num_vertices,
                num_edges=len(u),
                vertex_base=config.vertex_base,
                shards=[results[name] for name in write_tasks],
                fmt=config.file_format,
                extra={"kernel": "k1", "sorted_by": "u"},
            )
            manifest.save(out_dir)
            dataset = EdgeDataset(out_dir, manifest)
            details: Details = {
                "algorithm": config.sort_algorithm,
                "num_shards": dataset.num_shards,
            }
            ctx.artifacts[stage.provides] = dataset
            self._check_contract(stage, ctx, details, verify)
            return dataset, details

        # artifact_deps (the K0 dataset task) is an ordering dependency:
        # the sort contract re-reads the K0 artifact from ctx.
        publish_task = graph.add(
            "k1:dataset", publish,
            deps=tuple(write_tasks) + (sort_task,) + artifact_deps,
            group=group,
            retain=True,
        )
        return publish_task, sort_task

    def _expand_filter(
        self,
        graph: TaskGraph,
        ctx: StageContext,
        stage: Stage,
        deps,
        k1_sort_task: Optional[str],
        verify: bool,
    ) -> str:
        """Kernel 2 as one task whose *interior* is pipelined.

        With the fine-grained Kernel 1 in play, the task starts the
        moment the sort lands — ingesting the sorted stream over the
        chunked hand-off while Kernel 1's shard writes persist the same
        data to disk (which the contracts re-verify afterwards).
        Otherwise it waits for the published dataset.  Either way the
        ingest/compute/spill lanes overlap inside
        :func:`~repro.core.streaming.streaming_kernel2`.
        """
        pierced = k1_sort_task is not None
        task_deps = (k1_sort_task,) if pierced else deps

        def fn(results: Dict[str, object]) -> StageOutput:
            t0 = time.perf_counter()
            if pierced:
                u, v = results[k1_sort_task]
                handle, details = self._compute_filter_from_arrays(ctx, u, v)
            else:
                handle, details = self._filter_with_cache(
                    ctx, self._compute_filter
                )
            wall = time.perf_counter() - t0
            details = dict(details)
            io = details.get("io_overlap")
            busy = float(details.get("measured_seconds", wall))
            if io is not None:
                busy += io["busy_seconds"] - io["wall_seconds"]
            details["busy_seconds"] = busy
            ctx.artifacts[stage.provides] = handle
            # Contract runs after the busy window was captured.
            self._check_contract(stage, ctx, details, verify)
            return handle, details

        return graph.add(
            stage.kernel.value, fn, deps=task_deps, group=stage.kernel.value,
            retain=True,
        )

    def _compute_filter(self, ctx: StageContext) -> StageOutput:
        """Dataset-fed out-of-core Kernel 2 (coarse/cached path)."""
        from repro.core.executor import adopt_streamed_matrix
        from repro.core.streaming import streaming_kernel2

        streamed = streaming_kernel2(
            ctx.require(ARTIFACT_K1),
            batch_edges=ctx.config.streaming_batch_edges,
            scratch_dir=ctx.base_dir / "k2-scratch",
            overlap_io=True,
        )
        handle, details = adopt_streamed_matrix(ctx, streamed)
        details["ingest_source"] = "dataset"
        return handle, details

    def _compute_filter_from_arrays(
        self, ctx: StageContext, u: np.ndarray, v: np.ndarray
    ) -> StageOutput:
        """Hand-off Kernel 2: ingest the sorted stream in memory chunks.

        The sorted arrays arrive straight from the Kernel 1 sort task
        over the scheduler (no redundant decode of bytes Kernel 1
        produced microseconds earlier); the ingest lane chunks them into
        the bounded hand-off queue, so filtering runs while Kernel 1's
        shard writes persist the same data.  The batch partition differs
        from the dataset's shard/batch layout, which cannot change the
        result — dedup emits only completed rows and every accumulator
        sums integer-valued float64 counts, which is exact.

        Attribution caveat, flagged as ``ingest_source: "k1-handoff"``
        in the details: this path never re-reads the Kernel 1 files, so
        its busy time *excludes* the dataset read/decode the serial and
        streaming Kernel 2s pay — its edges/second reflects the
        pipelined design and must not be compared head-to-head with a
        file-fed Kernel 2 figure.
        """
        from repro.core.executor import adopt_streamed_matrix
        from repro.core.streaming import streaming_kernel2

        config = ctx.config
        batch_edges = config.streaming_batch_edges

        def chunks():
            for start in range(0, len(u), batch_edges):
                yield u[start:start + batch_edges], v[start:start + batch_edges]

        streamed = streaming_kernel2(
            batch_source=chunks(),
            num_vertices=config.num_vertices,
            batch_edges=batch_edges,
            scratch_dir=ctx.base_dir / "k2-scratch",
            overlap_io=True,
        )
        handle, details = adopt_streamed_matrix(ctx, streamed)
        details["ingest_source"] = "k1-handoff"
        return handle, details

    # ------------------------------------------------------------------
    # Result assembly
    # ------------------------------------------------------------------
    def _assemble(
        self,
        ctx: StageContext,
        schedule: ScheduleResult,
        artifact_tasks: Dict[str, str],
        payload_via: str = "pipe",
        shm_stats: Optional[_ShmStats] = None,
    ) -> List[Tuple[Stage, KernelResult]]:
        """Turn the schedule into per-kernel results in plan order.

        Per-kernel ``seconds`` is the stage's busy time (its tasks'
        summed durations, plus any interior lane time Kernel 2 reports),
        keeping throughput comparable to serial.  The pipeline-level
        overlap summary — wall-clock, total busy, and the wall-clock the
        overlap recovered — lands in the final stage's details.
        """
        config = ctx.config
        group_busy = schedule.group_busy_seconds()
        stage_busy: Dict[str, float] = {}
        outputs: Dict[str, Tuple[object, Details]] = {}
        verification_seconds = 0.0
        for stage in self.plan.stages:
            output, details = schedule.results[artifact_tasks[stage.provides]]
            details = dict(details)
            contract_seconds = float(details.get("contract_seconds", 0.0))
            verification_seconds += contract_seconds
            busy = details.get("busy_seconds")
            if busy is None:
                # Group busy includes the in-task contract check; keep
                # kernel seconds contract-free like the other executors.
                busy = group_busy.get(stage.kernel.value, 0.0)
                busy -= contract_seconds
            stage_busy[stage.kernel.value] = float(busy)
            outputs[stage.provides] = (output, details)

        # Contracts are real (overlappable) work but not kernel work:
        # they count toward the pipeline totals, never toward a stage.
        total_busy = sum(stage_busy.values()) + verification_seconds
        overlap_saved = total_busy - schedule.wall_seconds

        records: List[Tuple[Stage, KernelResult]] = []
        last = self.plan.stages[-1]
        for stage in self.plan.stages:
            output, details = outputs[stage.provides]
            seconds = stage_busy[stage.kernel.value]
            details["execution"] = "async"
            details["busy_seconds"] = seconds
            if stage is last:
                codec_lane = self._codec_lane(config)
                details["overlap_saved_s"] = overlap_saved
                details["pipeline_wall_seconds"] = schedule.wall_seconds
                details["pipeline_busy_seconds"] = total_busy
                details["stage_busy_seconds"] = dict(stage_busy)
                details["verification_seconds"] = verification_seconds
                details["max_workers"] = self._pool_width(codec_lane)
                # Lane attribution: the configured knob, the lane the
                # codec actually ran on (coarse/npy runs stay on
                # threads regardless of the knob), and busy time per
                # lane so the offload's share is measurable.
                details["async_lanes"] = config.async_lanes
                details["codec_lane"] = codec_lane
                details["lane_busy_seconds"] = schedule.lane_busy_seconds()
                # Shard-plane attribution: the configured knob, the
                # plane the hand-off actually used (pipe when shm was
                # unavailable or the codec stayed on threads), and the
                # payload bytes shm kept off the worker pipes.
                details["shard_plane"] = config.shard_plane
                details["handoff_mode"] = payload_via
                details["shm_bytes_saved"] = (
                    shm_stats.total if shm_stats is not None else 0
                )
            edges = int(
                details.get("edges_processed", stage.nominal_edges(config))
            )
            records.append(
                (
                    stage,
                    KernelResult(
                        kernel=stage.kernel,
                        seconds=seconds,
                        edges_processed=edges,
                        officially_timed=stage.officially_timed,
                        details=details,
                    ),
                )
            )
        return records
