"""Process lanes: offload GIL-bound codec work from the async executor.

The async executor's thread lanes only recover wall-clock where the
overlapped work releases the GIL — numpy kernels and file I/O do, but
the TSV codec's digit assembly holds it, so a thread encoding shard
``i+1`` steals exactly the cycles the K2 filter needed.  This module
supplies the missing lane kind: a :class:`ProcessLanePool` of
long-lived worker *processes* (the same pipe-driven, crash-replacing
shape as :class:`repro.service.pool.ProcessWorkerPool`, scaled down to
per-task granularity) that the :class:`~repro.core.scheduler.TaskGraph`
dispatches ``lane="process"`` tasks to.

The contract is deliberately narrow:

* **Tasks are descriptors, not closures.**  A process-lane task's body
  returns a :class:`LaneTask` — an operation name from
  :data:`LANE_OPS` plus a payload dict — because a closure over live
  pipeline state cannot cross a ``spawn``/``forkserver`` boundary.  The
  ops themselves are tiny named wrappers over :mod:`repro.edgeio`
  (encode-and-write a shard, read-and-decode a shard), so a lane worker
  produces byte-identical files and arrays to in-process execution.
* **Requests ride the pipe as ``(op, payload)``; replies come back as
  ``("ok", result)`` or ``("error", type_name, message)``** — the same
  marshalling discipline as the service's worker pipe, so an exception
  in a lane worker surfaces with its original type name
  (:class:`RemoteLaneError`) and an unpicklable error can never poison
  the parent.
* **Crash means replace.**  A worker that dies mid-op raises
  :class:`LaneWorkerCrashError` on the dispatching thread (failing that
  one task; the scheduler's normal failure path drains the graph) and
  its slot respawns lazily on next use.

When offload pays: a lane ships the payload over the pipe (a pickled
int64 array copy, ~GB/s) to buy back the codec's GIL time (tens of
MB/s even vectorized).  That trade wins exactly when the op's compute
cost per byte exceeds the pipe's transfer cost per byte — true for TSV
encode/decode, false for ``npy`` shards (a raw buffer write), which is
why the async executor only marks TSV codec tasks as process-lane.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.core import trace

#: Lane kinds a task can be scheduled on (see TaskSpec.lane).
LANE_KINDS = ("thread", "process")

#: Default lane-worker process count for the async executor.
DEFAULT_LANE_WORKERS = 2


class LaneWorkerCrashError(RuntimeError):
    """A lane worker process died (or was terminated) mid-operation."""


class RemoteLaneError(RuntimeError):
    """A lane operation raised inside a worker process.

    Carries the original exception's type name so scheduler failure
    messages read the same whether the op ran in-process or remotely.
    """

    def __init__(self, error_type: str, message: str) -> None:
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type


def _op_encode_shard(payload: Mapping[str, object]):
    """Encode one shard's arrays and write the file; returns ShardInfo."""
    from repro.edgeio.dataset import write_shard

    directory = Path(payload["directory"])
    directory.mkdir(parents=True, exist_ok=True)
    return write_shard(
        directory,
        payload["index"],
        payload["u"],
        payload["v"],
        fmt=payload["fmt"],
        vertex_base=payload["vertex_base"],
    )


def _op_decode_shard(payload: Mapping[str, object]):
    """Read one shard file and decode it; returns ``(u, v)`` arrays."""
    from repro.edgeio.dataset import read_shard_file

    return read_shard_file(
        Path(payload["path"]),
        fmt=payload["fmt"],
        vertex_base=payload["vertex_base"],
    )


def _op_encode_shard_shm(payload: Mapping[str, object]):
    """Zero-copy :func:`_op_encode_shard`: slice the source arrays out
    of a shared-memory :class:`~repro.core.shmplane.ShardBuffer` named
    in the payload instead of receiving them over the pipe.  Returns
    the same ShardInfo, byte-identical file."""
    from repro.core.shmplane import ShardBuffer
    from repro.edgeio.dataset import write_shard

    directory = Path(payload["directory"])
    directory.mkdir(parents=True, exist_ok=True)
    buffer = ShardBuffer.attach(payload["shm"])
    try:
        u, v = buffer.arrays()
        start, end = payload["start"], payload["end"]
        info = write_shard(
            directory,
            payload["index"],
            u[start:end],
            v[start:end],
            fmt=payload["fmt"],
            vertex_base=payload["vertex_base"],
        )
        del u, v  # drop the views so close() can unmap now, not later
        return info
    finally:
        buffer.close()


def _op_decode_shard_shm(payload: Mapping[str, object]):
    """Zero-copy :func:`_op_decode_shard`: decode into a fresh
    shared-memory segment and return its *name* (ownership transfers
    to the attaching parent via
    :meth:`~repro.core.shmplane.ShardBuffer.export`)."""
    from repro.core.shmplane import ShardBuffer
    from repro.edgeio.dataset import read_shard_file

    u, v = read_shard_file(
        Path(payload["path"]),
        fmt=payload["fmt"],
        vertex_base=payload["vertex_base"],
    )
    return ShardBuffer.create(u, v).export()


#: Operations a lane worker can execute.  Module-level (not captured
#: closures) so ``spawn``-started workers resolve them by name.
LANE_OPS: Dict[str, Callable[[Mapping[str, object]], object]] = {
    "encode-shard": _op_encode_shard,
    "decode-shard": _op_decode_shard,
    "encode-shard-shm": _op_encode_shard_shm,
    "decode-shard-shm": _op_decode_shard_shm,
}


@dataclass(frozen=True)
class LaneTask:
    """A process-lane work item: an op name plus its payload.

    Returned by a ``lane="process"`` task's body; the scheduler ships
    it to the lane pool (or runs it in-place via :func:`run_lane_op`
    when no pool is attached, e.g. ``npy`` runs or debugging).

    ``post`` is a **parent-only** hook: the scheduler applies it to the
    op's raw result after dispatch (e.g. attaching a shared-memory
    segment a ``decode-shard-shm`` op created).  It never crosses the
    pipe — only ``op`` and ``payload`` do — so it may close over live
    pipeline state.
    """

    op: str
    payload: Mapping[str, object]
    post: Optional[Callable[[object], object]] = None


def run_lane_op(op: str, payload: Mapping[str, object]) -> object:
    """Execute one lane op locally (worker body and in-thread fallback)."""
    try:
        fn = LANE_OPS[op]
    except KeyError:
        raise ValueError(
            f"unknown lane op {op!r}; known: {sorted(LANE_OPS)}"
        ) from None
    return fn(payload)


def lane_worker_main(conn) -> None:
    """Lane-worker process loop: serve ops until shutdown or EOF.

    Mirrors :func:`repro.service.worker.worker_main`: SIGINT is
    ignored (the pool owns shutdown; a ``^C`` to the process group must
    not race it), errors are marshalled by type name and message (never
    pickled), and a dead parent reads as EOF so workers cannot outlive
    the run.
    """
    import signal

    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    # Warm the ops' import graph (numpy, the edgeio stack, and the shm
    # plane) before serving: a ``spawn``-started interpreter would
    # otherwise pay it inside the first op, whose timing the scheduler
    # attributes to a kernel.  Warm-up pings block until this completes.
    import repro.core.shmplane  # noqa: F401  (side-effect import)
    import repro.edgeio.dataset  # noqa: F401  (side-effect import)

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break  # parent died or closed the pipe
        if not message or message[0] == "shutdown":
            break
        if message[0] == "ping":
            # The reply carries this process's perf_counter so the
            # parent can compute a clock offset (the span re-anchoring
            # handshake — see repro.core.trace.clock_offset).
            try:
                conn.send(("ok", "pong", time.perf_counter()))
            except (BrokenPipeError, OSError):
                break
            continue
        # Requests are ("run", op, payload) or, when the parent's run
        # is traced, ("run", op, payload, True) — the worker then wraps
        # the op in a raw-clock span and ships the span docs back in
        # the reply for the parent to re-anchor onto its own clock.
        if len(message) == 4:
            _, op, payload, want_trace = message
        else:
            _, op, payload = message
            want_trace = False
        span_docs: Optional[List[Dict[str, object]]] = None
        try:
            if want_trace:
                collector = trace.TraceCollector(
                    label=multiprocessing.current_process().name,
                    raw_clock=True,
                )
                with trace.activate(collector), \
                        trace.span(f"lane-op:{op}", cat="lane"):
                    result = run_lane_op(op, payload)
                span_docs = collector.span_docs()
            else:
                result = run_lane_op(op, payload)
        except (KeyboardInterrupt, SystemExit):
            raise  # die; the dispatching thread sees a crash
        except BaseException as exc:  # noqa: BLE001 - marshalled to parent
            try:
                conn.send(("error", type(exc).__name__, str(exc)))
            except (BrokenPipeError, OSError):
                break
        else:
            try:
                if span_docs is not None:
                    conn.send(("ok", result, span_docs))
                else:
                    conn.send(("ok", result))
            except (BrokenPipeError, OSError):
                break
    try:
        conn.close()
    except OSError:
        pass


class _LaneWorkerHandle:
    """One long-lived lane worker plus the parent end of its pipe."""

    def __init__(self, ctx, index: int) -> None:
        self.index = index
        #: Worker perf_counter → parent perf_counter correction, from
        #: the warm-up ping handshake (see :func:`repro.core.trace.
        #: clock_offset`).  On Linux both clocks read the same
        #: CLOCK_MONOTONIC, so this is ~the pipe transit error.
        self.clock_offset = 0.0
        self.conn, child_conn = ctx.Pipe()
        # Daemonic: lane ops never spawn processes of their own (unlike
        # service jobs, which may select parallel_executor="mp"), so
        # daemon=True is safe and guarantees cleanup if the parent dies
        # without running shutdown.
        self.process = ctx.Process(
            target=lane_worker_main,
            args=(child_conn,),
            name=f"repro-lane-{index}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()  # the parent keeps only its own end

    def run(
        self, op: str, payload: Mapping[str, object], *,
        want_trace: bool = False,
    ) -> Tuple[object, Optional[List[Dict[str, object]]]]:
        """Ship one op; returns ``(result, span_docs)``.

        ``span_docs`` is the worker-side span list (raw perf_counter
        starts) when ``want_trace`` was set, else ``None``.
        """
        try:
            if want_trace:
                self.conn.send(("run", op, payload, True))
            else:
                self.conn.send(("run", op, payload))
            reply = self.conn.recv()
        except (EOFError, BrokenPipeError, OSError) as exc:
            raise LaneWorkerCrashError(
                f"lane worker {self.process.name} (pid {self.process.pid}) "
                f"died mid-op {op!r}: {type(exc).__name__}"
            ) from None
        if reply[0] == "ok":
            return reply[1], (reply[2] if len(reply) > 2 else None)
        _tag, error_type, message = reply
        raise RemoteLaneError(error_type, message)

    def ping(self) -> None:
        """Block until the worker's loop is serving (imports warmed).

        The round-trip also performs the trace clock handshake: the
        reply carries the worker's perf_counter reading, and bracketing
        it with the parent's own samples yields :attr:`clock_offset`
        for re-anchoring worker-side spans onto the parent's clock.
        The handshake uses a *second* round trip: the first ping's
        window spans the worker's interpreter/numpy start-up (hundreds
        of milliseconds, all before the reply), so its midpoint is a
        terrible clock estimate — only a warm round trip (~µs) is
        symmetric enough to trust.
        """
        for warm_up in (True, False):
            try:
                t_send = time.perf_counter()
                self.conn.send(("ping",))
                reply = self.conn.recv()
                t_recv = time.perf_counter()
            except (EOFError, BrokenPipeError, OSError) as exc:
                raise LaneWorkerCrashError(
                    f"lane worker {self.process.name} "
                    f"(pid {self.process.pid}) died during start-up: "
                    f"{type(exc).__name__}"
                ) from None
            if reply[:2] != ("ok", "pong"):  # pragma: no cover - defensive
                raise LaneWorkerCrashError(
                    f"lane worker {self.process.name} sent an unexpected "
                    f"start-up reply: {reply!r}"
                )
            if not warm_up and len(reply) > 2:
                self.clock_offset = trace.clock_offset(
                    t_send, t_recv, reply[2]
                )

    def stop(self, timeout: float = 5.0) -> None:
        """Polite shutdown; escalates to terminate if the worker hangs."""
        try:
            self.conn.send(("shutdown",))
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=timeout)
        try:
            self.conn.close()
        except OSError:
            pass

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.terminate()


class ProcessLanePool:
    """A fixed-size pool of reusable lane worker processes.

    Parameters
    ----------
    workers:
        Worker-process count (one in-flight op per worker; dispatching
        threads block in :meth:`run` until a slot frees up).
    start_method:
        ``multiprocessing`` start method: ``forkserver`` where
        available, else ``spawn`` — never plain ``fork``, since the
        scheduler that drives this pool is itself threaded.  Workers
        are long-lived and spawned lazily on first use, so interpreter
        start-up is paid once per worker, not per shard.
    payload_via:
        How shard payloads reach the workers: ``"pipe"`` (pickled
        arrays over the worker pipe, the default) or ``"shm"``
        (shared-memory :class:`~repro.core.shmplane.ShardBuffer`
        segments; only names cross the pipe).  The request is
        *negotiated* — ``"shm"`` silently degrades to ``"pipe"`` (one
        warning per process) when no segment can be created, e.g. a
        permissions-restricted ``/dev/shm`` — and the resolved value is
        exposed as :attr:`payload_via` so graph builders pick the
        matching ops.  Results are bit-identical either way.
    """

    def __init__(
        self, workers: int = DEFAULT_LANE_WORKERS, *,
        start_method: Optional[str] = None,
        payload_via: str = "pipe",
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = (
                "forkserver" if "forkserver" in available else "spawn"
            )
        from repro.core.shmplane import resolve_payload_via

        self.payload_via = resolve_payload_via(payload_via)
        self.workers = workers
        self._ctx = multiprocessing.get_context(start_method)
        self._lock = threading.Lock()
        self._handles: list = []
        self._next_index = 0
        self._terminated = False
        self._prestart_thread: Optional[threading.Thread] = None
        # Tokens, not processes: None means "spawn lazily on first use".
        self._idle: "queue.Queue[Optional[_LaneWorkerHandle]]" = queue.Queue()
        for _ in range(workers):
            self._idle.put(None)

    # ------------------------------------------------------------------
    def _checkout(self) -> _LaneWorkerHandle:
        handle = self._idle.get()
        with self._lock:
            if self._terminated:
                self._idle.put(handle)
                raise LaneWorkerCrashError("lane pool is terminated")
            if handle is not None and handle.process.is_alive():
                return handle
            if handle is not None:  # died unnoticed; forget the corpse
                try:
                    self._handles.remove(handle)
                except ValueError:
                    pass
            index = self._next_index
            self._next_index += 1
        # Spawn outside the lock: interpreter start-up takes hundreds
        # of milliseconds and must not serialize concurrent first uses.
        try:
            fresh = _LaneWorkerHandle(self._ctx, index)
        except Exception as exc:
            self._idle.put(None)
            raise LaneWorkerCrashError(
                f"could not start a lane worker process: "
                f"{type(exc).__name__}: {exc}"
            ) from None
        with self._lock:
            if self._terminated:  # shutdown raced the spawn
                fresh.kill()
                self._idle.put(None)
                raise LaneWorkerCrashError("lane pool is terminated")
            self._handles.append(fresh)
        # Warm the fresh worker before handing it out: a lazily (re)
        # spawned worker that went straight to an op would pay its
        # interpreter + numpy import cost inside that op's measured
        # busy time — cold-start cost billed to a kernel.  The ping
        # blocks until the worker loop serves (imports done), and this
        # whole wait sits inside the checkout window, which run_timed
        # already excludes from busy attribution.
        try:
            fresh.ping()
        except BaseException:
            # Token back as a lazy-respawn None; broken worker culled.
            self._checkin(fresh, dead=True)
            raise
        return fresh

    def _checkin(self, handle: _LaneWorkerHandle, *, dead: bool = False) -> None:
        with self._lock:
            if dead:
                try:
                    self._handles.remove(handle)
                except ValueError:
                    pass
                handle.kill()
                handle = None  # respawn lazily on next checkout
        self._idle.put(handle)

    # ------------------------------------------------------------------
    def run(self, op: str, payload: Mapping[str, object]) -> object:
        """Ship one op to a lane worker and return its result.

        Blocks the calling (scheduler) thread until a worker is free
        and the op completes; the block is a pipe ``recv``, which
        releases the GIL — that is the whole point of the lane.
        """
        return self.run_timed(op, payload)[0]

    def run_timed(
        self, op: str, payload: Mapping[str, object]
    ) -> Tuple[object, float]:
        """As :meth:`run`, also returning the seconds spent *waiting*
        for a worker (idle-queue wait plus any lazy respawn) before the
        op was dispatched.

        Callers that account busy time must exclude that wait: it is
        queuing, not compute — counting it would bill one worker's
        compute to every dispatch that queued behind it.
        """
        collector = trace.current()
        waited_from = time.perf_counter()
        handle = self._checkout()
        queue_wait = time.perf_counter() - waited_from
        dispatch = trace.span(
            f"lane-dispatch:{op}", cat="lane",
            lane=handle.process.name, queue_wait=queue_wait,
        )
        try:
            with dispatch:
                result, span_docs = handle.run(
                    op, payload, want_trace=collector is not None,
                )
        except RemoteLaneError:
            self._checkin(handle)  # worker is fine; the op raised
            raise
        except BaseException:
            # Crash or anything unexpected: the worker's state is
            # unknown, discard it.  The slot token MUST return to the
            # idle queue either way or the pool shrinks forever.
            self._checkin(handle, dead=True)
            raise
        self._checkin(handle)
        if collector is not None and span_docs:
            # Worker spans arrive on the worker's raw perf_counter;
            # the handshake offset re-anchors them onto this process's
            # clock, nested under the dispatch span just closed.
            collector.merge(
                span_docs,
                offset=handle.clock_offset - collector.t0,
                proc=handle.process.name,
                parent_id=dispatch.span_id,
            )
        return result, queue_wait

    def run_task(self, task: LaneTask) -> object:
        """Dispatch a :class:`LaneTask` descriptor."""
        return self.run(task.op, task.payload)

    def run_task_timed(self, task: LaneTask) -> Tuple[object, float]:
        """Dispatch a descriptor, returning ``(result, queue_wait)``
        (the scheduler hook — see :meth:`run_timed`)."""
        return self.run_timed(task.op, task.payload)

    def prestart(self, block: bool = True) -> None:
        """Spawn every worker now, concurrently, instead of on first use.

        Interpreter start-up takes hundreds of milliseconds per worker;
        paying it lazily inside the first dispatched tasks would be
        charged to those tasks' busy time and pollute the overlap
        accounting the async executor reports.  Callers that measure
        should prestart outside their timed region — or pass
        ``block=False`` to warm up on a background thread concurrent
        with their own work (the async executor hides spawn behind the
        K0 generate task this way).  The background form swallows
        warm-up errors: a failed slot respawns lazily and the next
        dispatch surfaces :class:`LaneWorkerCrashError`.

        Every slot token returns to the idle queue no matter what: a
        worker that fails its warm-up is discarded (``dead`` check-in,
        token preserved) so a later dispatch respawns the slot instead
        of blocking forever on a leaked token.  Blocking calls
        re-raise the first warm-up failure.
        """
        if not block:
            thread = threading.Thread(
                target=self._prestart_quietly,
                name="lane-prestart", daemon=True,
            )
            # Remembered so shutdown() can join it first: stopping a
            # handle whose pipe the warm-up is still pinging would
            # drive one Connection from two threads at once.
            self._prestart_thread = thread
            thread.start()
            return
        self._prestart()

    def _prestart_quietly(self) -> None:
        try:
            self._prestart()
        except Exception:  # noqa: BLE001 - dispatch path re-surfaces
            pass

    def _prestart(self) -> None:
        from concurrent.futures import ThreadPoolExecutor

        def spawn_and_warm(_index: int) -> None:
            # _checkout pings the fresh worker before returning it (a
            # warm-up failure culls the worker and preserves its slot
            # token), so spawning and checking straight back in is the
            # entire warm-up.
            self._checkin(self._checkout())

        with ThreadPoolExecutor(max_workers=self.workers) as spawner:
            futures = [
                spawner.submit(spawn_and_warm, index)
                for index in range(self.workers)
            ]
            first_error: Optional[BaseException] = None
            for future in futures:
                error = future.exception()
                if error is not None and first_error is None:
                    first_error = error
        if first_error is not None:
            raise first_error

    def shutdown(self, wait: bool = True) -> None:
        """Stop workers; ``wait=False`` kills instead of asking.

        A background ``prestart(block=False)`` is joined first: its
        warm-up pings drive the same pipes ``stop()`` would send the
        shutdown message on, and :class:`multiprocessing.connection`
        objects are not thread-safe.  The join is bounded — a hung
        spawn degrades to ``kill()`` on whatever exists.
        """
        thread = self._prestart_thread
        if wait and thread is not None \
                and thread is not threading.current_thread():
            # Only the polite path sends on the pipes; kill() never
            # touches a Connection, so wait=False need not block here.
            thread.join(timeout=10.0)
        with self._lock:
            self._terminated = True
            handles = list(self._handles)
            self._handles.clear()
        for handle in handles:
            if wait and thread is not None and thread.is_alive():
                handle.kill()  # warm-up may still own this pipe
            elif wait:
                handle.stop()
            else:
                handle.kill()

    def terminate(self) -> None:
        """Kill every lane worker immediately."""
        self.shutdown(wait=False)
