"""Zero-copy shard plane: shared-memory edge buffers + mapped views.

The pipeline's hand-offs are dominated by moving edge arrays between
processes: a process lane ships every shard payload through a pipe
(pickle + copy at ~GB/s), and every service worker decodes its own
private copy of a cached artifact.  This module supplies the shared
substrate that removes those copies:

* :class:`ShardBuffer` — an edge-pair array in a
  :class:`multiprocessing.shared_memory.SharedMemory` segment, with a
  small fixed header (magic, layout version, generation counter, array
  lengths) ahead of the payload.  A lane worker and the parent map the
  same physical pages; only the segment *name* crosses the pipe.
* an **owner registry** with an ``atexit``/SIGTERM sweep — every
  segment created (or adopted) by this process is tracked until
  released, so a crash cannot strand ``psm_repro_*`` segments in
  ``/dev/shm``.
* :func:`mapped_view` — a context manager over :class:`numpy.memmap`
  that *closes the map on exit* (``np.memmap`` alone leaves the file
  mapped until garbage collection, which breaks spill-file deletion
  under Windows-style strict unlink semantics).
* :func:`resolve_payload_via` — the ``pipe``/``shm`` negotiation: shm
  is used only when a probe segment can actually be created (a
  permissions-restricted ``/dev/shm`` degrades to the pipe path with a
  single warning, never an error).

Ownership rules (see ARCHITECTURE.md "Zero-copy shard plane"):

* The process that will outlive all readers owns the segment and must
  :meth:`ShardBuffer.release` it (unlink + close).  ``create`` makes
  the caller the owner; a worker that creates a segment *for* the
  parent hands it over with :meth:`ShardBuffer.export` (the worker
  forgets it) and the parent adopts it via ``attach(owner=True)``.
* Non-owners ``attach`` and ``close`` — never unlink.
* Views from :meth:`ShardBuffer.arrays` are **read-only**; a consumer
  that needs to mutate copies first (copy-on-write discipline, same as
  mmap-backed cache reads).

CPython detail: attaching to a segment registers it with the process's
``resource_tracker`` *again* (bpo-39959), which would make a non-owner
unlink it at interpreter exit.  Every attach here immediately
unregisters, so exactly one process — the owner — tears a segment down.
"""

from __future__ import annotations

import atexit
import contextlib
import os
import itertools
import signal
import threading
import warnings
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.core import trace

#: Shard hand-off planes selectable by config (``shard_plane``).
SHARD_PLANES = ("pipe", "shm")

#: Header layout: 5 little-endian int64 slots ahead of the payload.
_HEADER_SLOTS = 5
HEADER_BYTES = _HEADER_SLOTS * 8
_MAGIC = 0x5250_5348_4D31  # "RPSHM1"
_LAYOUT_VERSION = 1

#: Segment-name prefix.  Deliberately under ``psm_`` (the stdlib's own
#: prefix) so a leak check over ``psm_*`` covers both default-named
#: segments and ours; the pid+sequence suffix keeps concurrent
#: processes collision-free.  Short enough for macOS's 31-char limit.
_NAME_PREFIX = "psm_repro"
_name_counter = itertools.count()

_registry_lock = threading.Lock()
_REGISTRY: Dict[str, "ShardBuffer"] = {}
_sweep_installed = False

# Mappings whose close() was deferred by live exported views.  Holding
# them stops SharedMemory.__del__ from firing (and printing an ignored
# BufferError) at arbitrary GC time; an atexit flush retries the close
# once the views are gone.
_zombie_lock = threading.Lock()
_ZOMBIE_MAPPINGS: list = []
_zombie_flush_installed = False

_fallback_warned = False


class ShmPlaneError(RuntimeError):
    """A shared-memory shard segment is malformed or unusable."""


def _untrack(name: str) -> None:
    """Forget a segment in this process's resource tracker.

    Attaching registers the segment with the tracker a second time
    (bpo-39959); without this, a mere *reader* exiting would unlink a
    segment the owner still serves.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(f"/{name}", "shared_memory")
    except (ImportError, KeyError, ValueError, OSError):  # pragma: no cover
        pass


def _tracker_is_inherited() -> bool:
    """Whether this process shares its parent's resource tracker.

    spawn/forkserver children receive the parent's tracker *fd* but
    never spawn the tracker themselves, so their local handle has a fd
    and no pid.  The distinction decides the bpo-39959 fix-up: with a
    shared tracker its name cache is one set across processes, a
    reader's unregister would erase the *owner's* entry, and the
    duplicate registration a reader's attach performs is a harmless
    set-add — so nothing must be untracked.  Only a process with its
    own private tracker (which really would unlink attached segments
    at exit) needs to unregister after attach.
    """
    try:
        from multiprocessing import resource_tracker

        tracker = resource_tracker._resource_tracker
        return tracker._fd is not None and tracker._pid is None
    except Exception:  # pragma: no cover - stdlib internals moved
        return False


def _next_name() -> str:
    return f"{_NAME_PREFIX}_{os.getpid()}_{next(_name_counter)}"


# ----------------------------------------------------------------------
# Owner registry + crash sweep
# ----------------------------------------------------------------------
def _register(buffer: "ShardBuffer") -> None:
    global _sweep_installed
    with _registry_lock:
        _REGISTRY[buffer.name] = buffer
        if not _sweep_installed:
            _sweep_installed = True
            atexit.register(sweep)
            _install_sigterm_sweep()


def _deregister(name: str) -> None:
    with _registry_lock:
        _REGISTRY.pop(name, None)


def _install_sigterm_sweep() -> None:
    """Chain a SIGTERM handler that sweeps before the previous action.

    ``atexit`` does not run on SIGTERM's default disposition; a pool
    ``terminate()`` would strand every outstanding segment.  Installing
    is best-effort — non-main threads cannot set handlers, and a
    caller-owned handler is chained, not replaced.
    """
    try:
        previous = signal.getsignal(signal.SIGTERM)

        def _sweep_and_chain(signum, frame):
            sweep()
            if callable(previous) and previous not in (
                signal.SIG_IGN, signal.SIG_DFL
            ):
                previous(signum, frame)
            else:
                signal.signal(signal.SIGTERM, signal.SIG_DFL)
                os.kill(os.getpid(), signal.SIGTERM)

        signal.signal(signal.SIGTERM, _sweep_and_chain)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass


def sweep() -> int:
    """Release every segment this process still owns; returns the count.

    Runs at interpreter exit (``atexit``) and on SIGTERM so no
    ``psm_repro_*`` segment outlives its owner, whatever the exit path.
    Safe to call repeatedly and from signal handlers (best-effort,
    never raises).
    """
    with _registry_lock:
        buffers = list(_REGISTRY.values())
        _REGISTRY.clear()
    for buffer in buffers:
        try:
            buffer.release(_deregister_first=False)
        except Exception:  # noqa: BLE001 - teardown must not raise
            pass
    return len(buffers)


def _retire_mapping(shm) -> None:
    """Park a mapping that live numpy views kept from closing."""
    global _zombie_flush_installed
    with _zombie_lock:
        _ZOMBIE_MAPPINGS.append(shm)
        if not _zombie_flush_installed:
            _zombie_flush_installed = True
            atexit.register(_flush_zombie_mappings)


def _flush_zombie_mappings() -> None:
    with _zombie_lock:
        zombies = list(_ZOMBIE_MAPPINGS)
        _ZOMBIE_MAPPINGS.clear()
    for shm in zombies:
        try:
            shm.close()
        except Exception:  # noqa: BLE001 - teardown must not raise
            pass


def outstanding_segments() -> Tuple[str, ...]:
    """Names of segments this process currently owns (for tests)."""
    with _registry_lock:
        return tuple(sorted(_REGISTRY))


# ----------------------------------------------------------------------
# Availability + negotiation
# ----------------------------------------------------------------------
_available: Optional[bool] = None


def shm_available() -> bool:
    """Whether this host can create shared-memory segments (cached).

    Probes by creating and immediately destroying a tiny segment; a
    permissions-restricted or absent ``/dev/shm`` reads as ``False``.
    """
    global _available
    if _available is None:
        try:
            from multiprocessing import shared_memory

            probe = shared_memory.SharedMemory(
                create=True, size=8, name=_next_name()
            )
            probe.close()
            probe.unlink()
            _available = True
        except Exception:  # noqa: BLE001 - any failure means "no shm"
            _available = False
    return _available


def resolve_payload_via(requested: str) -> str:
    """Negotiate the lane payload plane: honour ``shm`` only when usable.

    ``pipe`` passes through untouched.  ``shm`` degrades to ``pipe``
    with a single :class:`RuntimeWarning` per process when no segment
    can be created — a benchmark run must not fail because of a
    container's ``/dev/shm`` mount options.
    """
    global _fallback_warned
    if requested not in SHARD_PLANES:
        raise ValueError(
            f"payload_via must be one of {SHARD_PLANES}, got {requested!r}"
        )
    if requested == "shm" and not shm_available():
        if not _fallback_warned:
            _fallback_warned = True
            warnings.warn(
                "shared memory is unavailable (restricted /dev/shm?); "
                "falling back to pipe shard hand-off",
                RuntimeWarning,
                stacklevel=2,
            )
        return "pipe"
    return requested


def _reset_negotiation_cache() -> None:
    """Forget the probe result and warning latch (test hook)."""
    global _available, _fallback_warned
    _available = None
    _fallback_warned = False


# ----------------------------------------------------------------------
# ShardBuffer
# ----------------------------------------------------------------------
class ShardBuffer:
    """An ``(u, v)`` edge-pair in a named shared-memory segment.

    Layout: :data:`HEADER_BYTES` of int64 header — magic, layout
    version, generation, ``len(u)``, ``len(v)`` — then the two int64
    payload arrays back to back.  The generation slot lets an owner
    signal "superseded" to attached readers without invalidating their
    mapping (POSIX keeps pages alive until the last map closes, even
    after unlink).

    Use the classmethods; the constructor is internal.
    """

    def __init__(self, shm, *, owner: bool) -> None:
        self._shm = shm
        self.owner = owner
        self._released = False

    # -- lifecycle -----------------------------------------------------
    @classmethod
    def create(cls, u: np.ndarray, v: np.ndarray) -> "ShardBuffer":
        """Copy edge arrays into a fresh owned segment (one memcpy).

        The caller becomes the owner: the segment is registered for the
        crash sweep and must eventually be :meth:`release`-d (or handed
        off with :meth:`export`).
        """
        from multiprocessing import shared_memory

        with trace.span("shm:create", cat="shm") as sp:
            u = np.ascontiguousarray(u, dtype=np.int64)
            v = np.ascontiguousarray(v, dtype=np.int64)
            size = HEADER_BYTES + u.nbytes + v.nbytes
            shm = shared_memory.SharedMemory(
                create=True, size=max(size, 1), name=_next_name()
            )
            buffer = cls(shm, owner=True)
            header = buffer._header_view()
            header[0] = _MAGIC
            header[1] = _LAYOUT_VERSION
            header[2] = 1  # generation
            header[3] = len(u)
            header[4] = len(v)
            pu, pv = buffer._payload_views(writable=True)
            pu[:] = u
            pv[:] = v
            del header, pu, pv
            _register(buffer)
            sp.set(segment=buffer.name, nbytes=u.nbytes + v.nbytes)
        return buffer

    @classmethod
    def attach(cls, name: str, *, owner: bool = False) -> "ShardBuffer":
        """Map an existing segment by name.

        ``owner=True`` *adopts* it — the parent-side half of a worker
        :meth:`export` hand-off: the segment joins this process's
        registry and release duty.  Either way the resource tracker's
        duplicate registration is dropped immediately (see module
        docstring).

        Raises
        ------
        ShmPlaneError
            On a header that is not a version-1 shard segment or
            lengths inconsistent with the segment size.
        FileNotFoundError
            When no segment of that name exists (already unlinked).
        """
        from multiprocessing import shared_memory

        sp = trace.span(
            "shm:adopt" if owner else "shm:attach", cat="shm", segment=name,
        )
        with sp:
            return cls._attach(shm=shared_memory.SharedMemory(name=name),
                               name=name, owner=owner, sp=sp)

    @classmethod
    def _attach(cls, *, shm, name, owner, sp) -> "ShardBuffer":
        with _registry_lock:
            owned_here = name in _REGISTRY
        if not owner and not owned_here and not _tracker_is_inherited():
            # Drop the duplicate registration a private tracker just
            # made (bpo-39959), so this reader's exit cannot unlink a
            # segment the owner still serves.  Inherited (shared)
            # trackers need no fix-up — see :func:`_tracker_is_inherited`
            # — nor does attaching to a segment this very process owns
            # (the tracker cache is a set, so the re-register was a
            # no-op and untracking would erase the owner's entry).  An
            # *adopting* attach keeps its entry either way: unlink()
            # balances it, and the tracker doubles as a last-resort
            # crash sweep.
            _untrack(name)
        buffer = cls(shm, owner=owner)
        header = buffer._header_view()
        magic, version, _gen, u_len, v_len = (int(x) for x in header[:5])
        del header
        if magic != _MAGIC or version != _LAYOUT_VERSION:
            if owner:
                _untrack(name)
            buffer.close()
            raise ShmPlaneError(
                f"segment {name!r} is not a shard buffer "
                f"(magic={magic:#x}, version={version})"
            )
        if HEADER_BYTES + (u_len + v_len) * 8 > shm.size or u_len < 0 \
                or v_len < 0:
            if owner:
                _untrack(name)
            buffer.close()
            raise ShmPlaneError(
                f"segment {name!r} declares {u_len}+{v_len} edges but is "
                f"only {shm.size} bytes"
            )
        if owner:
            _register(buffer)
        sp.set(nbytes=buffer.nbytes)
        return buffer

    @property
    def name(self) -> str:
        """The segment name (the only thing that crosses a pipe)."""
        return self._shm.name

    @property
    def nbytes(self) -> int:
        """Payload bytes (header excluded) — the pipe traffic avoided."""
        header = self._header_view()
        n = int(header[3] + header[4]) * 8
        del header
        return n

    @property
    def generation(self) -> int:
        """Current generation stamp (starts at 1)."""
        header = self._header_view()
        gen = int(header[2])
        del header
        return gen

    def bump_generation(self) -> int:
        """Owner-side: mark the contents superseded; returns the new
        generation.  Attached readers observe the bump through their
        own mapping (same physical pages) and keep a valid view."""
        header = self._header_view()
        header[2] += 1
        gen = int(header[2])
        del header
        return gen

    # -- data ----------------------------------------------------------
    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The ``(u, v)`` payload as **read-only** int64 views.

        Zero-copy: the arrays alias the segment pages.  Mutating
        consumers must ``.copy()`` first — the read-only flag makes an
        accidental in-place write a loud ``ValueError`` instead of a
        cross-process data race.
        """
        u, v = self._payload_views(writable=False)
        return u, v

    def _header_view(self) -> np.ndarray:
        return np.frombuffer(
            self._shm.buf, dtype=np.int64, count=_HEADER_SLOTS
        )

    def _payload_views(self, *, writable: bool) -> Tuple[np.ndarray, np.ndarray]:
        header = self._header_view()
        u_len, v_len = int(header[3]), int(header[4])
        del header
        u = np.frombuffer(
            self._shm.buf, dtype=np.int64, count=u_len,
            offset=HEADER_BYTES,
        )
        v = np.frombuffer(
            self._shm.buf, dtype=np.int64, count=v_len,
            offset=HEADER_BYTES + u_len * 8,
        )
        if not writable:
            u.flags.writeable = False
            v.flags.writeable = False
        return u, v

    # -- teardown ------------------------------------------------------
    def export(self) -> str:
        """Hand ownership to whoever attaches next; returns the name.

        Worker-side half of a create-in-worker transfer: the local
        mapping closes, the registry forgets the segment (this process
        will *not* sweep it), and the tracker registration is dropped —
        the adopting process (``attach(owner=True)``) takes over unlink
        duty.
        """
        name = self.name
        _deregister(name)
        _untrack(name)
        self.owner = False
        self.close()
        return name

    def close(self) -> None:
        """Drop this process's mapping (never the segment itself).

        Tolerates live exported views (:class:`BufferError`): the
        mapping then lives until the last view dies, which is the
        correct degradation — invalidating memory under a numpy array
        would be far worse than a deferred unmap.  Deferred mappings
        are parked and re-closed at interpreter exit so their
        ``__del__`` never spams "Exception ignored" warnings.
        """
        try:
            self._shm.close()
        except BufferError:
            _retire_mapping(self._shm)

    def unlink(self) -> None:
        """Remove the segment name; mappings stay valid until closed."""
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def release(self, *, _deregister_first: bool = True) -> None:
        """Owner teardown: unlink the name, then drop the mapping.

        Idempotent.  Unlink comes first so the segment cannot leak even
        if live views defer the unmap (see :meth:`close`).
        """
        if self._released:
            return
        self._released = True
        if _deregister_first:
            _deregister(self.name)
        self.unlink()
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardBuffer({self.name!r}, owner={self.owner}, "
            f"bytes={self._shm.size})"
        )


# ----------------------------------------------------------------------
# mapped_view
# ----------------------------------------------------------------------
@contextlib.contextmanager
def mapped_view(
    path, dtype, shape, mode: str = "r"
) -> Iterator[np.ndarray]:
    """A :class:`numpy.memmap` whose map is *closed* on context exit.

    ``np.memmap`` alone unmaps only when the array is garbage
    collected; on filesystems with strict unlink semantics (Windows) a
    spill file cannot be deleted while mapped, so the external sort and
    streaming Kernel 2 must close deterministically before cleanup.

    Discipline: any data needed after the ``with`` block must be
    **copied out** inside it (``np.array(view[...])``); slices of the
    yielded array do not survive the close.
    """
    mm = np.memmap(path, dtype=dtype, mode=mode, shape=shape)
    try:
        yield mm
    finally:
        raw = mm._mmap
        if raw is not None:
            try:
                raw.close()
            except BufferError:  # pragma: no cover - exported views
                pass
