"""Pipeline core: configuration, kernel sequencing, timing, results.

This package owns the benchmark *protocol* — what each kernel must do,
in what order, and how performance is reported — while the actual kernel
implementations live in :mod:`repro.backends`.  The split mirrors the
paper's "algorithm-oriented benchmark" philosophy (Section II): inputs,
outputs, and the algorithm are fixed here; the implementation technology
is swappable.
"""

from __future__ import annotations

from repro.core.config import KernelName, PipelineConfig, run_sizes_table
from repro.core.exceptions import KernelContractError, PipelineError
from repro.core.pipeline import Pipeline, run_pipeline
from repro.core.results import KernelResult, PipelineResult

__all__ = [
    "KernelContractError",
    "KernelName",
    "KernelResult",
    "Pipeline",
    "PipelineConfig",
    "PipelineError",
    "PipelineResult",
    "run_pipeline",
    "run_sizes_table",
]
