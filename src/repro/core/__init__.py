"""Pipeline core: configuration, kernel sequencing, timing, results.

This package owns the benchmark *protocol* — what each kernel must do,
in what order, and how performance is reported — while the actual kernel
implementations live in :mod:`repro.backends`.  The split mirrors the
paper's "algorithm-oriented benchmark" philosophy (Section II): inputs,
outputs, and the algorithm are fixed here; the implementation technology
is swappable.
"""

from __future__ import annotations

from repro.core.artifacts import ArtifactCache, CacheEntry
from repro.core.config import (
    EXECUTION_MODES,
    KernelName,
    PipelineConfig,
    run_sizes_table,
)
from repro.core.exceptions import (
    ExecutorCapabilityError,
    KernelContractError,
    PipelineError,
)
from repro.core.executor import (
    Executor,
    SerialExecutor,
    ShardParallelExecutor,
    StreamingExecutor,
    available_executions,
    get_executor,
)
from repro.core.pipeline import Pipeline, run_pipeline
from repro.core.results import KernelResult, PipelineResult
from repro.core.scheduler import ScheduleResult, SchedulerError, TaskGraph
from repro.core.stages import Contract, ExecutionPlan, Stage, default_plan

__all__ = [
    "ArtifactCache",
    "CacheEntry",
    "Contract",
    "EXECUTION_MODES",
    "ExecutionPlan",
    "Executor",
    "ExecutorCapabilityError",
    "KernelContractError",
    "KernelName",
    "KernelResult",
    "Pipeline",
    "PipelineConfig",
    "PipelineError",
    "PipelineResult",
    "ScheduleResult",
    "SchedulerError",
    "SerialExecutor",
    "ShardParallelExecutor",
    "Stage",
    "StreamingExecutor",
    "TaskGraph",
    "available_executions",
    "default_plan",
    "get_executor",
    "run_pipeline",
    "run_sizes_table",
]
