"""Out-of-core Kernel 2: build the filtered matrix from a sorted dataset
without materialising the raw edge list in memory.

The paper notes Kernel 2 can be "IO limited … memory limited … or
network limited" depending on scale; this module addresses the memory
axis.  Because Kernel 1 sorted the edges by start vertex, Kernel 2 can
stream:

* **pass 1** — stream batches, deduplicate within each batch (safe: a
  duplicate pair can only span batches at a row boundary, handled by a
  carry buffer), accumulate the in-degree vector and spill deduplicated
  triples to a compact binary scratch file;
* **decide** — compute the elimination mask from the full in-degree;
* **pass 2** — stream the scratch triples, drop eliminated columns,
  accumulate out-degrees (rows arrive contiguously, so each row
  finishes before the next begins), normalise and emit CSR pieces.

Peak memory is O(batch + N) instead of O(M + N).
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro._util import check_positive_int
from repro.core.config import DEFAULT_STREAMING_BATCH_EDGES
from repro.edgeio.dataset import EdgeDataset


@dataclass(frozen=True)
class StreamingKernel2Result:
    """Output of the streaming Kernel 2.

    Attributes
    ----------
    matrix:
        Row-normalised CSR matrix (same value as the in-memory path).
    pre_filter_entry_total:
        Sum of adjacency counts before elimination (must equal ``M``).
        Also the count of edge records ingested in pass 1 (each input
        edge contributes 1 to exactly one accumulated count).
    eliminated_columns:
        Number of zeroed columns (super-node + leaves).
    batches:
        Batches streamed in pass 1 (instrumentation).
    unique_triples:
        Deduplicated ``(row, col, count)`` triples spilled by pass 1 and
        re-read by pass 2 — the actual matrix-assembly work, which batch
        deduplication makes smaller than ``M``.
    """

    matrix: sp.csr_matrix
    pre_filter_entry_total: float
    eliminated_columns: int
    batches: int
    unique_triples: int = 0


def _dedup_sorted_batch(
    u: np.ndarray, v: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Collapse duplicates in a batch that is already sorted by ``u``.

    Within a batch, ties in ``u`` may appear in any ``v`` order, so the
    batch is lexsorted before run-collapsing — O(batch log batch), not
    O(M log M).
    """
    if len(u) == 0:
        return u, v, np.empty(0, dtype=np.float64)
    order = np.lexsort((v, u))
    su, sv = u[order], v[order]
    new_pair = np.r_[True, (su[1:] != su[:-1]) | (sv[1:] != sv[:-1])]
    group = np.cumsum(new_pair) - 1
    counts = np.bincount(group).astype(np.float64)
    return su[new_pair], sv[new_pair], counts


def _stream_dedup(
    dataset: EdgeDataset, batch_edges: int
) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Yield deduplicated (rows, cols, counts) runs in row order.

    A carry buffer holds the final row of each batch so duplicates that
    straddle a batch boundary (possible only for the boundary row, since
    input is sorted by row) are merged before emission.
    """
    carry_u = np.empty(0, dtype=np.int64)
    carry_v = np.empty(0, dtype=np.int64)
    carry_c = np.empty(0, dtype=np.float64)
    for u, v in dataset.iter_batches(batch_edges):
        if len(u) > 1 and np.any(u[1:] < u[:-1]):
            raise ValueError(
                "streaming_kernel2 requires input sorted by start vertex "
                "(kernel 1 output); found a backward row within a batch"
            )
        du, dv, dc = _dedup_sorted_batch(u, v)
        if len(carry_u):
            du = np.concatenate([carry_u, du])
            dv = np.concatenate([carry_v, dv])
            dc = np.concatenate([carry_c, dc])
            # Re-collapse: carry rows may repeat pairs from this batch.
            order = np.lexsort((dv, du))
            du, dv, dc = du[order], dv[order], dc[order]
            new_pair = np.r_[True, (du[1:] != du[:-1]) | (dv[1:] != dv[:-1])]
            group = np.cumsum(new_pair) - 1
            sums = np.bincount(group, weights=dc)
            du, dv, dc = du[new_pair], dv[new_pair], sums
        if len(du) == 0:
            continue
        last_row = du[-1]
        boundary = int(np.searchsorted(du, last_row, side="left"))
        emit_u, emit_v, emit_c = du[:boundary], dv[:boundary], dc[:boundary]
        carry_u, carry_v, carry_c = du[boundary:], dv[boundary:], dc[boundary:]
        if len(emit_u):
            yield emit_u, emit_v, emit_c
    if len(carry_u):
        yield carry_u, carry_v, carry_c


def streaming_kernel2(
    dataset: EdgeDataset,
    *,
    batch_edges: int = DEFAULT_STREAMING_BATCH_EDGES,
    scratch_dir: Optional[Path] = None,
) -> StreamingKernel2Result:
    """Run Kernel 2 with memory bounded by ``O(batch_edges + N)``.

    Parameters
    ----------
    dataset:
        Kernel 1 output — **must** be sorted by start vertex (verified
        streamingly; a violation raises ``ValueError``).
    batch_edges:
        Pass-1 batch size (the memory knob).
    scratch_dir:
        Where the deduplicated spill file lives; a temp dir by default.

    Returns
    -------
    StreamingKernel2Result
        Matching the in-memory Kernel 2 output exactly (asserted by the
        integration tests).

    Examples
    --------
    >>> # see tests/integration/test_streaming_kernel2.py
    """
    check_positive_int("batch_edges", batch_edges)
    n = dataset.num_vertices

    own_scratch = scratch_dir is None
    scratch = Path(scratch_dir) if scratch_dir else Path(
        tempfile.mkdtemp(prefix="repro-streamk2-")
    )
    scratch.mkdir(parents=True, exist_ok=True)
    spill_path = scratch / "dedup.bin"

    din = np.zeros(n, dtype=np.float64)
    total = 0.0
    batches = 0
    last_row_seen = -1
    triples = 0
    try:
        # ---- pass 1: dedup + in-degree + spill ----------------------
        with open(spill_path, "wb") as spill:
            for rows, cols, counts in _stream_dedup(dataset, batch_edges):
                if rows[0] < last_row_seen:
                    raise ValueError(
                        "streaming_kernel2 requires input sorted by start "
                        "vertex (kernel 1 output); found a backward row"
                    )
                last_row_seen = int(rows[-1])
                din += np.bincount(cols, weights=counts, minlength=n)
                total += counts.sum()
                stacked = np.empty((len(rows), 3), dtype=np.float64)
                stacked[:, 0] = rows
                stacked[:, 1] = cols
                stacked[:, 2] = counts
                stacked.tofile(spill)
                triples += len(rows)
                batches += 1

        # ---- decide elimination -------------------------------------
        max_in = din.max() if n else 0.0
        if max_in > 0:
            eliminate = (din == max_in) | (din == 1)
        else:
            eliminate = np.zeros(n, dtype=bool)

        # ---- pass 2: filter + normalise + assemble CSR --------------
        indptr = np.zeros(n + 1, dtype=np.int64)
        kept_cols = []
        kept_vals = []
        if triples:
            mm = np.memmap(spill_path, dtype=np.float64, mode="r",
                           shape=(triples, 3))
            cursor = 0
            while cursor < triples:
                end = min(cursor + batch_edges, triples)
                block = np.asarray(mm[cursor:end])
                cursor = end
                rows = block[:, 0].astype(np.int64)
                cols = block[:, 1].astype(np.int64)
                vals = block[:, 2]
                keep = ~eliminate[cols]
                rows, cols, vals = rows[keep], cols[keep], vals[keep]
                if len(rows) == 0:
                    continue
                # Rows are contiguous in the stream; row degrees can be
                # accumulated into indptr counts directly.
                np.add.at(indptr, rows + 1, 1)
                kept_cols.append(cols)
                kept_vals.append(vals)
            del mm

        col_idx = (np.concatenate(kept_cols) if kept_cols
                   else np.empty(0, dtype=np.int64))
        values = (np.concatenate(kept_vals) if kept_vals
                  else np.empty(0, dtype=np.float64))
        np.cumsum(indptr, out=indptr)

        matrix = sp.csr_matrix((values, col_idx, indptr), shape=(n, n))
        dout = np.asarray(matrix.sum(axis=1)).ravel()
        inv = np.ones(n)
        nonzero = dout > 0
        inv[nonzero] = 1.0 / dout[nonzero]
        matrix = (sp.diags(inv) @ matrix).tocsr()

        return StreamingKernel2Result(
            matrix=matrix,
            pre_filter_entry_total=float(total),
            eliminated_columns=int(eliminate.sum()),
            batches=batches,
            unique_triples=triples,
        )
    finally:
        spill_path.unlink(missing_ok=True)
        if own_scratch:
            import shutil

            shutil.rmtree(scratch, ignore_errors=True)
