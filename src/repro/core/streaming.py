"""Out-of-core Kernel 2: build the filtered matrix from a sorted dataset
without materialising the raw edge list in memory.

The paper notes Kernel 2 can be "IO limited … memory limited … or
network limited" depending on scale; this module addresses the memory
axis.  Because Kernel 1 sorted the edges by start vertex, Kernel 2 can
stream:

* **pass 1** — stream batches, deduplicate within each batch (safe: a
  duplicate pair can only span batches at a row boundary, handled by a
  carry buffer), accumulate the in-degree vector and spill deduplicated
  triples to a compact binary scratch file;
* **decide** — compute the elimination mask from the full in-degree;
* **pass 2** — stream the scratch triples, drop eliminated columns,
  accumulate out-degrees (rows arrive contiguously, so each row
  finishes before the next begins), normalise and emit CSR pieces.

Peak memory is O(batch + N) instead of O(M + N).
"""

from __future__ import annotations

import queue
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.core.shmplane import mapped_view

from repro._util import check_positive_int
from repro.core.config import DEFAULT_STREAMING_BATCH_EDGES
from repro.edgeio.dataset import EdgeDataset


@dataclass(frozen=True)
class StreamingKernel2Result:
    """Output of the streaming Kernel 2.

    Attributes
    ----------
    matrix:
        Row-normalised CSR matrix (same value as the in-memory path).
    pre_filter_entry_total:
        Sum of adjacency counts before elimination (must equal ``M``).
        Also the count of edge records ingested in pass 1 (each input
        edge contributes 1 to exactly one accumulated count).
    eliminated_columns:
        Number of zeroed columns (super-node + leaves).
    batches:
        Batches streamed in pass 1 (instrumentation).
    unique_triples:
        Deduplicated ``(row, col, count)`` triples spilled by pass 1 and
        re-read by pass 2 — the actual matrix-assembly work, which batch
        deduplication makes smaller than ``M``.
    io_overlap:
        Present only when ``overlap_io=True``: per-role busy seconds
        (``ingest`` read, ``compute`` dedup, ``spill`` write, serial
        ``tail``), the pass-1/total wall-clock, and the wall-clock the
        overlap recovered (``busy - wall``).  The matrix is bit-identical
        either way — overlap changes scheduling, never values.
    """

    matrix: sp.csr_matrix
    pre_filter_entry_total: float
    eliminated_columns: int
    batches: int
    unique_triples: int = 0
    io_overlap: Optional[Dict[str, float]] = None


def _dedup_sorted_batch(
    u: np.ndarray, v: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Collapse duplicates in a batch that is already sorted by ``u``.

    Within a batch, ties in ``u`` may appear in any ``v`` order, so the
    batch is lexsorted before run-collapsing — O(batch log batch), not
    O(M log M).
    """
    if len(u) == 0:
        return u, v, np.empty(0, dtype=np.float64)
    order = np.lexsort((v, u))
    su, sv = u[order], v[order]
    new_pair = np.r_[True, (su[1:] != su[:-1]) | (sv[1:] != sv[:-1])]
    group = np.cumsum(new_pair) - 1
    counts = np.bincount(group).astype(np.float64)
    return su[new_pair], sv[new_pair], counts


def _stream_dedup(
    batches: Iterable[Tuple[np.ndarray, np.ndarray]]
) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Yield deduplicated (rows, cols, counts) runs in row order.

    A carry buffer holds the final row of each batch so duplicates that
    straddle a batch boundary (possible only for the boundary row, since
    input is sorted by row) are merged before emission.  ``batches`` is
    any ``(u, v)`` iterable — a dataset's :meth:`iter_batches` or a
    hand-off queue fed by a background reader thread.
    """
    carry_u = np.empty(0, dtype=np.int64)
    carry_v = np.empty(0, dtype=np.int64)
    carry_c = np.empty(0, dtype=np.float64)
    for u, v in batches:
        if len(u) > 1 and np.any(u[1:] < u[:-1]):
            raise ValueError(
                "streaming_kernel2 requires input sorted by start vertex "
                "(kernel 1 output); found a backward row within a batch"
            )
        du, dv, dc = _dedup_sorted_batch(u, v)
        if len(carry_u):
            du = np.concatenate([carry_u, du])
            dv = np.concatenate([carry_v, dv])
            dc = np.concatenate([carry_c, dc])
            # Re-collapse: carry rows may repeat pairs from this batch.
            order = np.lexsort((dv, du))
            du, dv, dc = du[order], dv[order], dc[order]
            new_pair = np.r_[True, (du[1:] != du[:-1]) | (dv[1:] != dv[:-1])]
            group = np.cumsum(new_pair) - 1
            sums = np.bincount(group, weights=dc)
            du, dv, dc = du[new_pair], dv[new_pair], sums
        if len(du) == 0:
            continue
        last_row = du[-1]
        boundary = int(np.searchsorted(du, last_row, side="left"))
        emit_u, emit_v, emit_c = du[:boundary], dv[:boundary], dc[:boundary]
        carry_u, carry_v, carry_c = du[boundary:], dv[boundary:], dc[boundary:]
        if len(emit_u):
            yield emit_u, emit_v, emit_c
    if len(carry_u):
        yield carry_u, carry_v, carry_c


class _Pass1State:
    """Accumulator shared by the serial and pipelined pass-1 drivers."""

    __slots__ = ("din", "total", "batches", "triples", "last_row_seen")

    def __init__(self, n: int) -> None:
        self.din = np.zeros(n, dtype=np.float64)
        self.total = 0.0
        self.batches = 0
        self.triples = 0
        self.last_row_seen = -1

    def absorb(self, rows, cols, counts) -> np.ndarray:
        """Fold one dedup run into the accumulators; return spill block."""
        if rows[0] < self.last_row_seen:
            raise ValueError(
                "streaming_kernel2 requires input sorted by start "
                "vertex (kernel 1 output); found a backward row"
            )
        self.last_row_seen = int(rows[-1])
        self.din += np.bincount(cols, weights=counts, minlength=len(self.din))
        self.total += counts.sum()
        stacked = np.empty((len(rows), 3), dtype=np.float64)
        stacked[:, 0] = rows
        stacked[:, 1] = cols
        stacked[:, 2] = counts
        self.triples += len(rows)
        self.batches += 1
        return stacked


def _pass1_serial(
    batches: Iterable[Tuple[np.ndarray, np.ndarray]],
    spill_path: Path,
    n: int,
) -> _Pass1State:
    """The original single-threaded pass 1: read, dedup, spill in turn."""
    state = _Pass1State(n)
    with open(spill_path, "wb") as spill:
        for rows, cols, counts in _stream_dedup(batches):
            state.absorb(rows, cols, counts).tofile(spill)
    return state


def _queue_put(q: "queue.Queue", item, cancel: threading.Event) -> bool:
    """Bounded put that aborts (returning False) once ``cancel`` is set."""
    while not cancel.is_set():
        try:
            q.put(item, timeout=0.05)
            return True
        except queue.Full:
            continue
    return False


def _pass1_pipelined(
    batches: Iterable[Tuple[np.ndarray, np.ndarray]],
    spill_path: Path,
    n: int,
    timing: Dict[str, float],
) -> _Pass1State:
    """Pass 1 with ingest/compute/spill on three overlapped lanes.

    A reader thread streams ``(u, v)`` batches into a bounded hand-off
    queue, the calling thread runs the dedup/in-degree compute, and a
    writer thread drains spill blocks to disk.  FIFO queues and a single
    writer preserve the exact byte order of the serial path, so the
    result is bit-identical; only the wall-clock changes.  ``timing``
    receives per-lane busy seconds (read/compute/write) measured around
    the work itself, with queue blocking excluded — the attribution the
    async executor reports as per-kernel busy time.
    """
    in_q: "queue.Queue" = queue.Queue(maxsize=4)
    out_q: "queue.Queue" = queue.Queue(maxsize=4)
    cancel = threading.Event()
    reader_error: list = []
    writer_error: list = []

    def _reader() -> None:
        busy = 0.0
        try:
            iterator = iter(batches)
            while not cancel.is_set():
                t0 = time.perf_counter()
                try:
                    batch = next(iterator)
                except StopIteration:
                    break
                finally:
                    busy += time.perf_counter() - t0
                if not _queue_put(in_q, batch, cancel):
                    return
        except BaseException as exc:  # noqa: BLE001 - re-raised by consumer
            reader_error.append(exc)
        finally:
            timing["ingest_seconds"] = busy
            _queue_put(in_q, None, cancel)

    def _writer() -> None:
        busy = 0.0
        try:
            with open(spill_path, "wb") as spill:
                while True:
                    block = out_q.get()
                    if block is None:
                        return
                    t0 = time.perf_counter()
                    block.tofile(spill)
                    busy += time.perf_counter() - t0
        except BaseException as exc:  # noqa: BLE001 - re-raised by producer
            writer_error.append(exc)
            cancel.set()
        finally:
            timing["spill_seconds"] = busy

    def _batches_from_queue() -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        while True:
            t0 = time.perf_counter()
            while True:
                try:
                    item = in_q.get(timeout=0.05)
                    break
                except queue.Empty:
                    # A dead writer sets ``cancel`` and the reader then
                    # gives up without delivering its end-of-stream
                    # marker; surface the failure instead of waiting
                    # for a batch that will never come.
                    if cancel.is_set():
                        if writer_error:
                            raise writer_error[0]
                        raise RuntimeError(
                            "streaming pass 1 cancelled mid-ingest"
                        )
            timing["wait_ingest_seconds"] += time.perf_counter() - t0
            if item is None:
                if reader_error:
                    raise reader_error[0]
                return
            yield item

    timing.setdefault("wait_ingest_seconds", 0.0)
    timing.setdefault("wait_spill_seconds", 0.0)
    state = _Pass1State(n)
    reader = threading.Thread(target=_reader, name="k2-ingest", daemon=True)
    writer = threading.Thread(target=_writer, name="k2-spill", daemon=True)
    wall0 = time.perf_counter()
    reader.start()
    writer.start()
    try:
        for rows, cols, counts in _stream_dedup(_batches_from_queue()):
            block = state.absorb(rows, cols, counts)
            t0 = time.perf_counter()
            delivered = _queue_put(out_q, block, cancel)
            timing["wait_spill_seconds"] += time.perf_counter() - t0
            if not delivered:
                break  # writer failed; its error is raised below
    except BaseException:
        cancel.set()
        raise
    finally:
        # Deliver the writer's end-of-stream marker even when ``cancel``
        # is set (the writer keeps draining until it sees it); skip only
        # when the writer itself is gone — then nobody will consume it.
        while writer.is_alive():
            try:
                out_q.put(None, timeout=0.05)
                break
            except queue.Full:
                continue
        reader.join()
        writer.join()
        timing["pass1_wall_seconds"] = time.perf_counter() - wall0
    if writer_error:
        raise writer_error[0]
    if reader_error:
        raise reader_error[0]
    timing["compute_seconds"] = (
        timing["pass1_wall_seconds"]
        - timing["wait_ingest_seconds"]
        - timing["wait_spill_seconds"]
    )
    return state


def streaming_kernel2(
    dataset: Optional[EdgeDataset] = None,
    *,
    batch_edges: int = DEFAULT_STREAMING_BATCH_EDGES,
    scratch_dir: Optional[Path] = None,
    overlap_io: bool = False,
    batch_source: Optional[Iterable[Tuple[np.ndarray, np.ndarray]]] = None,
    num_vertices: Optional[int] = None,
) -> StreamingKernel2Result:
    """Run Kernel 2 with memory bounded by ``O(batch_edges + N)``.

    Parameters
    ----------
    dataset:
        Kernel 1 output — **must** be sorted by start vertex (verified
        streamingly; a violation raises ``ValueError``).
    batch_edges:
        Pass-1 batch size (the memory knob).
    scratch_dir:
        Where the deduplicated spill file lives; a temp dir by default.
    overlap_io:
        Run pass 1 with ingest, dedup, and spill on overlapped lanes
        (reader/writer threads plus bounded hand-off queues).  The
        result is bit-identical; :attr:`StreamingKernel2Result.io_overlap`
        then reports per-lane busy time and the wall-clock recovered.
    batch_source:
        Replace the dataset's batch iteration with an external ``(u, v)``
        batch iterable (the async executor feeds shards here as its
        Kernel 1 writes complete).  Requires ``num_vertices``.  The
        result does not depend on how the source partitions the sorted
        stream into batches: deduplication emits only completed rows
        (boundary rows ride the carry buffer) and every accumulator sums
        integer-valued float64 counts, which is exact.
    num_vertices:
        Matrix dimension ``N`` when ``batch_source`` is used without a
        dataset.

    Returns
    -------
    StreamingKernel2Result
        Matching the in-memory Kernel 2 output exactly (asserted by the
        integration tests).

    Examples
    --------
    >>> # see tests/integration/test_streaming_kernel2.py
    """
    check_positive_int("batch_edges", batch_edges)
    if dataset is None and (batch_source is None or num_vertices is None):
        raise ValueError(
            "streaming_kernel2 needs a dataset, or batch_source plus "
            "num_vertices"
        )
    n = int(num_vertices) if num_vertices is not None else dataset.num_vertices

    own_scratch = scratch_dir is None
    scratch = Path(scratch_dir) if scratch_dir else Path(
        tempfile.mkdtemp(prefix="repro-streamk2-")
    )
    scratch.mkdir(parents=True, exist_ok=True)
    spill_path = scratch / "dedup.bin"

    try:
        # ---- pass 1: dedup + in-degree + spill ----------------------
        batches = (
            batch_source
            if batch_source is not None
            else dataset.iter_batches(batch_edges)
        )
        overlap_timing: Dict[str, float] = {}
        if overlap_io:
            state = _pass1_pipelined(batches, spill_path, n, overlap_timing)
        else:
            state = _pass1_serial(batches, spill_path, n)
        din = state.din
        total = state.total
        batches = state.batches
        triples = state.triples
        tail0 = time.perf_counter()

        # ---- decide elimination -------------------------------------
        max_in = din.max() if n else 0.0
        if max_in > 0:
            eliminate = (din == max_in) | (din == 1)
        else:
            eliminate = np.zeros(n, dtype=bool)

        # ---- pass 2: filter + normalise + assemble CSR --------------
        indptr = np.zeros(n + 1, dtype=np.int64)
        kept_cols = []
        kept_vals = []
        if triples:
            with mapped_view(
                spill_path, np.float64, (triples, 3)
            ) as mm:
                cursor = 0
                while cursor < triples:
                    end = min(cursor + batch_edges, triples)
                    # Force-copy the block out of the mapping: vals
                    # slices survive in kept_vals past the unmap below
                    # (the spill file is deleted right after this
                    # pass, which strict-unlink filesystems refuse
                    # while mapped).
                    block = np.array(mm[cursor:end])
                    cursor = end
                    rows = block[:, 0].astype(np.int64)
                    cols = block[:, 1].astype(np.int64)
                    vals = block[:, 2]
                    keep = ~eliminate[cols]
                    rows, cols, vals = rows[keep], cols[keep], vals[keep]
                    if len(rows) == 0:
                        continue
                    # Rows are contiguous in the stream; row degrees
                    # can be accumulated into indptr counts directly.
                    np.add.at(indptr, rows + 1, 1)
                    kept_cols.append(cols)
                    kept_vals.append(vals)

        col_idx = (np.concatenate(kept_cols) if kept_cols
                   else np.empty(0, dtype=np.int64))
        values = (np.concatenate(kept_vals) if kept_vals
                  else np.empty(0, dtype=np.float64))
        np.cumsum(indptr, out=indptr)

        matrix = sp.csr_matrix((values, col_idx, indptr), shape=(n, n))
        dout = np.asarray(matrix.sum(axis=1)).ravel()
        inv = np.ones(n)
        nonzero = dout > 0
        inv[nonzero] = 1.0 / dout[nonzero]
        matrix = (sp.diags(inv) @ matrix).tocsr()

        io_overlap: Optional[Dict[str, float]] = None
        if overlap_io:
            # The decide/pass-2 tail runs serially (busy == wall); the
            # recovered wall-clock is entirely a pass-1 property.
            tail_seconds = time.perf_counter() - tail0
            busy = (
                overlap_timing.get("ingest_seconds", 0.0)
                + overlap_timing.get("compute_seconds", 0.0)
                + overlap_timing.get("spill_seconds", 0.0)
                + tail_seconds
            )
            wall = overlap_timing.get("pass1_wall_seconds", 0.0) + tail_seconds
            io_overlap = dict(overlap_timing)
            io_overlap["tail_seconds"] = tail_seconds
            io_overlap["busy_seconds"] = busy
            io_overlap["wall_seconds"] = wall
            io_overlap["overlap_saved_seconds"] = busy - wall

        return StreamingKernel2Result(
            matrix=matrix,
            pre_filter_entry_total=float(total),
            eliminated_columns=int(eliminate.sum()),
            batches=batches,
            unique_triples=triples,
            io_overlap=io_overlap,
        )
    finally:
        spill_path.unlink(missing_ok=True)
        if own_scratch:
            import shutil

            shutil.rmtree(scratch, ignore_errors=True)
