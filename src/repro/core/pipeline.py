"""The pipeline driver: sequencing, timing, and contract enforcement.

``Pipeline`` runs the four kernels in order ("each kernel in the
pipeline must be fully completed before the next kernel can begin"),
times each one, computes the edges/second metrics, and verifies the
benchmark's correctness contracts between kernels:

* K0 → K1: edge counts match; K1 output is sorted by start vertex;
* K2: adjacency entries summed to ``M`` before filtering
  ("all the entries in A should sum to M");
* K3: rank vector is finite, length ``N``, and (optionally) matches the
  principal eigenvector per Section IV.D.

Contract checks run *outside* the timed regions.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path
from typing import Optional

import numpy as np

from repro._util import StopWatch
from repro.backends.base import Backend
from repro.backends.registry import get_backend
from repro.core.config import KernelName, PipelineConfig
from repro.core.exceptions import KernelContractError
from repro.core.results import KernelResult, PipelineResult
from repro.edgeio.dataset import EdgeDataset
from repro.sort.inmemory import is_sorted_by_start


class Pipeline:
    """One configured benchmark pipeline, ready to run.

    Parameters
    ----------
    config:
        The run configuration.
    backend:
        Backend instance; resolved from ``config.backend`` when omitted.

    Examples
    --------
    >>> from repro.core.config import PipelineConfig
    >>> result = Pipeline(PipelineConfig(scale=6, seed=3)).run()
    >>> len(result.kernels)
    4
    """

    def __init__(self, config: PipelineConfig, backend: Optional[Backend] = None) -> None:
        self.config = config
        self.backend = backend if backend is not None else get_backend(config.backend)

    # ------------------------------------------------------------------
    def run(self, *, verify: bool = True) -> PipelineResult:
        """Execute Kernels 0–3 and return the aggregated result.

        Parameters
        ----------
        verify:
            Run the inter-kernel contract checks (recommended; disable
            only inside tight benchmark loops where the checks' extra
            file reads would perturb I/O caches).
        """
        config = self.config
        own_dir = config.data_dir is None
        base_dir = (
            Path(tempfile.mkdtemp(prefix="repro-pipeline-"))
            if own_dir
            else Path(config.data_dir)
        )
        base_dir.mkdir(parents=True, exist_ok=True)
        result = PipelineResult(config=config)
        try:
            # ---- Kernel 0: Generate --------------------------------
            watch = StopWatch().start()
            k0_dataset, k0_details = self.backend.kernel0(config, base_dir / "k0")
            k0_seconds = watch.stop()
            result.kernels.append(
                KernelResult(
                    kernel=KernelName.K0_GENERATE,
                    seconds=k0_seconds,
                    edges_processed=config.num_edges,
                    officially_timed=False,
                    details=k0_details,
                )
            )
            if verify:
                self._check_k0(k0_dataset)

            # ---- Kernel 1: Sort ------------------------------------
            watch = StopWatch().start()
            k1_dataset, k1_details = self.backend.kernel1(
                config, k0_dataset, base_dir / "k1"
            )
            k1_seconds = watch.stop()
            result.kernels.append(
                KernelResult(
                    kernel=KernelName.K1_SORT,
                    seconds=k1_seconds,
                    edges_processed=config.num_edges,
                    details=k1_details,
                )
            )
            if verify:
                self._check_k1(k0_dataset, k1_dataset)

            # ---- Kernel 2: Filter ----------------------------------
            watch = StopWatch().start()
            handle, k2_details = self.backend.kernel2(config, k1_dataset)
            k2_seconds = watch.stop()
            result.kernels.append(
                KernelResult(
                    kernel=KernelName.K2_FILTER,
                    seconds=k2_seconds,
                    edges_processed=config.num_edges,
                    details=k2_details,
                )
            )
            if verify:
                self._check_k2(handle)

            # ---- Kernel 3: PageRank --------------------------------
            watch = StopWatch().start()
            rank, k3_details = self.backend.kernel3(config, handle)
            k3_seconds = watch.stop()
            result.kernels.append(
                KernelResult(
                    kernel=KernelName.K3_PAGERANK,
                    seconds=k3_seconds,
                    edges_processed=config.iterations * config.num_edges,
                    details=k3_details,
                )
            )
            result.rank = rank
            if verify:
                self._check_k3(rank)

            if config.validate:
                from repro.pagerank.validate import validate_rank

                report = validate_rank(
                    handle.to_scipy_csr(), rank, damping=config.damping
                )
                result.validation = report.to_dict()
            return result
        finally:
            if own_dir and not config.keep_files:
                shutil.rmtree(base_dir, ignore_errors=True)

    # ------------------------------------------------------------------
    # Contract checks
    # ------------------------------------------------------------------
    def _check_k0(self, dataset: EdgeDataset) -> None:
        expected = self.config.num_edges
        if dataset.num_edges != expected:
            raise KernelContractError(
                f"Kernel 0 wrote {dataset.num_edges} edges, spec requires "
                f"M = {expected}"
            )
        if dataset.num_vertices != self.config.num_vertices:
            raise KernelContractError(
                f"Kernel 0 dataset declares N = {dataset.num_vertices}, "
                f"config requires {self.config.num_vertices}"
            )

    def _check_k1(self, source: EdgeDataset, output: EdgeDataset) -> None:
        if output.num_edges != source.num_edges:
            raise KernelContractError(
                f"Kernel 1 changed the edge count: {source.num_edges} -> "
                f"{output.num_edges}"
            )
        previous_last = None
        for u, _ in output.iter_shards():
            if len(u) == 0:
                continue
            if not is_sorted_by_start(u):
                raise KernelContractError(
                    "Kernel 1 output is not sorted by start vertex within "
                    "a shard"
                )
            if previous_last is not None and u[0] < previous_last:
                raise KernelContractError(
                    "Kernel 1 output is not sorted across shard boundaries"
                )
            previous_last = int(u[-1])

    def _check_k2(self, handle) -> None:
        expected = float(self.config.num_edges)
        total = handle.pre_filter_entry_total
        if abs(total - expected) > 1e-6 * max(expected, 1.0):
            raise KernelContractError(
                f"Kernel 2 adjacency entries sum to {total}, spec requires "
                f"M = {expected}"
            )
        if handle.num_vertices != self.config.num_vertices:
            raise KernelContractError(
                f"Kernel 2 matrix is {handle.num_vertices}-dimensional, "
                f"config requires N = {self.config.num_vertices}"
            )

    def _check_k3(self, rank: np.ndarray) -> None:
        n = self.config.num_vertices
        if rank.shape != (n,):
            raise KernelContractError(
                f"Kernel 3 rank vector has shape {rank.shape}, expected ({n},)"
            )
        if not np.isfinite(rank).all():
            raise KernelContractError("Kernel 3 rank vector has non-finite entries")
        if (rank < 0).any():
            raise KernelContractError("Kernel 3 rank vector has negative entries")


def run_pipeline(
    config: PipelineConfig,
    *,
    backend: Optional[Backend] = None,
    verify: bool = True,
) -> PipelineResult:
    """Convenience wrapper: build a :class:`Pipeline` and run it.

    Examples
    --------
    >>> from repro.core.config import PipelineConfig
    >>> res = run_pipeline(PipelineConfig(scale=6, seed=1, backend="numpy"))
    >>> res.kernel(KernelName.K3_PAGERANK).edges_processed
    20480
    """
    return Pipeline(config, backend=backend).run(verify=verify)
