"""The pipeline façade: a configured benchmark run, ready to execute.

.. deprecated::
    ``Pipeline`` and :func:`run_pipeline` are compatibility shims for
    the pre-:mod:`repro.api` imperative surface.  They keep working
    (and are what the API runner itself calls), but new code should
    describe work as a :class:`repro.api.RunSpec` and hand it to
    :func:`repro.api.execute_spec` or a
    :class:`repro.service.BenchmarkService` — one declarative surface
    for runs, sweeps, and concurrent clients.

``Pipeline`` is a thin shim over the stage-graph machinery: it
builds the benchmark's default :class:`~repro.core.stages.ExecutionPlan`
and hands it to the execution strategy named by ``config.execution``
(serial / streaming / parallel / async — see
:mod:`repro.core.executor` and :mod:`repro.core.async_executor`).
Sequencing ("each kernel in the pipeline must be fully completed before
the next kernel can begin"), per-kernel timing, and the four
inter-kernel contracts all live in the plan and executors, so every
strategy enforces them identically:

* K0 → K1: edge counts match; K1 output is sorted by start vertex;
* K2: adjacency entries summed to ``M`` before filtering
  ("all the entries in A should sum to M");
* K3: rank vector is finite, length ``N``, and (optionally) matches the
  principal eigenvector per Section IV.D.

Contract checks run *outside* the timed regions.
"""

from __future__ import annotations

from typing import Optional

from repro.backends.base import Backend
from repro.backends.registry import get_backend
from repro.core.config import PipelineConfig
from repro.core.executor import get_executor
from repro.core.results import PipelineResult
from repro.core.stages import ExecutionPlan, default_plan


class Pipeline:
    """One configured benchmark pipeline, ready to run.

    Parameters
    ----------
    config:
        The run configuration; ``config.execution`` selects the
        strategy.
    backend:
        Backend instance; resolved from ``config.backend`` when omitted.
    plan:
        Stage graph override (defaults to the benchmark's four-stage
        plan with all contracts attached).

    Examples
    --------
    >>> from repro.core.config import PipelineConfig
    >>> result = Pipeline(PipelineConfig(scale=6, seed=3)).run()
    >>> len(result.kernels)
    4
    """

    def __init__(
        self,
        config: PipelineConfig,
        backend: Optional[Backend] = None,
        plan: Optional[ExecutionPlan] = None,
    ) -> None:
        self.config = config
        self.backend = backend if backend is not None else get_backend(config.backend)
        self.plan = plan if plan is not None else default_plan()

    # ------------------------------------------------------------------
    def run(self, *, verify: bool = True) -> PipelineResult:
        """Execute Kernels 0–3 and return the aggregated result.

        Parameters
        ----------
        verify:
            Run the inter-kernel contract checks (recommended; disable
            only inside tight benchmark loops where the checks' extra
            file reads would perturb I/O caches).
        """
        executor = get_executor(self.config.execution, self.plan)
        return executor.execute(self.config, self.backend, verify=verify)


def run_pipeline(
    config: PipelineConfig,
    *,
    backend: Optional[Backend] = None,
    verify: bool = True,
) -> PipelineResult:
    """Convenience wrapper: build a :class:`Pipeline` and run it.

    Examples
    --------
    >>> from repro.core.config import KernelName, PipelineConfig
    >>> res = run_pipeline(PipelineConfig(scale=6, seed=1, backend="numpy"))
    >>> res.kernel(KernelName.K3_PAGERANK).edges_processed
    20480
    """
    return Pipeline(config, backend=backend).run(verify=verify)
