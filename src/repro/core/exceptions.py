"""Pipeline-level exceptions."""

from __future__ import annotations


class PipelineError(Exception):
    """Base class for pipeline failures."""


class KernelContractError(PipelineError):
    """A kernel produced output violating the benchmark specification
    (e.g. Kernel 1 output not sorted, Kernel 2 matrix entries not
    summing to M, rank vector containing non-finite values)."""


class ValidationError(PipelineError):
    """The PageRank result failed the eigenvector cross-check of paper
    Section IV.D."""
