"""Pipeline-level exceptions."""

from __future__ import annotations


class PipelineError(Exception):
    """Base class for pipeline failures."""


class KernelContractError(PipelineError):
    """A kernel produced output violating the benchmark specification
    (e.g. Kernel 1 output not sorted, Kernel 2 matrix entries not
    summing to M, rank vector containing non-finite values)."""


class ValidationError(PipelineError):
    """The PageRank result failed the eigenvector cross-check of paper
    Section IV.D."""


class ExecutorCapabilityError(PipelineError, ValueError):
    """The selected execution strategy needs a capability the backend
    does not declare (e.g. ``--execution streaming`` with a backend that
    cannot adopt an externally built CSR matrix).

    Also a ``ValueError`` so the CLI reports it as a usage error instead
    of a traceback.
    """
