"""Pluggable execution strategies over the benchmark's stage graph.

One :class:`~repro.core.stages.ExecutionPlan` — three (today) ways to
run it:

* :class:`SerialExecutor` — every kernel through the backend's serial
  implementation, fully in memory (the original ``Pipeline.run``);
* :class:`StreamingExecutor` — Kernel 2 through the out-of-core
  :func:`repro.core.streaming.streaming_kernel2`, memory bounded by
  ``O(batch + N)``;
* :class:`ShardParallelExecutor` — Kernels 2+3 through the distributed
  :func:`repro.parallel.driver.run_parallel_pipeline`, with the
  communication :class:`~repro.parallel.traffic.TrafficLog` merged into
  the Kernel 3 result details.

The base class owns everything strategy-independent: scratch-directory
lifecycle, per-stage wall-clock timing, artifact-cache routing for
Kernels 0/1, contract enforcement (outside timed regions), throughput
attribution, and the optional eigenvector validation.  A subclass only
decides *how* each stage's kernel is computed — which is the point: a
new scenario (async, multi-node, a new backend family) is a new
executor, not a fourth pipeline fork.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path
from typing import Dict, Optional, Tuple, Type

import numpy as np
import scipy.sparse as sp

from repro._util import StopWatch
from repro.backends.base import AdjacencyHandle, Backend, Details
from repro.backends.registry import get_backend
from repro.core.artifacts import ArtifactCache, k0_cache_fields, k1_cache_fields
from repro.core.config import EXECUTION_MODES, KernelName, PipelineConfig
from repro.core.exceptions import ExecutorCapabilityError
from repro.core.results import KernelResult, PipelineResult
from repro.core.stages import (
    ARTIFACT_ADJACENCY,
    ARTIFACT_K0,
    ARTIFACT_K1,
    ARTIFACT_RANK,
    ExecutionPlan,
    Stage,
    StageContext,
    default_plan,
)

StageOutput = Tuple[object, Details]


class Executor:
    """Base execution strategy: the shared run loop.

    Parameters
    ----------
    plan:
        Stage graph to execute; the benchmark's canonical four-stage
        plan when omitted.
    """

    #: Registry/config name of the strategy.
    name: str = ""
    #: Capability a backend must declare for this strategy.
    required_capability: str = "serial"

    def __init__(self, plan: Optional[ExecutionPlan] = None) -> None:
        self.plan = plan if plan is not None else default_plan()

    # ------------------------------------------------------------------
    def execute(
        self,
        config: PipelineConfig,
        backend: Optional[Backend] = None,
        *,
        verify: bool = True,
    ) -> PipelineResult:
        """Run the plan and return the aggregated result.

        Parameters
        ----------
        config:
            The run configuration (``config.execution`` is *not*
            consulted here — calling an executor runs that executor).
        backend:
            Backend instance; resolved from ``config.backend`` when
            omitted.
        verify:
            Enforce each stage's :class:`~repro.core.stages.Contract`
            (outside the timed regions).
        """
        backend = backend if backend is not None else get_backend(config.backend)
        if self.required_capability not in backend.capabilities:
            raise ExecutorCapabilityError(
                f"backend {backend.name!r} does not declare the "
                f"{self.required_capability!r} capability required by the "
                f"{self.name or type(self).__name__} execution strategy; "
                f"declared: {sorted(backend.capabilities)}"
            )

        own_dir = config.data_dir is None
        base_dir = (
            Path(tempfile.mkdtemp(prefix="repro-pipeline-"))
            if own_dir
            else Path(config.data_dir)
        )
        base_dir.mkdir(parents=True, exist_ok=True)
        ctx = StageContext(config=config, backend=backend, base_dir=base_dir)
        result = PipelineResult(config=config)
        try:
            for stage in self.plan.stages:
                watch = StopWatch().start()
                output, details = self._run_stage(stage, ctx)
                seconds = watch.stop()
                # A strategy that cannot be timed from outside (the
                # shard-parallel K2/K3 phases run fused inside one
                # per-rank program) reports its own clock instead.
                seconds = float(details.get("measured_seconds", seconds))
                ctx.artifacts[stage.provides] = output
                edges = int(
                    details.get("edges_processed", stage.nominal_edges(config))
                )
                result.kernels.append(
                    KernelResult(
                        kernel=stage.kernel,
                        seconds=seconds,
                        edges_processed=edges,
                        officially_timed=stage.officially_timed,
                        details=details,
                    )
                )
                if verify and stage.contract is not None:
                    stage.contract.check(ctx)

            rank = ctx.artifacts.get(ARTIFACT_RANK)
            if rank is not None:
                result.rank = np.asarray(rank)
            if config.validate:
                result.validation = self._validate(ctx)
            return result
        finally:
            if own_dir and not config.keep_files:
                shutil.rmtree(base_dir, ignore_errors=True)

    # ------------------------------------------------------------------
    def _run_stage(self, stage: Stage, ctx: StageContext) -> StageOutput:
        """Dispatch one stage to the strategy's kernel routing."""
        handlers = {
            KernelName.K0_GENERATE: self._run_generate,
            KernelName.K1_SORT: self._run_sort,
            KernelName.K2_FILTER: self._run_filter,
            KernelName.K3_PAGERANK: self._run_pagerank,
        }
        try:
            handler = handlers[stage.kernel]
        except KeyError:
            raise KeyError(
                f"{type(self).__name__} has no handler for {stage.kernel.value}"
            ) from None
        return handler(ctx)

    def _validate(self, ctx: StageContext) -> Dict[str, object]:
        """The Section IV.D eigenvector cross-check (small scales)."""
        from repro.pagerank.validate import validate_rank

        handle = ctx.require(ARTIFACT_ADJACENCY)
        rank = np.asarray(ctx.require(ARTIFACT_RANK))
        report = validate_rank(
            handle.to_scipy_csr(), rank, damping=ctx.config.damping
        )
        return report.to_dict()

    # -- kernel routing (overridden by strategies) ---------------------
    @staticmethod
    def _maybe_cached(ctx, kind, fields, producer) -> StageOutput:
        """Route a dataset-producing stage through the artifact cache
        when ``config.cache_dir`` is set, else into the run directory."""
        if ctx.config.cache_dir is not None:
            cache = ArtifactCache(ctx.config.cache_dir)
            return cache.dataset(kind, fields, producer)
        return producer(ctx.base_dir / kind)

    def _run_generate(self, ctx: StageContext) -> StageOutput:
        config = ctx.config
        return self._maybe_cached(
            ctx,
            "k0",
            k0_cache_fields(config, ctx.backend.name),
            lambda out_dir: ctx.backend.kernel0(config, out_dir),
        )

    def _run_sort(self, ctx: StageContext) -> StageOutput:
        config = ctx.config
        source = ctx.require(ARTIFACT_K0)
        return self._maybe_cached(
            ctx,
            "k1",
            k1_cache_fields(config, ctx.backend.name),
            lambda out_dir: ctx.backend.kernel1(config, source, out_dir),
        )

    def _run_filter(self, ctx: StageContext) -> StageOutput:
        return ctx.backend.kernel2(ctx.config, ctx.require(ARTIFACT_K1))

    def _run_pagerank(self, ctx: StageContext) -> StageOutput:
        return ctx.backend.kernel3(ctx.config, ctx.require(ARTIFACT_ADJACENCY))


class SerialExecutor(Executor):
    """Current behaviour: all four kernels through the serial backend."""

    name = "serial"
    required_capability = "serial"


class StreamingExecutor(Executor):
    """Out-of-core Kernel 2; everything else serial.

    Kernel 2 streams the sorted Kernel 1 dataset in
    ``config.streaming_batch_edges``-sized batches (peak memory
    ``O(batch + N)`` instead of ``O(M + N)``) and hands the resulting
    CSR matrix back to the backend via
    :meth:`~repro.backends.base.Backend.adjacency_from_csr`.
    """

    name = "streaming"
    required_capability = "streaming"

    def _run_filter(self, ctx: StageContext) -> StageOutput:
        from repro.core.streaming import streaming_kernel2

        config = ctx.config
        source = ctx.require(ARTIFACT_K1)
        streamed = streaming_kernel2(
            source,
            batch_edges=config.streaming_batch_edges,
            scratch_dir=ctx.base_dir / "k2-scratch",
        )
        handle = ctx.backend.adjacency_from_csr(
            streamed.matrix, streamed.pre_filter_entry_total
        )
        details: Details = {
            "execution": "streaming",
            "batch_edges": config.streaming_batch_edges,
            "batches": streamed.batches,
            "unique_triples": streamed.unique_triples,
            "eliminated_columns": streamed.eliminated_columns,
            "pre_filter_entry_total": streamed.pre_filter_entry_total,
            "nnz": handle.nnz,
            # Edge records actually ingested by pass 1 — may differ from
            # config.num_edges when contracts are disabled and the
            # dataset does not hold exactly M edges.
            "edges_processed": int(streamed.pre_filter_entry_total),
        }
        return handle, details


class _ParallelAdjacency(AdjacencyHandle):
    """Contract/validation view over the distributed Kernel 2 output.

    The distributed matrix lives sharded across (simulated) ranks and is
    never gathered; this handle exposes the aggregate facts the
    :class:`~repro.core.stages.FilterContract` needs, and rebuilds the
    matrix out-of-core only if validation explicitly asks for it.
    """

    def __init__(
        self,
        k1_dataset,
        num_vertices: int,
        pre_filter_total: float,
        nnz: int,
    ) -> None:
        self._k1_dataset = k1_dataset
        self._n = int(num_vertices)
        self._pre_filter_total = float(pre_filter_total)
        self._nnz = int(nnz)

    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def nnz(self) -> int:
        return self._nnz

    @property
    def pre_filter_entry_total(self) -> float:
        return self._pre_filter_total

    def to_scipy_csr(self) -> sp.csr_matrix:
        from repro.core.streaming import streaming_kernel2

        return streaming_kernel2(self._k1_dataset).matrix


class ShardParallelExecutor(Executor):
    """Kernels 2+3 through the distributed (simulated-rank) driver.

    The driver runs exchange → Kernel 2 → Kernel 3 as one fused per-rank
    program during the Kernel 2 stage; per-rank phase clocks split the
    wall-clock back into the two kernels (``measured_seconds`` in each
    stage's details, honoured by the base executor) so sweep records and
    figures report real per-kernel throughput.  The driver's
    :class:`~repro.parallel.traffic.TrafficLog` summary lands in the
    Kernel 3 details.
    """

    name = "parallel"
    required_capability = "parallel"

    def _run_filter(self, ctx: StageContext) -> StageOutput:
        from repro.parallel.driver import run_parallel_pipeline

        config = ctx.config
        source = ctx.require(ARTIFACT_K1)
        read_watch = StopWatch().start()
        u, v = source.read_all()
        read_seconds = read_watch.stop()
        run = run_parallel_pipeline(
            u,
            v,
            source.num_vertices,
            num_ranks=config.parallel_ranks,
            initial_rank=ctx.backend.initial_rank(config),
            damping=config.damping,
            iterations=config.iterations,
            formula=config.formula,
            executor="sim",
        )
        ctx.scratch["parallel_run"] = run
        handle = _ParallelAdjacency(
            source,
            source.num_vertices,
            # Indexed, not .get(): a driver that stops reporting the
            # total must fail loudly, not slip past FilterContract.
            run.kernel2_details["pre_filter_entry_total"],
            sum(run.local_nnz),
        )
        details: Details = dict(run.kernel2_details)
        details.update(
            {
                "execution": "parallel",
                "num_ranks": run.num_ranks,
                "local_nnz": list(run.local_nnz),
                "edges_processed": len(u),
                # File read + slowest rank's exchange+K2 phase; the K3
                # phase (also computed by the fused run) is reported by
                # the K3 stage from its own phase clock.
                "measured_seconds": read_seconds + run.kernel2_seconds,
            }
        )
        return handle, details

    def _run_pagerank(self, ctx: StageContext) -> StageOutput:
        run = ctx.scratch["parallel_run"]
        config = ctx.config
        details: Details = {
            "execution": "parallel",
            "num_ranks": run.num_ranks,
            "iterations": config.iterations,
            "damping": config.damping,
            "rank_sum": float(run.rank_vector.sum()),
            "traffic": dict(run.traffic),
            "measured_seconds": run.kernel3_seconds,
        }
        return run.rank_vector, details


_EXECUTORS: Dict[str, Type[Executor]] = {
    SerialExecutor.name: SerialExecutor,
    StreamingExecutor.name: StreamingExecutor,
    ShardParallelExecutor.name: ShardParallelExecutor,
}

# The registry and the config-level mode list (which gates
# PipelineConfig.execution and the CLI choices) must not drift: fail at
# import, not at first use, when a strategy is added to only one.
if set(_EXECUTORS) != set(EXECUTION_MODES):  # pragma: no cover
    raise RuntimeError(
        f"executor registry {sorted(_EXECUTORS)} out of sync with "
        f"config.EXECUTION_MODES {sorted(EXECUTION_MODES)}"
    )


def available_executions() -> Tuple[str, ...]:
    """Registered execution-strategy names, in definition order."""
    return tuple(_EXECUTORS)


def get_executor(name: str, plan: Optional[ExecutionPlan] = None) -> Executor:
    """Instantiate an execution strategy by name.

    Raises
    ------
    KeyError
        With the list of valid names when ``name`` is unknown.
    """
    try:
        cls = _EXECUTORS[name]
    except KeyError:
        valid = ", ".join(available_executions())
        raise KeyError(
            f"unknown execution strategy {name!r}; available: {valid}"
        ) from None
    return cls(plan)
