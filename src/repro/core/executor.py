"""Pluggable execution strategies over the benchmark's stage graph.

One :class:`~repro.core.stages.ExecutionPlan` — four ways to run it:

* :class:`SerialExecutor` — every kernel through the backend's serial
  implementation, fully in memory (the original ``Pipeline.run``);
* :class:`StreamingExecutor` — Kernel 2 through the out-of-core
  :func:`repro.core.streaming.streaming_kernel2`, memory bounded by
  ``O(batch + N)``;
* :class:`ShardParallelExecutor` — Kernels 2+3 through the distributed
  :func:`repro.parallel.driver.run_parallel_pipeline`, with the
  communication :class:`~repro.parallel.traffic.TrafficLog` merged into
  the Kernel 3 result details;
* :class:`~repro.core.async_executor.AsyncExecutor` — stages decomposed
  into a dependency-aware task graph (:mod:`repro.core.scheduler`) so
  stage I/O overlaps with compute (registered lazily to avoid a module
  cycle).

The base class owns everything strategy-independent: scratch-directory
lifecycle, per-stage wall-clock timing, artifact-cache routing for
Kernels 0/1 (and the Kernel 2 CSR spill), contract enforcement (outside
timed regions), throughput attribution, and the optional eigenvector
validation.  A subclass only decides *how* each stage's kernel is
computed — which is the point: a new scenario (multi-node, a new backend
family) is a new executor, not a fifth pipeline fork.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Type, Union

import numpy as np
import scipy.sparse as sp

from repro._util import StopWatch
from repro.core import trace
from repro.backends.base import AdjacencyHandle, Backend, Details
from repro.backends.registry import get_backend
from repro.core.artifacts import (
    ArtifactCache,
    cache_key,
    k0_cache_fields,
    k1_cache_fields,
    k2_cache_fields,
)
from repro.core.config import EXECUTION_MODES, KernelName, PipelineConfig
from repro.core.exceptions import ExecutorCapabilityError
from repro.core.results import KernelResult, PipelineResult
from repro.core.stages import (
    ARTIFACT_ADJACENCY,
    ARTIFACT_K0,
    ARTIFACT_K1,
    ARTIFACT_RANK,
    ExecutionPlan,
    Stage,
    StageContext,
    default_plan,
)

StageOutput = Tuple[object, Details]


class Executor:
    """Base execution strategy: the shared run loop.

    Parameters
    ----------
    plan:
        Stage graph to execute; the benchmark's canonical four-stage
        plan when omitted.
    """

    #: Registry/config name of the strategy.
    name: str = ""
    #: Capability a backend must declare for this strategy.
    required_capability: str = "serial"
    #: Arithmetic path of this strategy's Kernel 2 (part of the K2
    #: cache key — see :func:`repro.core.artifacts.k2_cache_fields`).
    k2_cache_variant: str = "backend-serial"

    def __init__(self, plan: Optional[ExecutionPlan] = None) -> None:
        self.plan = plan if plan is not None else default_plan()

    # ------------------------------------------------------------------
    def execute(
        self,
        config: PipelineConfig,
        backend: Optional[Backend] = None,
        *,
        verify: bool = True,
    ) -> PipelineResult:
        """Run the plan and return the aggregated result.

        Parameters
        ----------
        config:
            The run configuration (``config.execution`` is *not*
            consulted here — calling an executor runs that executor).
        backend:
            Backend instance; resolved from ``config.backend`` when
            omitted.
        verify:
            Enforce each stage's :class:`~repro.core.stages.Contract`
            (outside the timed regions).
        """
        backend = self._resolve_backend(config, backend)
        own_dir = config.data_dir is None
        base_dir = (
            Path(tempfile.mkdtemp(prefix="repro-pipeline-"))
            if own_dir
            else Path(config.data_dir)
        )
        base_dir.mkdir(parents=True, exist_ok=True)
        ctx = StageContext(config=config, backend=backend, base_dir=base_dir)
        result = PipelineResult(config=config)
        collector = trace.TraceCollector() if config.trace else None
        try:
            with trace.activate(collector), \
                    trace.span("pipeline", cat="run",
                               execution=self.name or type(self).__name__,
                               backend=backend.name, scale=config.scale):
                wall = StopWatch().start()
                self._run_plan(ctx, result, verify=verify)
                result.wall_seconds = wall.stop()
                rank = ctx.artifacts.get(ARTIFACT_RANK)
                if rank is not None:
                    result.rank = np.asarray(rank)
                if config.validate:
                    with trace.span("validate", cat="verify"):
                        result.validation = self._validate(ctx)
            if collector is not None:
                result.trace = collector.trace_doc()
            return result
        finally:
            ctx.release_locks()
            if own_dir and not config.keep_files:
                shutil.rmtree(base_dir, ignore_errors=True)

    def _resolve_backend(
        self, config: PipelineConfig, backend: Optional[Backend]
    ) -> Backend:
        """Resolve the backend and enforce the strategy capability."""
        backend = backend if backend is not None else get_backend(config.backend)
        if self.required_capability not in backend.capabilities:
            raise ExecutorCapabilityError(
                f"backend {backend.name!r} does not declare the "
                f"{self.required_capability!r} capability required by the "
                f"{self.name or type(self).__name__} execution strategy; "
                f"declared: {sorted(backend.capabilities)}"
            )
        return backend

    def _run_plan(
        self, ctx: StageContext, result: PipelineResult, *, verify: bool
    ) -> None:
        """Run every stage in plan order, timing each from outside.

        The async executor overrides this with a task-graph run; it must
        honour the same obligations — artifacts stored under each
        stage's ``provides`` key, one :class:`KernelResult` per stage in
        plan order, contracts checked outside timed regions when
        ``verify`` is set.
        """
        for stage in self.plan.stages:
            with trace.span(f"stage:{stage.kernel.value}", cat="stage") as sp:
                watch = StopWatch().start()
                output, details = self._run_stage(stage, ctx)
                seconds = watch.stop()
                # A strategy that cannot be timed from outside (the
                # shard-parallel K2/K3 phases run fused inside one
                # per-rank program) reports its own clock instead.
                seconds = float(details.get("measured_seconds", seconds))
                sp.set(seconds=seconds,
                       officially_timed=stage.officially_timed)
            ctx.artifacts[stage.provides] = output
            edges = int(
                details.get("edges_processed", stage.nominal_edges(ctx.config))
            )
            result.kernels.append(
                KernelResult(
                    kernel=stage.kernel,
                    seconds=seconds,
                    edges_processed=edges,
                    officially_timed=stage.officially_timed,
                    details=details,
                )
            )
            if verify and stage.contract is not None:
                with trace.span(f"contract:{stage.kernel.value}",
                                cat="verify"):
                    stage.contract.check(ctx)

    # ------------------------------------------------------------------
    def _run_stage(self, stage: Stage, ctx: StageContext) -> StageOutput:
        """Dispatch one stage to the strategy's kernel routing."""
        handlers = {
            KernelName.K0_GENERATE: self._run_generate,
            KernelName.K1_SORT: self._run_sort,
            KernelName.K2_FILTER: self._run_filter,
            KernelName.K3_PAGERANK: self._run_pagerank,
        }
        try:
            handler = handlers[stage.kernel]
        except KeyError:
            raise KeyError(
                f"{type(self).__name__} has no handler for {stage.kernel.value}"
            ) from None
        return handler(ctx)

    def _validate(self, ctx: StageContext) -> Dict[str, object]:
        """The Section IV.D eigenvector cross-check (small scales)."""
        from repro.pagerank.validate import validate_rank

        handle = ctx.require(ARTIFACT_ADJACENCY)
        rank = np.asarray(ctx.require(ARTIFACT_RANK))
        report = validate_rank(
            handle.to_scipy_csr(), rank, damping=ctx.config.damping
        )
        return report.to_dict()

    # -- kernel routing (overridden by strategies) ---------------------
    @staticmethod
    def _maybe_cached(ctx, kind, fields, producer) -> StageOutput:
        """Route a dataset-producing stage through the artifact cache
        when ``config.cache_dir`` is set, else into the run directory.

        The entry's shared lock is held for the rest of the run (via
        ``ctx.held_locks``): later stages read the dataset's shards
        lazily, and a concurrent ``prune`` must not evict them
        mid-read."""
        if ctx.config.cache_dir is not None:
            cache = ArtifactCache(
                ctx.config.cache_dir, mmap=ctx.config.cache_mmap
            )
            return cache.dataset(kind, fields, producer, hold=ctx.held_locks)
        return producer(ctx.base_dir / kind)

    def _run_generate(self, ctx: StageContext) -> StageOutput:
        config = ctx.config
        return self._maybe_cached(
            ctx,
            "k0",
            k0_cache_fields(config, ctx.backend.name),
            lambda out_dir: ctx.backend.kernel0(config, out_dir),
        )

    def _run_sort(self, ctx: StageContext) -> StageOutput:
        config = ctx.config
        source = ctx.require(ARTIFACT_K0)
        return self._maybe_cached(
            ctx,
            "k1",
            k1_cache_fields(config, ctx.backend.name),
            lambda out_dir: ctx.backend.kernel1(config, source, out_dir),
        )

    def _run_filter(self, ctx: StageContext) -> StageOutput:
        return self._filter_with_cache(ctx, self._compute_filter)

    def _compute_filter(self, ctx: StageContext) -> StageOutput:
        """Actually build the filtered matrix (strategy-specific)."""
        return ctx.backend.kernel2(ctx.config, ctx.require(ARTIFACT_K1))

    def _filter_with_cache(
        self,
        ctx: StageContext,
        compute: Callable[[StageContext], StageOutput],
    ) -> StageOutput:
        """Route Kernel 2 through the CSR artifact cache when enabled.

        The filtered matrix is a pure function of the Kernel 1 dataset
        (same key fields plus the producing backend), so ``repeats``
        sweeps with a warm cache skip the K2 rebuild entirely.  Needs
        :meth:`~repro.backends.base.Backend.adjacency_from_csr` to adopt
        the reloaded matrix, so backends without the ``streaming``
        capability always compute.  On a miss the spill write happens
        *after* the measured compute (``measured_seconds`` carries the
        honest kernel time); its cost is recorded separately.
        """
        config = ctx.config
        if config.cache_dir is None or "streaming" not in ctx.backend.capabilities:
            return compute(ctx)
        cache = ArtifactCache(config.cache_dir)
        fields = k2_cache_fields(
            config, ctx.backend.name, variant=self.k2_cache_variant
        )
        key = cache_key(fields)
        cached = cache.load_csr("k2", fields)
        if cached is not None:
            matrix, meta = cached
            handle = ctx.backend.adjacency_from_csr(
                matrix, float(meta["pre_filter_entry_total"])
            )
            details: Details = {
                "artifact_cache": "hit",
                "artifact_cache_key": key,
                "nnz": handle.nnz,
                "pre_filter_entry_total": handle.pre_filter_entry_total,
                # The matrix is a pure function of the K1 dataset, so
                # the ingested-edge count equals the pre-filter total
                # the producing run recorded.
                "edges_processed": int(float(meta["pre_filter_entry_total"])),
            }
            if meta.get("eliminated_columns") is not None:
                details["eliminated_columns"] = meta["eliminated_columns"]
            return handle, details
        watch = StopWatch().start()
        handle, details = compute(ctx)
        compute_seconds = watch.stop()
        details = dict(details)
        details.setdefault("measured_seconds", compute_seconds)
        # Streaming computes report eliminated_columns directly; serial
        # backends report the two elimination classes separately.
        eliminated = details.get("eliminated_columns")
        if eliminated is None and "supernode_columns" in details:
            eliminated = int(details["supernode_columns"]) + int(
                details.get("leaf_columns", 0)
            )
        spill_watch = StopWatch().start()
        cache.store_csr(
            "k2",
            fields,
            handle.to_scipy_csr(),
            {
                "pre_filter_entry_total": float(handle.pre_filter_entry_total),
                "eliminated_columns": eliminated,
            },
        )
        details["artifact_cache"] = "miss"
        details["artifact_cache_key"] = key
        details["k2_cache_store_seconds"] = spill_watch.stop()
        return handle, details

    def _run_pagerank(self, ctx: StageContext) -> StageOutput:
        return ctx.backend.kernel3(ctx.config, ctx.require(ARTIFACT_ADJACENCY))


def adopt_streamed_matrix(ctx: StageContext, streamed) -> StageOutput:
    """Adopt a :func:`~repro.core.streaming.streaming_kernel2` result
    into the backend's adjacency handle, with the standard detail set.

    Shared by the streaming and async executors so Kernel 2's reported
    metrics cannot drift between them; callers add strategy-specific
    keys on top.
    """
    handle = ctx.backend.adjacency_from_csr(
        streamed.matrix, streamed.pre_filter_entry_total
    )
    details: Details = {
        "batch_edges": ctx.config.streaming_batch_edges,
        "batches": streamed.batches,
        "unique_triples": streamed.unique_triples,
        "eliminated_columns": streamed.eliminated_columns,
        "pre_filter_entry_total": streamed.pre_filter_entry_total,
        "nnz": handle.nnz,
        # Edge records actually ingested by pass 1 — may differ from
        # config.num_edges when contracts are disabled and the
        # dataset does not hold exactly M edges.
        "edges_processed": int(streamed.pre_filter_entry_total),
    }
    if streamed.io_overlap is not None:
        details["io_overlap"] = dict(streamed.io_overlap)
    return handle, details


class SerialExecutor(Executor):
    """Current behaviour: all four kernels through the serial backend."""

    name = "serial"
    required_capability = "serial"


class StreamingExecutor(Executor):
    """Out-of-core Kernel 2; everything else serial.

    Kernel 2 streams the sorted Kernel 1 dataset in
    ``config.streaming_batch_edges``-sized batches (peak memory
    ``O(batch + N)`` instead of ``O(M + N)``) and hands the resulting
    CSR matrix back to the backend via
    :meth:`~repro.backends.base.Backend.adjacency_from_csr`.
    """

    name = "streaming"
    required_capability = "streaming"
    k2_cache_variant = "streaming-csr"

    def _compute_filter(self, ctx: StageContext) -> StageOutput:
        from repro.core.streaming import streaming_kernel2

        streamed = streaming_kernel2(
            ctx.require(ARTIFACT_K1),
            batch_edges=ctx.config.streaming_batch_edges,
            scratch_dir=ctx.base_dir / "k2-scratch",
        )
        handle, details = adopt_streamed_matrix(ctx, streamed)
        details["execution"] = "streaming"
        return handle, details


class _ParallelAdjacency(AdjacencyHandle):
    """Contract/validation view over the distributed Kernel 2 output.

    The distributed matrix lives sharded across (simulated) ranks and is
    never gathered; this handle exposes the aggregate facts the
    :class:`~repro.core.stages.FilterContract` needs, and rebuilds the
    matrix out-of-core only if validation explicitly asks for it.
    """

    def __init__(
        self,
        k1_dataset,
        num_vertices: int,
        pre_filter_total: float,
        nnz: int,
    ) -> None:
        self._k1_dataset = k1_dataset
        self._n = int(num_vertices)
        self._pre_filter_total = float(pre_filter_total)
        self._nnz = int(nnz)

    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def nnz(self) -> int:
        return self._nnz

    @property
    def pre_filter_entry_total(self) -> float:
        return self._pre_filter_total

    def to_scipy_csr(self) -> sp.csr_matrix:
        from repro.core.streaming import streaming_kernel2

        return streaming_kernel2(self._k1_dataset).matrix


class ShardParallelExecutor(Executor):
    """Kernels 2+3 through the distributed (simulated-rank) driver.

    The driver runs exchange → Kernel 2 → Kernel 3 as one fused per-rank
    program during the Kernel 2 stage; per-rank phase clocks split the
    wall-clock back into the two kernels (``measured_seconds`` in each
    stage's details, honoured by the base executor) so sweep records and
    figures report real per-kernel throughput.  The driver's
    :class:`~repro.parallel.traffic.TrafficLog` summary lands in the
    Kernel 3 details.
    """

    name = "parallel"
    required_capability = "parallel"

    def _run_filter(self, ctx: StageContext) -> StageOutput:
        from repro.parallel.driver import run_parallel_pipeline

        config = ctx.config
        source = ctx.require(ARTIFACT_K1)
        read_watch = StopWatch().start()
        u, v = source.read_all()
        read_seconds = read_watch.stop()
        run = run_parallel_pipeline(
            u,
            v,
            source.num_vertices,
            num_ranks=config.parallel_ranks,
            initial_rank=ctx.backend.initial_rank(config),
            damping=config.damping,
            iterations=config.iterations,
            formula=config.formula,
            executor=config.parallel_executor,
        )
        ctx.scratch["parallel_run"] = run
        handle = _ParallelAdjacency(
            source,
            source.num_vertices,
            # Indexed, not .get(): a driver that stops reporting the
            # total must fail loudly, not slip past FilterContract.
            run.kernel2_details["pre_filter_entry_total"],
            sum(run.local_nnz),
        )
        details: Details = dict(run.kernel2_details)
        details.update(
            {
                "execution": "parallel",
                "parallel_executor": config.parallel_executor,
                "num_ranks": run.num_ranks,
                "local_nnz": list(run.local_nnz),
                "edges_processed": len(u),
                # File read + slowest rank's exchange+K2 phase; the K3
                # phase (also computed by the fused run) is reported by
                # the K3 stage from its own phase clock.
                "measured_seconds": read_seconds + run.kernel2_seconds,
            }
        )
        return handle, details

    def _run_pagerank(self, ctx: StageContext) -> StageOutput:
        run = ctx.scratch["parallel_run"]
        config = ctx.config
        details: Details = {
            "execution": "parallel",
            "num_ranks": run.num_ranks,
            "iterations": config.iterations,
            "damping": config.damping,
            "rank_sum": float(run.rank_vector.sum()),
            "traffic": dict(run.traffic),
            "measured_seconds": run.kernel3_seconds,
        }
        return run.rank_vector, details


# The async executor lives in its own module (which imports this one for
# the base class), so its registry entry is a lazy "module:Class" string
# resolved on first use — a concrete class reference here would be an
# import cycle.
_EXECUTORS: Dict[str, Union[Type[Executor], str]] = {
    SerialExecutor.name: SerialExecutor,
    StreamingExecutor.name: StreamingExecutor,
    ShardParallelExecutor.name: ShardParallelExecutor,
    "async": "repro.core.async_executor:AsyncExecutor",
}

# The registry and the config-level mode list (which gates
# PipelineConfig.execution and the CLI choices) must not drift: fail at
# import, not at first use, when a strategy is added to only one.
if set(_EXECUTORS) != set(EXECUTION_MODES):  # pragma: no cover
    raise RuntimeError(
        f"executor registry {sorted(_EXECUTORS)} out of sync with "
        f"config.EXECUTION_MODES {sorted(EXECUTION_MODES)}"
    )


def available_executions() -> Tuple[str, ...]:
    """Registered execution-strategy names, in definition order."""
    return tuple(_EXECUTORS)


def get_executor(name: str, plan: Optional[ExecutionPlan] = None) -> Executor:
    """Instantiate an execution strategy by name.

    Raises
    ------
    KeyError
        With the list of valid names when ``name`` is unknown.
    """
    try:
        cls = _EXECUTORS[name]
    except KeyError:
        valid = ", ".join(available_executions())
        raise KeyError(
            f"unknown execution strategy {name!r}; available: {valid}"
        ) from None
    if isinstance(cls, str):
        import importlib

        module_name, _, attr = cls.partition(":")
        cls = getattr(importlib.import_module(module_name), attr)
        _EXECUTORS[name] = cls  # resolve once
    return cls(plan)
