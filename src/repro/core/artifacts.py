"""Content-addressed artifact cache for Kernel 0/1 outputs.

Sweeps and repeated runs regenerate and re-sort the *same* graph over
and over: the paper's Figures 4–7 grid runs every backend at every
scale, and ``repeats > 1`` multiplies that again.  Kernel 0 and Kernel 1
outputs are pure functions of a small set of config fields, so they can
be cached on disk and reused — turning sweep repeats into (timed) cache
reads and making the uncached cost visible exactly once.

The cache is content-*addressed by inputs*: an entry key is the SHA-256
of the canonical JSON of every config field that influences the bytes
written (scale, seed, generator, shard count, format, …).  Any field
change produces a new key; stale entries are never silently reused.

Entries are produced in a producer-private staging directory (unique
per attempt, so concurrent worker threads sharing one pid cannot
collide) and published with an atomic rename, so concurrent runs
sharing one cache root never observe a half-written entry: a racing
producer that loses the rename simply discards its staging copy and
reads the winner's.
As a second line of defence, :class:`~repro.edgeio.dataset.EdgeDataset`
writes its manifest last and ``open`` refuses a directory without one —
an entry torn by a hard crash reads as a miss, is purged, and is
regenerated.

Eviction (``repro cache prune`` / :meth:`ArtifactCache.prune`) is made
safe against concurrent readers by per-entry advisory lock files
(``<root>/<kind>/<key>.lock``): readers hold a *shared* lock while an
entry is open (the executors keep it for the rest of the run, since
Kernel 1 re-reads the Kernel 0 dataset lazily), and eviction only
deletes an entry after winning a non-blocking *exclusive* lock — a busy
entry is simply skipped and remains charged to the cache budget until
its readers finish.
"""

from __future__ import annotations

import errno
import hashlib
import io
import json
import os
import shutil
import tarfile
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Tuple

try:  # POSIX advisory locks; the lock degrades to a no-op elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

import numpy as np
import scipy.sparse as sp

from repro.backends.base import Details
from repro.core import trace
from repro.core.config import PipelineConfig
from repro.edgeio.dataset import EdgeDataset

#: Producer callback: given the entry directory, build the dataset there.
DatasetProducer = Callable[[Path], Tuple[EdgeDataset, Details]]

#: Sentinel: an entry exists but is provably corrupt (see
#: :meth:`ArtifactCache._open_entry`).
_CORRUPT = object()


def k0_cache_fields(
    config: PipelineConfig, backend_name: Optional[str] = None
) -> Dict[str, object]:
    """Config fields that fully determine the Kernel 0 output bytes.

    The backend name is included because the pure-python backend draws
    from its own generator stream — its edge files differ from the
    numpy-family backends at the same seed.  Pass ``backend_name`` when
    the executing backend was supplied as an instance (it may differ
    from ``config.backend``); defaults to ``config.backend``.
    """
    return {
        "kernel": "k0",
        "scale": config.scale,
        "edge_factor": config.edge_factor,
        "seed": config.seed,
        "generator": config.generator,
        "backend": backend_name if backend_name is not None else config.backend,
        "num_files": config.num_files,
        "vertex_base": config.vertex_base,
        "file_format": config.file_format,
    }


def k1_cache_fields(
    config: PipelineConfig, backend_name: Optional[str] = None
) -> Dict[str, object]:
    """Config fields determining the Kernel 1 output (K0 fields + sort)."""
    fields = k0_cache_fields(config, backend_name)
    fields.update(
        {
            "kernel": "k1",
            "sort_algorithm": config.sort_algorithm,
            "sort_by_end_vertex": config.sort_by_end_vertex,
            "external_sort": config.external_sort,
        }
    )
    return fields


def k2_cache_fields(
    config: PipelineConfig,
    backend_name: Optional[str] = None,
    *,
    variant: str = "streaming-csr",
) -> Dict[str, object]:
    """Config fields determining the Kernel 2 filtered matrix.

    The filtered, row-normalised matrix is a pure function of the
    Kernel 1 dataset *and the producing arithmetic path*: batch sizes
    never affect values (count arithmetic is exact), but a backend's
    serial kernel may normalise with a division where the CSR-assembly
    path multiplies by a reciprocal — different in the last ulp (the
    dataframe backend does exactly this).  ``variant`` names that path
    (``"backend-serial"`` for the backend's own kernel2,
    ``"streaming-csr"`` for the out-of-core assembly shared by the
    streaming and async executors), so a warm cache can never change a
    run's bits relative to a cold one.
    """
    fields = k1_cache_fields(config, backend_name)
    fields["kernel"] = "k2"
    fields["variant"] = variant
    return fields


def cache_key(fields: Dict[str, object]) -> str:
    """Deterministic hex key for a field dict (stable across processes).

    Examples
    --------
    >>> a = cache_key({"scale": 10, "seed": 1})
    >>> b = cache_key({"seed": 1, "scale": 10})
    >>> a == b  # insertion order is irrelevant
    True
    >>> cache_key({"scale": 10, "seed": 2}) == a
    False
    """
    canonical = json.dumps(fields, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:24]


class EntryLock:
    """Advisory per-entry file lock: shared readers, exclusive eviction.

    The lock file lives *beside* the entry directory (never inside it),
    so deleting the entry does not delete the lock out from under a
    blocked waiter.  On platforms without ``fcntl`` the lock degrades to
    a no-op — acquisition always succeeds — which preserves the
    pre-lock behaviour instead of failing.
    """

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self._fh = None

    @property
    def held(self) -> bool:
        """Whether this object currently holds the lock."""
        return self._fh is not None

    def acquire(self, *, shared: bool, blocking: bool = True) -> bool:
        """Take the lock; returns False only for a non-blocking attempt
        that lost to a conflicting holder.

        Any other ``flock`` failure (``ENOLCK`` on an NFS mount without
        a lock daemon, …) raises: silently proceeding unlocked would
        let eviction tear the entry out from under the caller — the
        exact race this lock exists to prevent.
        """
        if self._fh is not None:
            raise RuntimeError(f"lock {self.path} is already held")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fh = open(self.path, "ab")
        if fcntl is not None:
            flags = fcntl.LOCK_SH if shared else fcntl.LOCK_EX
            if not blocking:
                flags |= fcntl.LOCK_NB
            try:
                fcntl.flock(fh.fileno(), flags)
            except OSError as exc:
                fh.close()
                if not blocking and exc.errno in (
                    errno.EAGAIN, errno.EACCES, errno.EWOULDBLOCK,
                ):
                    return False
                raise
        self._fh = fh
        return True

    def release(self) -> None:
        """Drop the lock (idempotent)."""
        if self._fh is None:
            return
        try:
            if fcntl is not None:
                fcntl.flock(self._fh.fileno(), fcntl.LOCK_UN)
        finally:
            self._fh.close()
            self._fh = None

    @contextmanager
    def shared(self) -> Iterator["EntryLock"]:
        """Hold the lock in shared (reader) mode for the block."""
        self.acquire(shared=True)
        try:
            yield self
        finally:
            self.release()


@dataclass(frozen=True)
class CacheEntry:
    """One published cache entry, as seen by ``ls``/eviction.

    ``mtime`` is the recency signal: entries are touched on every hit,
    so mtime-ordered eviction is LRU.
    """

    kind: str
    key: str
    path: Path
    num_bytes: int
    mtime: float


class ArtifactCache:
    """Filesystem cache of kernel output artifacts, keyed by config.

    Layout::

        <root>/k0/<key>/manifest.json + shards + cache-entry.json
        <root>/k1/<key>/...
        <root>/k2/<key>/csr.npz + meta.json + cache-entry.json

    ``cache-entry.json`` records the key's input fields for inspection
    (``repro`` never reads it back — the key *is* the address).  Every
    hit bumps the entry directory's mtime, so :meth:`prune` evicting in
    mtime order implements size-budgeted LRU.
    """

    #: Artifact namespaces the cache knows how to enumerate.
    KINDS = ("k0", "k1", "k2")

    def __init__(self, root: Path, *, mmap: bool = False) -> None:
        self.root = Path(root)
        #: Open cached ``npy`` datasets with memory-mapped shard reads
        #: (``config.cache_mmap``): N concurrent workers on one host
        #: then share one page-cache-resident copy of a warm entry
        #: instead of N private decodes.  Views are read-only; the
        #: shared-lock-for-the-run discipline below already guarantees
        #: no eviction can unmap pages mid-read.
        self.mmap = bool(mmap)
        if self.root.exists() and not self.root.is_dir():
            raise ValueError(
                f"cache_dir {self.root} exists and is not a directory"
            )

    def entry_dir(self, kind: str, key: str) -> Path:
        """Directory holding one cache entry."""
        return self.root / kind / key

    def entry_lock(self, kind: str, key: str) -> EntryLock:
        """The advisory lock guarding one entry against eviction."""
        return EntryLock(self.root / kind / f"{key}.lock")

    def dataset(
        self,
        kind: str,
        fields: Dict[str, object],
        producer: DatasetProducer,
        *,
        hold: Optional[List[EntryLock]] = None,
    ) -> Tuple[EdgeDataset, Details]:
        """Return the cached dataset for ``fields``, producing on miss.

        Parameters
        ----------
        kind:
            Namespace (``"k0"`` / ``"k1"``).
        fields:
            Input fields addressing the entry (see :func:`cache_key`).
        producer:
            Invoked with the entry directory on a miss; must write the
            dataset there and return ``(dataset, details)``.
        hold:
            When given, a shared :class:`EntryLock` on the entry is
            acquired and appended here instead of being released before
            return — the caller keeps eviction away from the (lazily
            read) dataset until it releases the lock.  Omitted, the
            lock only covers the open itself.

        Returns
        -------
        (dataset, details):
            ``details`` gains ``artifact_cache`` (``"hit"``/``"miss"``)
            and ``artifact_cache_key`` so cache behaviour is visible in
            every :class:`~repro.core.results.KernelResult`.
        """
        key = cache_key(fields)
        entry = self.entry_dir(kind, key)
        probe = trace.span(f"cache:{kind}", cat="cache", key=key)
        with probe:
            hit = self._open_locked(kind, key, hold)
            probe.set(outcome="hit" if hit is not None else "miss")
        if hit is not None:
            return hit

        # Miss: produce into a producer-private staging dir, then
        # publish atomically so concurrent runs never see a half-written
        # entry.  mkdtemp makes the staging name unique per *attempt* —
        # concurrent producers in one process (the service's worker
        # threads share a pid) must not collide on it.  The lock is not
        # held while producing; publication is an atomic rename.
        entry.parent.mkdir(parents=True, exist_ok=True)
        staging = Path(tempfile.mkdtemp(
            prefix=f"{entry.name}.tmp-", dir=entry.parent
        ))
        discard_staging = True
        try:
            dataset, details = producer(staging)
            details = dict(details)
            details["artifact_cache"] = "miss"
            details["artifact_cache_key"] = key
            if not (staging / "manifest.json").exists():
                # The producer wrote its dataset elsewhere (possible with
                # custom backends); nothing publishable — return as-is,
                # keeping whatever the producer left behind.
                discard_staging = False
                return dataset, details
            (staging / "cache-entry.json").write_text(
                json.dumps(fields, indent=2, sort_keys=True), encoding="utf-8"
            )
            try:
                os.replace(staging, entry)
            except OSError:
                # A racing producer published first; use its entry.
                winner = self._open_locked(kind, key, hold)
                if winner is not None:
                    return winner[0], details
                # Winner unreadable: fall back to our staging copy.
                discard_staging = False
                return dataset, details
            published = self._open_locked(kind, key, hold)
            if published is not None:
                return published[0], details
            # Evicted between publish and reopen (possible but absurd —
            # a prune racing a brand-new entry); the staging copy is
            # gone, so reopening the entry path is all we have.
            return EdgeDataset.open(entry, mmap=self.mmap), details
        finally:
            if discard_staging:
                shutil.rmtree(staging, ignore_errors=True)

    def _open_locked(
        self, kind: str, key: str, hold: Optional[List[EntryLock]]
    ):
        """Open a published entry under its shared lock.

        On a clean hit the lock is either handed to ``hold`` or
        released (the caller got its data).  A provably-corrupt entry
        is purged *after* the shared lock is dropped and only if the
        exclusive lock can be won — never out from under a concurrent
        reader — and reads as a miss either way.
        """
        lock = self.entry_lock(kind, key)
        lock.acquire(shared=True)
        try:
            opened = self._open_entry(self.entry_dir(kind, key), key)
            if opened is not None and opened is not _CORRUPT:
                if hold is not None:
                    hold.append(lock)
                    lock = None  # ownership transferred to the caller
                return opened
        finally:
            if lock is not None:
                lock.release()
        if opened is _CORRUPT:
            self._purge_corrupt(kind, key)
        return None

    def _purge_corrupt(self, kind: str, key: str) -> None:
        """Delete a provably-bad entry iff the exclusive lock is free.

        A busy lock means another process is mid-read; it will reach
        the same corruption verdict itself (or finish with the old
        bytes), so skipping is safe — the entry stays a miss for us.
        """
        lock = self.entry_lock(kind, key)
        if not lock.acquire(shared=False, blocking=False):
            return
        try:
            shutil.rmtree(self.entry_dir(kind, key), ignore_errors=True)
        finally:
            lock.release()

    def _open_entry(self, entry: Path, key: str):
        """Open a published entry; :data:`_CORRUPT` when provably bad.

        The caller (:meth:`_open_locked`) owns purging — it happens
        under the entry's *exclusive* lock, never from here where only
        the shared lock is held.
        """
        from repro.edgeio.errors import EdgeIOError

        if not (entry / "manifest.json").exists():
            return None
        try:
            dataset = EdgeDataset.open(entry, mmap=self.mmap)
        except (EdgeIOError, ValueError, KeyError):
            # Corruption the verifier detected (missing shard, size or
            # CRC mismatch, unparseable manifest).  Transient I/O
            # errors (EMFILE, EACCES, …) propagate instead — deleting
            # a shared entry that another process may be reading is
            # never the answer to those.
            return _CORRUPT
        self._touch(entry)
        return dataset, {
            "artifact_cache": "hit",
            "artifact_cache_key": key,
            "num_edges": dataset.num_edges,
            "num_shards": dataset.num_shards,
        }

    @staticmethod
    def _touch(entry: Path) -> None:
        """Bump the entry's mtime (the LRU recency signal); best-effort."""
        try:
            os.utime(entry, None)
        except OSError:
            pass

    # ------------------------------------------------------------------
    # CSR matrix artifacts (Kernel 2)
    # ------------------------------------------------------------------
    def load_csr(
        self, kind: str, fields: Dict[str, object]
    ) -> Optional[Tuple[sp.csr_matrix, Dict[str, object]]]:
        """Load a cached CSR matrix, or ``None`` on miss.

        Returns ``(matrix, meta)`` where ``meta`` is whatever
        :meth:`store_csr` recorded (e.g. ``pre_filter_entry_total``).
        A torn or unreadable entry is purged and reads as a miss.  The
        entry's shared lock is held only for the load — the matrix is
        fully materialised in memory before return, so eviction cannot
        tear it afterwards.
        """
        key = cache_key(fields)
        entry = self.entry_dir(kind, key)
        payload = entry / "csr.npz"
        meta_path = entry / "meta.json"
        probe = trace.span(f"cache:{kind}", cat="cache", key=key)
        with probe:
            with self.entry_lock(kind, key).shared():
                if not payload.exists() or not meta_path.exists():
                    probe.set(outcome="miss")
                    return None
                try:
                    meta = json.loads(meta_path.read_text(encoding="utf-8"))
                    with np.load(payload) as archive:
                        shape = tuple(int(x) for x in archive["shape"])
                        matrix = sp.csr_matrix(
                            (archive["data"], archive["indices"],
                             archive["indptr"]),
                            shape=shape,
                        )
                except (OSError, ValueError, KeyError, json.JSONDecodeError):
                    matrix = None
                else:
                    self._touch(entry)
            if matrix is None:
                # Unreadable entry: purge only if the exclusive lock can
                # be won (see _purge_corrupt) — never under a reader.
                probe.set(outcome="miss")
                self._purge_corrupt(kind, key)
                return None
            probe.set(outcome="hit")
        return matrix, meta

    def store_csr(
        self,
        kind: str,
        fields: Dict[str, object],
        matrix: sp.csr_matrix,
        meta: Dict[str, object],
    ) -> str:
        """Publish a CSR matrix entry atomically; returns the entry key.

        Losing a publish race is fine — the winner's entry is
        value-identical by construction (same fields, pure function).
        """
        key = cache_key(fields)
        entry = self.entry_dir(kind, key)
        entry.parent.mkdir(parents=True, exist_ok=True)
        staging = Path(tempfile.mkdtemp(
            prefix=f"{entry.name}.tmp-", dir=entry.parent
        ))
        try:
            with trace.span(f"cache:{kind}:store", cat="cache", key=key):
                matrix = matrix.tocsr()
                np.savez(
                    staging / "csr.npz",
                    indptr=matrix.indptr,
                    indices=matrix.indices,
                    data=matrix.data,
                    shape=np.asarray(matrix.shape, dtype=np.int64),
                )
                (staging / "meta.json").write_text(
                    json.dumps(meta, indent=2, sort_keys=True),
                    encoding="utf-8",
                )
                (staging / "cache-entry.json").write_text(
                    json.dumps(fields, indent=2, sort_keys=True),
                    encoding="utf-8",
                )
                try:
                    os.replace(staging, entry)
                except OSError:
                    pass  # a racing producer published an identical entry
        finally:
            shutil.rmtree(staging, ignore_errors=True)
        return key

    # ------------------------------------------------------------------
    # Inspection and size-budgeted LRU eviction
    # ------------------------------------------------------------------
    def entries(self) -> List[CacheEntry]:
        """Every published entry, oldest (least recently used) first.

        Tolerates concurrent mutation: an entry (or file inside it)
        deleted between listing and stat — another process pruning, or
        a reader purging a torn entry — is simply skipped, not a crash.
        """
        found: List[CacheEntry] = []
        for kind in self.KINDS:
            kind_dir = self.root / kind
            if not kind_dir.is_dir():
                continue
            for entry in sorted(kind_dir.iterdir()):
                if not entry.is_dir() or ".tmp-" in entry.name:
                    continue
                try:
                    num_bytes = 0
                    for path in entry.rglob("*"):
                        try:
                            if path.is_file():
                                num_bytes += path.stat().st_size
                        except OSError:
                            continue
                    mtime = entry.stat().st_mtime
                except OSError:
                    continue  # vanished mid-walk
                found.append(
                    CacheEntry(
                        kind=kind,
                        key=entry.name,
                        path=entry,
                        num_bytes=num_bytes,
                        mtime=mtime,
                    )
                )
        found.sort(key=lambda e: (e.mtime, e.kind, e.key))
        return found

    def total_bytes(self) -> int:
        """Summed on-disk size of all published entries."""
        return sum(entry.num_bytes for entry in self.entries())

    def _evict(self, entry: CacheEntry) -> bool:
        """Delete one entry iff no reader holds its lock.

        Takes the entry's exclusive lock *non-blocking*: a conflicting
        shared holder means the entry is being read right now, so it is
        skipped (still charged to the budget) rather than torn out from
        under the reader.  The lock *file* is deliberately never
        deleted — it is the flock rendezvous point for its key, and
        unlinking it would strand a blocked waiter on an orphaned inode
        where a later evictor (locking a fresh inode at the same path)
        could delete the regenerated entry out from under it.  Lock
        files are empty; the disk cost of keeping them is bytes.
        """
        lock = self.entry_lock(entry.kind, entry.key)
        if not lock.acquire(shared=False, blocking=False):
            return False
        try:
            with trace.span("cache:evict", cat="cache", kind=entry.kind,
                            key=entry.key, freed_bytes=entry.num_bytes):
                shutil.rmtree(entry.path, ignore_errors=True)
            return True
        finally:
            lock.release()

    #: Staging directories older than this are presumed crashed (a live
    #: produce takes seconds to minutes) and reclaimed by :meth:`prune`.
    STALE_STAGING_SECONDS = 24 * 3600.0

    def _reclaim_stale_staging(self) -> None:
        """Delete ``*.tmp-*`` staging dirs abandoned by a crashed producer.

        Staging names are unique per attempt (``mkdtemp``), so nothing
        ever reuses an orphan; without this sweep a SIGKILLed producer
        would leak its partial shards in the shared cache root forever
        (invisible to :meth:`entries`, uncharged to the budget).  Only
        directories untouched for :data:`STALE_STAGING_SECONDS` are
        removed — a live producer's staging is never at risk.
        """
        import time

        cutoff = time.time() - self.STALE_STAGING_SECONDS
        for kind in self.KINDS:
            kind_dir = self.root / kind
            if not kind_dir.is_dir():
                continue
            for path in kind_dir.iterdir():
                if ".tmp-" not in path.name or not path.is_dir():
                    continue
                try:
                    newest = max(
                        [path.stat().st_mtime]
                        + [p.stat().st_mtime for p in path.rglob("*")]
                    )
                except OSError:
                    continue  # vanished mid-walk (its producer finished)
                if newest < cutoff:
                    shutil.rmtree(path, ignore_errors=True)

    # ------------------------------------------------------------------
    # Cross-host entry transport (the distributed worker plane's
    # GET/PUT /artifacts sync endpoint packs entries with these)
    # ------------------------------------------------------------------
    def export_entry(self, kind: str, key: str) -> Optional[bytes]:
        """Pack one published entry as an uncompressed tar archive.

        Returns ``None`` when the entry does not exist (or is torn —
        no manifest).  The entry's shared lock is held for the read so
        a concurrent prune cannot delete files mid-pack; archive member
        names are entry-relative, so :meth:`import_entry` on any host
        reproduces the exact directory.  Keys are content-addressed by
        the *producing config*, which is what makes a transplanted
        entry safe: the receiving host would have produced the same
        bytes under the same key.
        """
        if kind not in self.KINDS:
            raise ValueError(f"kind must be one of {self.KINDS}, got {kind!r}")
        entry = self.entry_dir(kind, key)
        lock = self.entry_lock(kind, key)
        lock.acquire(shared=True)
        try:
            if not (entry / "manifest.json").is_file():
                return None
            buffer = io.BytesIO()
            with tarfile.open(fileobj=buffer, mode="w") as archive:
                for path in sorted(entry.rglob("*")):
                    if path.is_file():
                        archive.add(
                            path, arcname=path.relative_to(entry).as_posix()
                        )
            self._touch(entry)
            return buffer.getvalue()
        except OSError:
            return None  # entry vanished mid-pack; report a miss
        finally:
            lock.release()

    def import_entry(self, kind: str, key: str, data: bytes) -> bool:
        """Unpack an :meth:`export_entry` archive as a published entry.

        Extraction is defensive — only regular files, entry-relative
        paths (no absolute members, no ``..`` traversal, no symlinks) —
        into a private staging directory, published with the same
        atomic rename the producers use.  Losing the rename race to a
        concurrent producer/import counts as success (the winner's
        bytes are equivalent by content addressing).  Returns ``False``
        for a malformed or unsafe archive.
        """
        if kind not in self.KINDS:
            raise ValueError(f"kind must be one of {self.KINDS}, got {kind!r}")
        entry = self.entry_dir(kind, key)
        if (entry / "manifest.json").is_file():
            self._touch(entry)
            return True  # already warm locally
        entry.parent.mkdir(parents=True, exist_ok=True)
        staging = Path(tempfile.mkdtemp(
            prefix=f"{entry.name}.tmp-", dir=entry.parent
        ))
        try:
            with tarfile.open(fileobj=io.BytesIO(data), mode="r") as archive:
                for member in archive.getmembers():
                    if not member.isfile():
                        return False  # symlink/device/dir member: refuse
                    relative = Path(member.name)
                    if relative.is_absolute() or ".." in relative.parts:
                        return False
                    target = staging / relative
                    target.parent.mkdir(parents=True, exist_ok=True)
                    source = archive.extractfile(member)
                    if source is None:
                        return False
                    with open(target, "wb") as sink:
                        shutil.copyfileobj(source, sink)
            if not (staging / "manifest.json").is_file():
                return False  # a torn entry must never publish
            try:
                os.replace(staging, entry)
            except OSError:
                # A concurrent producer or import won the rename; its
                # entry is content-equivalent, so this import succeeded
                # in effect.
                pass
            return True
        except (tarfile.TarError, ValueError, OSError):
            return False
        finally:
            shutil.rmtree(staging, ignore_errors=True)

    def remove(self, key: str, kind: Optional[str] = None) -> List[CacheEntry]:
        """Delete entries matching ``key`` (optionally restricted to one
        kind); returns what was removed.  Entries currently being read
        (shared lock held) are left in place."""
        removed = []
        for entry in self.entries():
            if entry.key != key or (kind is not None and entry.kind != kind):
                continue
            if self._evict(entry):
                removed.append(entry)
        return removed

    def prune(self, max_bytes: int) -> List[CacheEntry]:
        """Evict least-recently-used entries until the cache fits
        ``max_bytes``; returns the evicted entries.

        Eviction is mtime-ordered and hits touch their entry, so
        recently used artifacts survive.  ``max_bytes=0`` empties the
        cache.  An entry whose shared lock is held by a concurrent
        reader is skipped — it stays on disk (and in the byte total)
        until its readers finish; a later prune collects it.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self._reclaim_stale_staging()
        entries = self.entries()
        total = sum(entry.num_bytes for entry in entries)
        evicted: List[CacheEntry] = []
        for entry in entries:  # oldest first
            if total <= max_bytes:
                break
            if not self._evict(entry):
                continue  # in use by a concurrent reader
            total -= entry.num_bytes
            evicted.append(entry)
        return evicted
