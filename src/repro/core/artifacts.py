"""Content-addressed artifact cache for Kernel 0/1 outputs.

Sweeps and repeated runs regenerate and re-sort the *same* graph over
and over: the paper's Figures 4–7 grid runs every backend at every
scale, and ``repeats > 1`` multiplies that again.  Kernel 0 and Kernel 1
outputs are pure functions of a small set of config fields, so they can
be cached on disk and reused — turning sweep repeats into (timed) cache
reads and making the uncached cost visible exactly once.

The cache is content-*addressed by inputs*: an entry key is the SHA-256
of the canonical JSON of every config field that influences the bytes
written (scale, seed, generator, shard count, format, …).  Any field
change produces a new key; stale entries are never silently reused.

Entries are produced in a process-private staging directory and
published with an atomic rename, so concurrent runs sharing one cache
root never observe a half-written entry: a racing producer that loses
the rename simply discards its staging copy and reads the winner's.
As a second line of defence, :class:`~repro.edgeio.dataset.EdgeDataset`
writes its manifest last and ``open`` refuses a directory without one —
an entry torn by a hard crash reads as a miss, is purged, and is
regenerated.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

from repro.backends.base import Details
from repro.core.config import PipelineConfig
from repro.edgeio.dataset import EdgeDataset

#: Producer callback: given the entry directory, build the dataset there.
DatasetProducer = Callable[[Path], Tuple[EdgeDataset, Details]]


def k0_cache_fields(
    config: PipelineConfig, backend_name: Optional[str] = None
) -> Dict[str, object]:
    """Config fields that fully determine the Kernel 0 output bytes.

    The backend name is included because the pure-python backend draws
    from its own generator stream — its edge files differ from the
    numpy-family backends at the same seed.  Pass ``backend_name`` when
    the executing backend was supplied as an instance (it may differ
    from ``config.backend``); defaults to ``config.backend``.
    """
    return {
        "kernel": "k0",
        "scale": config.scale,
        "edge_factor": config.edge_factor,
        "seed": config.seed,
        "generator": config.generator,
        "backend": backend_name if backend_name is not None else config.backend,
        "num_files": config.num_files,
        "vertex_base": config.vertex_base,
        "file_format": config.file_format,
    }


def k1_cache_fields(
    config: PipelineConfig, backend_name: Optional[str] = None
) -> Dict[str, object]:
    """Config fields determining the Kernel 1 output (K0 fields + sort)."""
    fields = k0_cache_fields(config, backend_name)
    fields.update(
        {
            "kernel": "k1",
            "sort_algorithm": config.sort_algorithm,
            "sort_by_end_vertex": config.sort_by_end_vertex,
            "external_sort": config.external_sort,
        }
    )
    return fields


def cache_key(fields: Dict[str, object]) -> str:
    """Deterministic hex key for a field dict (stable across processes).

    Examples
    --------
    >>> a = cache_key({"scale": 10, "seed": 1})
    >>> b = cache_key({"seed": 1, "scale": 10})
    >>> a == b  # insertion order is irrelevant
    True
    >>> cache_key({"scale": 10, "seed": 2}) == a
    False
    """
    canonical = json.dumps(fields, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:24]


class ArtifactCache:
    """Filesystem cache of kernel output datasets, keyed by config.

    Layout::

        <root>/k0/<key>/manifest.json + shards + cache-entry.json
        <root>/k1/<key>/...

    ``cache-entry.json`` records the key's input fields for inspection
    (``repro`` never reads it back — the key *is* the address).
    """

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise ValueError(
                f"cache_dir {self.root} exists and is not a directory"
            )

    def entry_dir(self, kind: str, key: str) -> Path:
        """Directory holding one cache entry."""
        return self.root / kind / key

    def dataset(
        self, kind: str, fields: Dict[str, object], producer: DatasetProducer
    ) -> Tuple[EdgeDataset, Details]:
        """Return the cached dataset for ``fields``, producing on miss.

        Parameters
        ----------
        kind:
            Namespace (``"k0"`` / ``"k1"``).
        fields:
            Input fields addressing the entry (see :func:`cache_key`).
        producer:
            Invoked with the entry directory on a miss; must write the
            dataset there and return ``(dataset, details)``.

        Returns
        -------
        (dataset, details):
            ``details`` gains ``artifact_cache`` (``"hit"``/``"miss"``)
            and ``artifact_cache_key`` so cache behaviour is visible in
            every :class:`~repro.core.results.KernelResult`.
        """
        key = cache_key(fields)
        entry = self.entry_dir(kind, key)
        hit = self._open_entry(entry, key)
        if hit is not None:
            return hit

        # Miss: produce into a process-private staging dir, then publish
        # atomically so concurrent runs never see a half-written entry.
        staging = entry.with_name(f"{entry.name}.tmp-{os.getpid()}")
        shutil.rmtree(staging, ignore_errors=True)
        discard_staging = True
        try:
            dataset, details = producer(staging)
            details = dict(details)
            details["artifact_cache"] = "miss"
            details["artifact_cache_key"] = key
            if not (staging / "manifest.json").exists():
                # The producer wrote its dataset elsewhere (possible with
                # custom backends); nothing publishable — return as-is,
                # keeping whatever the producer left behind.
                discard_staging = False
                return dataset, details
            (staging / "cache-entry.json").write_text(
                json.dumps(fields, indent=2, sort_keys=True), encoding="utf-8"
            )
            try:
                os.replace(staging, entry)
            except OSError:
                # A racing producer published first; use its entry.
                winner = self._open_entry(entry, key)
                if winner is not None:
                    return winner[0], details
                # Winner unreadable: fall back to our staging copy.
                discard_staging = False
                return dataset, details
            return EdgeDataset.open(entry), details
        finally:
            if discard_staging:
                shutil.rmtree(staging, ignore_errors=True)

    def _open_entry(self, entry: Path, key: str):
        """Open a published entry, purging it only when provably bad."""
        from repro.edgeio.errors import EdgeIOError

        if not (entry / "manifest.json").exists():
            return None
        try:
            dataset = EdgeDataset.open(entry)
        except (EdgeIOError, ValueError, KeyError):
            # Corruption the verifier detected (missing shard, size or
            # CRC mismatch, unparseable manifest): purge so the caller
            # regenerates.  Transient I/O errors (EMFILE, EACCES, …)
            # propagate instead — deleting a shared entry that another
            # process may be reading is never the answer to those.
            shutil.rmtree(entry, ignore_errors=True)
            return None
        return dataset, {
            "artifact_cache": "hit",
            "artifact_cache_key": key,
            "num_edges": dataset.num_edges,
            "num_shards": dataset.num_shards,
        }
