"""Content-addressed artifact cache for Kernel 0/1 outputs.

Sweeps and repeated runs regenerate and re-sort the *same* graph over
and over: the paper's Figures 4–7 grid runs every backend at every
scale, and ``repeats > 1`` multiplies that again.  Kernel 0 and Kernel 1
outputs are pure functions of a small set of config fields, so they can
be cached on disk and reused — turning sweep repeats into (timed) cache
reads and making the uncached cost visible exactly once.

The cache is content-*addressed by inputs*: an entry key is the SHA-256
of the canonical JSON of every config field that influences the bytes
written (scale, seed, generator, shard count, format, …).  Any field
change produces a new key; stale entries are never silently reused.

Entries are produced in a process-private staging directory and
published with an atomic rename, so concurrent runs sharing one cache
root never observe a half-written entry: a racing producer that loses
the rename simply discards its staging copy and reads the winner's.
As a second line of defence, :class:`~repro.edgeio.dataset.EdgeDataset`
writes its manifest last and ``open`` refuses a directory without one —
an entry torn by a hard crash reads as a miss, is purged, and is
regenerated.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.backends.base import Details
from repro.core.config import PipelineConfig
from repro.edgeio.dataset import EdgeDataset

#: Producer callback: given the entry directory, build the dataset there.
DatasetProducer = Callable[[Path], Tuple[EdgeDataset, Details]]


def k0_cache_fields(
    config: PipelineConfig, backend_name: Optional[str] = None
) -> Dict[str, object]:
    """Config fields that fully determine the Kernel 0 output bytes.

    The backend name is included because the pure-python backend draws
    from its own generator stream — its edge files differ from the
    numpy-family backends at the same seed.  Pass ``backend_name`` when
    the executing backend was supplied as an instance (it may differ
    from ``config.backend``); defaults to ``config.backend``.
    """
    return {
        "kernel": "k0",
        "scale": config.scale,
        "edge_factor": config.edge_factor,
        "seed": config.seed,
        "generator": config.generator,
        "backend": backend_name if backend_name is not None else config.backend,
        "num_files": config.num_files,
        "vertex_base": config.vertex_base,
        "file_format": config.file_format,
    }


def k1_cache_fields(
    config: PipelineConfig, backend_name: Optional[str] = None
) -> Dict[str, object]:
    """Config fields determining the Kernel 1 output (K0 fields + sort)."""
    fields = k0_cache_fields(config, backend_name)
    fields.update(
        {
            "kernel": "k1",
            "sort_algorithm": config.sort_algorithm,
            "sort_by_end_vertex": config.sort_by_end_vertex,
            "external_sort": config.external_sort,
        }
    )
    return fields


def k2_cache_fields(
    config: PipelineConfig,
    backend_name: Optional[str] = None,
    *,
    variant: str = "streaming-csr",
) -> Dict[str, object]:
    """Config fields determining the Kernel 2 filtered matrix.

    The filtered, row-normalised matrix is a pure function of the
    Kernel 1 dataset *and the producing arithmetic path*: batch sizes
    never affect values (count arithmetic is exact), but a backend's
    serial kernel may normalise with a division where the CSR-assembly
    path multiplies by a reciprocal — different in the last ulp (the
    dataframe backend does exactly this).  ``variant`` names that path
    (``"backend-serial"`` for the backend's own kernel2,
    ``"streaming-csr"`` for the out-of-core assembly shared by the
    streaming and async executors), so a warm cache can never change a
    run's bits relative to a cold one.
    """
    fields = k1_cache_fields(config, backend_name)
    fields["kernel"] = "k2"
    fields["variant"] = variant
    return fields


def cache_key(fields: Dict[str, object]) -> str:
    """Deterministic hex key for a field dict (stable across processes).

    Examples
    --------
    >>> a = cache_key({"scale": 10, "seed": 1})
    >>> b = cache_key({"seed": 1, "scale": 10})
    >>> a == b  # insertion order is irrelevant
    True
    >>> cache_key({"scale": 10, "seed": 2}) == a
    False
    """
    canonical = json.dumps(fields, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:24]


@dataclass(frozen=True)
class CacheEntry:
    """One published cache entry, as seen by ``ls``/eviction.

    ``mtime`` is the recency signal: entries are touched on every hit,
    so mtime-ordered eviction is LRU.
    """

    kind: str
    key: str
    path: Path
    num_bytes: int
    mtime: float


class ArtifactCache:
    """Filesystem cache of kernel output artifacts, keyed by config.

    Layout::

        <root>/k0/<key>/manifest.json + shards + cache-entry.json
        <root>/k1/<key>/...
        <root>/k2/<key>/csr.npz + meta.json + cache-entry.json

    ``cache-entry.json`` records the key's input fields for inspection
    (``repro`` never reads it back — the key *is* the address).  Every
    hit bumps the entry directory's mtime, so :meth:`prune` evicting in
    mtime order implements size-budgeted LRU.
    """

    #: Artifact namespaces the cache knows how to enumerate.
    KINDS = ("k0", "k1", "k2")

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise ValueError(
                f"cache_dir {self.root} exists and is not a directory"
            )

    def entry_dir(self, kind: str, key: str) -> Path:
        """Directory holding one cache entry."""
        return self.root / kind / key

    def dataset(
        self, kind: str, fields: Dict[str, object], producer: DatasetProducer
    ) -> Tuple[EdgeDataset, Details]:
        """Return the cached dataset for ``fields``, producing on miss.

        Parameters
        ----------
        kind:
            Namespace (``"k0"`` / ``"k1"``).
        fields:
            Input fields addressing the entry (see :func:`cache_key`).
        producer:
            Invoked with the entry directory on a miss; must write the
            dataset there and return ``(dataset, details)``.

        Returns
        -------
        (dataset, details):
            ``details`` gains ``artifact_cache`` (``"hit"``/``"miss"``)
            and ``artifact_cache_key`` so cache behaviour is visible in
            every :class:`~repro.core.results.KernelResult`.
        """
        key = cache_key(fields)
        entry = self.entry_dir(kind, key)
        hit = self._open_entry(entry, key)
        if hit is not None:
            return hit

        # Miss: produce into a process-private staging dir, then publish
        # atomically so concurrent runs never see a half-written entry.
        staging = entry.with_name(f"{entry.name}.tmp-{os.getpid()}")
        shutil.rmtree(staging, ignore_errors=True)
        discard_staging = True
        try:
            dataset, details = producer(staging)
            details = dict(details)
            details["artifact_cache"] = "miss"
            details["artifact_cache_key"] = key
            if not (staging / "manifest.json").exists():
                # The producer wrote its dataset elsewhere (possible with
                # custom backends); nothing publishable — return as-is,
                # keeping whatever the producer left behind.
                discard_staging = False
                return dataset, details
            (staging / "cache-entry.json").write_text(
                json.dumps(fields, indent=2, sort_keys=True), encoding="utf-8"
            )
            try:
                os.replace(staging, entry)
            except OSError:
                # A racing producer published first; use its entry.
                winner = self._open_entry(entry, key)
                if winner is not None:
                    return winner[0], details
                # Winner unreadable: fall back to our staging copy.
                discard_staging = False
                return dataset, details
            return EdgeDataset.open(entry), details
        finally:
            if discard_staging:
                shutil.rmtree(staging, ignore_errors=True)

    def _open_entry(self, entry: Path, key: str):
        """Open a published entry, purging it only when provably bad."""
        from repro.edgeio.errors import EdgeIOError

        if not (entry / "manifest.json").exists():
            return None
        try:
            dataset = EdgeDataset.open(entry)
        except (EdgeIOError, ValueError, KeyError):
            # Corruption the verifier detected (missing shard, size or
            # CRC mismatch, unparseable manifest): purge so the caller
            # regenerates.  Transient I/O errors (EMFILE, EACCES, …)
            # propagate instead — deleting a shared entry that another
            # process may be reading is never the answer to those.
            shutil.rmtree(entry, ignore_errors=True)
            return None
        self._touch(entry)
        return dataset, {
            "artifact_cache": "hit",
            "artifact_cache_key": key,
            "num_edges": dataset.num_edges,
            "num_shards": dataset.num_shards,
        }

    @staticmethod
    def _touch(entry: Path) -> None:
        """Bump the entry's mtime (the LRU recency signal); best-effort."""
        try:
            os.utime(entry, None)
        except OSError:
            pass

    # ------------------------------------------------------------------
    # CSR matrix artifacts (Kernel 2)
    # ------------------------------------------------------------------
    def load_csr(
        self, kind: str, fields: Dict[str, object]
    ) -> Optional[Tuple[sp.csr_matrix, Dict[str, object]]]:
        """Load a cached CSR matrix, or ``None`` on miss.

        Returns ``(matrix, meta)`` where ``meta`` is whatever
        :meth:`store_csr` recorded (e.g. ``pre_filter_entry_total``).
        A torn or unreadable entry is purged and reads as a miss.
        """
        entry = self.entry_dir(kind, cache_key(fields))
        payload = entry / "csr.npz"
        meta_path = entry / "meta.json"
        if not payload.exists() or not meta_path.exists():
            return None
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
            with np.load(payload) as archive:
                shape = tuple(int(x) for x in archive["shape"])
                matrix = sp.csr_matrix(
                    (archive["data"], archive["indices"], archive["indptr"]),
                    shape=shape,
                )
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            shutil.rmtree(entry, ignore_errors=True)
            return None
        self._touch(entry)
        return matrix, meta

    def store_csr(
        self,
        kind: str,
        fields: Dict[str, object],
        matrix: sp.csr_matrix,
        meta: Dict[str, object],
    ) -> str:
        """Publish a CSR matrix entry atomically; returns the entry key.

        Losing a publish race is fine — the winner's entry is
        value-identical by construction (same fields, pure function).
        """
        key = cache_key(fields)
        entry = self.entry_dir(kind, key)
        staging = entry.with_name(f"{entry.name}.tmp-{os.getpid()}")
        shutil.rmtree(staging, ignore_errors=True)
        staging.mkdir(parents=True, exist_ok=True)
        try:
            matrix = matrix.tocsr()
            np.savez(
                staging / "csr.npz",
                indptr=matrix.indptr,
                indices=matrix.indices,
                data=matrix.data,
                shape=np.asarray(matrix.shape, dtype=np.int64),
            )
            (staging / "meta.json").write_text(
                json.dumps(meta, indent=2, sort_keys=True), encoding="utf-8"
            )
            (staging / "cache-entry.json").write_text(
                json.dumps(fields, indent=2, sort_keys=True), encoding="utf-8"
            )
            try:
                os.replace(staging, entry)
            except OSError:
                pass  # a racing producer published an identical entry
        finally:
            shutil.rmtree(staging, ignore_errors=True)
        return key

    # ------------------------------------------------------------------
    # Inspection and size-budgeted LRU eviction
    # ------------------------------------------------------------------
    def entries(self) -> List[CacheEntry]:
        """Every published entry, oldest (least recently used) first.

        Tolerates concurrent mutation: an entry (or file inside it)
        deleted between listing and stat — another process pruning, or
        a reader purging a torn entry — is simply skipped, not a crash.
        """
        found: List[CacheEntry] = []
        for kind in self.KINDS:
            kind_dir = self.root / kind
            if not kind_dir.is_dir():
                continue
            for entry in sorted(kind_dir.iterdir()):
                if not entry.is_dir() or ".tmp-" in entry.name:
                    continue
                try:
                    num_bytes = 0
                    for path in entry.rglob("*"):
                        try:
                            if path.is_file():
                                num_bytes += path.stat().st_size
                        except OSError:
                            continue
                    mtime = entry.stat().st_mtime
                except OSError:
                    continue  # vanished mid-walk
                found.append(
                    CacheEntry(
                        kind=kind,
                        key=entry.name,
                        path=entry,
                        num_bytes=num_bytes,
                        mtime=mtime,
                    )
                )
        found.sort(key=lambda e: (e.mtime, e.kind, e.key))
        return found

    def total_bytes(self) -> int:
        """Summed on-disk size of all published entries."""
        return sum(entry.num_bytes for entry in self.entries())

    def remove(self, key: str, kind: Optional[str] = None) -> List[CacheEntry]:
        """Delete entries matching ``key`` (optionally restricted to one
        kind); returns what was removed."""
        removed = []
        for entry in self.entries():
            if entry.key != key or (kind is not None and entry.kind != kind):
                continue
            shutil.rmtree(entry.path, ignore_errors=True)
            removed.append(entry)
        return removed

    def prune(self, max_bytes: int) -> List[CacheEntry]:
        """Evict least-recently-used entries until the cache fits
        ``max_bytes``; returns the evicted entries.

        Eviction is mtime-ordered and hits touch their entry, so
        recently used artifacts survive.  ``max_bytes=0`` empties the
        cache.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        entries = self.entries()
        total = sum(entry.num_bytes for entry in entries)
        evicted: List[CacheEntry] = []
        for entry in entries:  # oldest first
            if total <= max_bytes:
                break
            shutil.rmtree(entry.path, ignore_errors=True)
            total -= entry.num_bytes
            evicted.append(entry)
        return evicted
