"""Dependency-free span tracing for the pipeline's execution layers.

One :class:`TraceCollector` exists per traced run (``config.trace``).
Every execution layer — stage phases, scheduler tasks, lane ops, shm
segment lifecycle, artifact-cache probes, service job lifecycle —
records :class:`Span` intervals against the collector's **run clock**
(``time.perf_counter`` relative to the collector's creation).  The
collector also notes the epoch time of its creation so traces from
different processes (service vs. pipeline worker) can be aligned on
one axis by :func:`chrome_trace`.

Design rules:

* **Cheap no-op when disabled.**  Instrumented code calls the
  module-level :func:`span`, which costs one thread-local read and a
  ``None`` check when no collector is active and returns a shared
  do-nothing handle.  No allocation, no clock read, no locking.
* **Ambient, thread-scoped current collector.**  ``activate()`` binds a
  collector to the *current thread* — deliberately not a contextvar,
  because the scheduler's pool threads and the service's job threads
  must each opt in explicitly (a worker thread re-activates the
  collector around the task body).  Layers with no collector parameter
  in their signatures (``artifacts``, ``shmplane``) read the ambient
  collector and stay signature-stable.
* **Durations on ``perf_counter``, never epoch.**  Span ``start``/
  ``dur`` are monotonic-clock values; epoch time appears only once per
  collector (``epoch0``) for cross-process alignment.
* **Cross-process spans re-anchor via a handshake offset.**  A lane
  worker records spans on its own raw ``perf_counter`` clock and ships
  them back in the op reply; the parent adds the offset measured over
  the warm-up ping round-trip (see :func:`clock_offset`) when merging.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Span",
    "TraceCollector",
    "activate",
    "chrome_trace",
    "clock_offset",
    "current",
    "span",
    "task_busy_seconds",
]


@dataclass
class Span:
    """One closed interval on a collector's run clock.

    Attributes
    ----------
    name:
        What happened (``stage:k1-sort``, ``task:k0:write:0``,
        ``lane-op:encode-shard``, ``cache:k1``, ``job:run`` …).
    cat:
        Coarse layer bucket: ``stage`` / ``task`` / ``lane`` / ``shm``
        / ``cache`` / ``job`` / ``run``.
    start, dur:
        Seconds on the owning collector's run clock; ``dur >= 0``.
    span_id, parent_id:
        Intra-trace links.  ``parent_id`` is ``None`` for roots.
    proc, thread:
        Execution-context labels (``main`` / ``lane-0`` /
        ``service`` …; thread name within the process).  These become
        the Perfetto pid/tid rows.
    args:
        Free-form JSON-safe attributes.
    """

    name: str
    cat: str
    start: float
    dur: float
    span_id: int
    parent_id: Optional[int]
    proc: str
    thread: str
    args: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "cat": self.cat,
            "start": self.start,
            "dur": self.dur,
            "id": self.span_id,
            "parent": self.parent_id,
            "proc": self.proc,
            "thread": self.thread,
            "args": dict(self.args),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "Span":
        return cls(
            name=doc["name"],
            cat=doc["cat"],
            start=doc["start"],
            dur=doc["dur"],
            span_id=doc["id"],
            parent_id=doc.get("parent"),
            proc=doc.get("proc", "main"),
            thread=doc.get("thread", "?"),
            args=dict(doc.get("args") or {}),
        )


class _NullSpan:
    """Shared do-nothing handle returned when tracing is disabled."""

    __slots__ = ()
    span_id = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **args) -> None:
        pass


NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """An open span: a context manager that closes it on exit."""

    __slots__ = ("collector", "name", "cat", "start", "span_id",
                 "parent_id", "proc", "thread", "args")

    def __init__(self, collector, name, cat, start, span_id, parent_id,
                 proc, thread, args):
        self.collector = collector
        self.name = name
        self.cat = cat
        self.start = start
        self.span_id = span_id
        self.parent_id = parent_id
        self.proc = proc
        self.thread = thread
        self.args = args

    def set(self, **args) -> None:
        """Attach attributes to the span (any time before it closes)."""
        self.args.update(args)

    def __enter__(self) -> "_ActiveSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        self.collector.end(self)
        return False


class TraceCollector:
    """Per-run span sink with a monotonic run clock.

    Parameters
    ----------
    label:
        Default ``proc`` label for spans this collector records.
    raw_clock:
        When true, span ``start`` values are *raw* ``perf_counter``
        readings instead of collector-relative ones.  Lane workers use
        this so the parent can re-anchor their spans by adding a single
        handshake offset (raw worker clock → parent run clock).
    """

    def __init__(self, label: str = "main", *, raw_clock: bool = False):
        self.t0 = 0.0 if raw_clock else time.perf_counter()
        self.epoch0 = time.time()
        self.label = label
        self._spans: List[Span] = []
        self._lock = threading.Lock()
        self._next_id = 0
        self._stack = threading.local()

    # -- clock ---------------------------------------------------------

    def now(self) -> float:
        """Current run-clock reading (seconds since the collector)."""
        return time.perf_counter() - self.t0

    # -- recording -----------------------------------------------------

    def _alloc_id(self) -> int:
        with self._lock:
            self._next_id += 1
            return self._next_id

    def _ambient_parent(self) -> Optional[int]:
        stack = getattr(self._stack, "items", None)
        return stack[-1].span_id if stack else None

    def begin(self, name: str, cat: str = "run", *,
              start: Optional[float] = None,
              parent_id: object = "ambient",
              proc: Optional[str] = None,
              **args) -> _ActiveSpan:
        """Open a span; it becomes the ambient parent on this thread.

        ``start`` overrides the clock reading (pass a value derived
        from the *same* ``perf_counter`` sample as an adjacent timing
        record so the two stay bitwise consistent).  ``parent_id`` may
        be an explicit id, ``None`` for a root, or the default ambient
        (top of this thread's open-span stack).
        """
        if parent_id == "ambient":
            parent_id = self._ambient_parent()
        handle = _ActiveSpan(
            collector=self,
            name=name,
            cat=cat,
            start=self.now() if start is None else start,
            span_id=self._alloc_id(),
            parent_id=parent_id,
            proc=proc or self.label,
            thread=threading.current_thread().name,
            args=args,
        )
        stack = getattr(self._stack, "items", None)
        if stack is None:
            stack = self._stack.items = []
        stack.append(handle)
        return handle

    def end(self, handle: _ActiveSpan, *,
            end: Optional[float] = None, dur: Optional[float] = None,
            **args) -> Span:
        """Close a span opened with :meth:`begin`.

        ``dur`` overrides the computed duration — pass a value derived
        from the same ``perf_counter`` samples as an adjacent timing
        record so the span and the record agree bit-for-bit.
        """
        if args:
            handle.args.update(args)
        if dur is None:
            finish = self.now() if end is None else end
            dur = finish - handle.start
        stack = getattr(self._stack, "items", None)
        if stack and handle in stack:
            stack.remove(handle)
        completed = Span(
            name=handle.name,
            cat=handle.cat,
            start=handle.start,
            dur=max(0.0, dur),
            span_id=handle.span_id,
            parent_id=handle.parent_id,
            proc=handle.proc,
            thread=handle.thread,
            args=handle.args,
        )
        with self._lock:
            self._spans.append(completed)
        return completed

    def span(self, name: str, cat: str = "run", **args) -> _ActiveSpan:
        """``with collector.span(...)``: begin/end around a block."""
        return self.begin(name, cat, **args)

    def add_span(self, name: str, cat: str, start: float, dur: float, *,
                 parent_id: object = "ambient",
                 proc: Optional[str] = None,
                 thread: Optional[str] = None,
                 args: Optional[Dict[str, object]] = None) -> int:
        """Record an already-measured interval (post-hoc span)."""
        if parent_id == "ambient":
            parent_id = self._ambient_parent()
        completed = Span(
            name=name,
            cat=cat,
            start=start,
            dur=max(0.0, dur),
            span_id=self._alloc_id(),
            parent_id=parent_id,
            proc=proc or self.label,
            thread=thread or threading.current_thread().name,
            args=dict(args or {}),
        )
        with self._lock:
            self._spans.append(completed)
        return completed.span_id

    def merge(self, span_docs: Iterable[Dict[str, object]], *,
              offset: float, proc: Optional[str] = None,
              parent_id: object = "ambient") -> List[int]:
        """Adopt foreign spans (e.g. a lane worker's) into this trace.

        ``offset`` is added to every ``start`` — for raw-clock worker
        spans pass ``handshake_offset - self.t0`` so worker readings
        land on this collector's run clock.  Foreign span/parent ids
        are remapped to fresh local ids; foreign *roots* are parented
        to ``parent_id`` (default: this thread's ambient span, i.e.
        the dispatch span the caller holds open).
        """
        if parent_id == "ambient":
            parent_id = self._ambient_parent()
        docs = [Span.from_dict(d) for d in span_docs]
        id_map: Dict[int, int] = {}
        for foreign in docs:
            id_map[foreign.span_id] = self._alloc_id()
        new_ids: List[int] = []
        adopted: List[Span] = []
        for foreign in docs:
            adopted.append(Span(
                name=foreign.name,
                cat=foreign.cat,
                start=foreign.start + offset,
                dur=foreign.dur,
                span_id=id_map[foreign.span_id],
                parent_id=id_map.get(foreign.parent_id, parent_id),
                proc=proc or foreign.proc,
                thread=foreign.thread,
                args=foreign.args,
            ))
            new_ids.append(id_map[foreign.span_id])
        with self._lock:
            self._spans.extend(adopted)
        return new_ids

    # -- output --------------------------------------------------------

    def spans(self) -> List[Span]:
        """Snapshot of completed spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def span_docs(self) -> List[Dict[str, object]]:
        return [s.to_dict() for s in self.spans()]

    def trace_doc(self) -> Dict[str, object]:
        """The portable run-trace document (rides results and pipes)."""
        return {"epoch0": self.epoch0, "spans": self.span_docs()}


# -- ambient current collector (thread-scoped) -------------------------

_tls = threading.local()


def current() -> Optional[TraceCollector]:
    """The collector bound to this thread, or ``None``."""
    return getattr(_tls, "collector", None)


class _Activation:
    """``with activate(col)``: bind ``col`` to this thread, restore after."""

    __slots__ = ("collector", "_previous")

    def __init__(self, collector: Optional[TraceCollector]):
        self.collector = collector

    def __enter__(self) -> Optional[TraceCollector]:
        self._previous = getattr(_tls, "collector", None)
        _tls.collector = self.collector
        return self.collector

    def __exit__(self, *exc) -> bool:
        _tls.collector = self._previous
        return False


def activate(collector: Optional[TraceCollector]) -> _Activation:
    """Bind a collector (or ``None``) to the current thread."""
    return _Activation(collector)


def span(name: str, cat: str = "run", **args):
    """Open a span on the ambient collector; no-op when tracing is off.

    The disabled path is deliberately minimal — a thread-local read and
    a ``None`` check returning a shared inert handle — so instrumented
    layers never pay for tracing they did not ask for.
    """
    collector = getattr(_tls, "collector", None)
    if collector is None:
        return NULL_SPAN
    return collector.begin(name, cat, **args)


# -- cross-process clock handshake -------------------------------------

def clock_offset(parent_send: float, parent_recv: float,
                 worker_clock: float) -> float:
    """Offset mapping a worker's raw clock onto the parent's clock.

    ``parent_send``/``parent_recv`` bracket a ping round-trip on the
    parent clock; ``worker_clock`` is the worker's ``perf_counter``
    reading inside it.  Assuming symmetric transit, the worker read its
    clock at the parent midpoint, so ``worker + offset ≈ parent``:

    >>> clock_offset(10.0, 10.2, 4.0)
    6.1
    """
    return (parent_send + parent_recv) / 2.0 - worker_clock


# -- post-hoc span grafting --------------------------------------------

def graft_span(trace_doc: Dict[str, object], *, name: str,
               span_id: int, begin_epoch: float, end_epoch: float,
               parent_id: Optional[int] = None, cat: str = "job",
               proc: str = "service", thread: str = "?",
               args: Optional[Dict[str, object]] = None) -> bool:
    """Append one epoch-clock interval onto a portable trace document.

    Used by layers that observed an interval on the wall clock *around*
    a traced run — the service's job lifecycle, a remote worker agent's
    dispatch handling — after the collector is gone.  The document's
    ``epoch0`` anchor maps epochs onto the run clock
    (``epoch - epoch0``); without one the graft is refused (returns
    ``False``) rather than guessed.  Callers use *negative* ids to stay
    clear of the collector's positive id space.
    """
    epoch0 = trace_doc.get("epoch0")
    if not isinstance(epoch0, (int, float)):
        return False
    spans = trace_doc.setdefault("spans", [])
    if not isinstance(spans, list):
        return False
    spans.append({
        "name": name, "cat": cat,
        "start": begin_epoch - epoch0,
        "dur": max(0.0, end_epoch - begin_epoch),
        "id": span_id, "parent": parent_id,
        "proc": proc, "thread": thread,
        "args": dict(args or {}),
    })
    return True


# -- derived metrics ---------------------------------------------------

def task_busy_seconds(span_docs: Sequence[Dict[str, object]],
                      key: str = "group") -> Dict[str, float]:
    """Recompute per-``key`` busy seconds from scheduler task spans.

    Busy excludes each task's recorded ``queue_wait`` (time spent
    waiting for a lane worker), mirroring
    ``TaskTiming.seconds`` — so the result must match
    ``ScheduleResult.group_busy_seconds()`` / ``lane_busy_seconds()``
    when computed over the same run.
    """
    busy: Dict[str, float] = {}
    for doc in span_docs:
        if doc.get("cat") != "task":
            continue
        args = doc.get("args") or {}
        label = args.get(key)
        if label is None:
            continue
        seconds = doc["dur"] - args.get("queue_wait", 0.0)
        busy[label] = busy.get(label, 0.0) + seconds
    return busy


# -- Chrome/Perfetto export --------------------------------------------

def chrome_trace(*docs: Dict[str, object],
                 labels: Optional[Sequence[str]] = None) -> Dict[str, object]:
    """Render run-trace documents as one Chrome Trace Event JSON doc.

    Multiple documents (service-side lifecycle + pipeline run) align on
    the epoch axis via each doc's ``epoch0``; all timestamps shift so
    the earliest event lands at ``ts == 0``.  ``proc``/``thread``
    labels map to synthetic ``pid``/``tid`` rows (sorted, ``main``
    first) with ``process_name``/``thread_name`` metadata events, so
    Perfetto shows one track per worker/lane identity.
    """
    del labels  # reserved; proc labels ride on the spans themselves
    present = [doc for doc in docs if doc and doc.get("spans")]
    if not present:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    base_epoch = min(doc["epoch0"] for doc in present)
    rows: List[Tuple[float, Span]] = []
    for doc in present:
        shift = doc["epoch0"] - base_epoch
        for span_doc in doc["spans"]:
            rows.append((shift + span_doc["start"], Span.from_dict(span_doc)))
    t_min = min(ts for ts, _ in rows)

    def _proc_key(label: str) -> Tuple[int, str]:
        return (0 if label == "main" else 1, label)

    procs = sorted({s.proc for _, s in rows}, key=_proc_key)
    pid_of = {label: index + 1 for index, label in enumerate(procs)}
    threads = sorted({(s.proc, s.thread) for _, s in rows})
    tid_of = {pair: index + 1 for index, pair in enumerate(threads)}

    events: List[Dict[str, object]] = []
    for label in procs:
        events.append({"ph": "M", "name": "process_name", "pid": pid_of[label],
                       "tid": 0, "args": {"name": label}})
    for proc_label, thread_label in threads:
        events.append({
            "ph": "M", "name": "thread_name", "pid": pid_of[proc_label],
            "tid": tid_of[(proc_label, thread_label)],
            "args": {"name": thread_label},
        })
    for ts, span_row in sorted(rows, key=lambda row: row[0]):
        args = dict(span_row.args)
        args["span_id"] = span_row.span_id
        if span_row.parent_id is not None:
            args["parent_id"] = span_row.parent_id
        events.append({
            "ph": "X",
            "name": span_row.name,
            "cat": span_row.cat,
            "ts": (ts - t_min) * 1e6,
            "dur": span_row.dur * 1e6,
            "pid": pid_of[span_row.proc],
            "tid": tid_of[(span_row.proc, span_row.thread)],
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}
