"""Dependency-aware task scheduler behind the async executor.

The pipeline's stage graph (:class:`~repro.core.stages.ExecutionPlan`)
says *what* must precede what; this module supplies the machinery that
exploits the freedom left over: a :class:`TaskGraph` of named tasks with
explicit dependencies, run on a thread pool so that independent I/O and
compute overlap (K0 shard-writes against K1 shard-reads, spill writes
against batch deduplication, …).

Two properties matter for a benchmark harness and are designed in:

* **Determinism of results** — a task runs only after every dependency
  has completed, and dependencies must already exist when a task is
  added, so the graph is acyclic *by construction* and a task sees
  exactly the dependency results it would have seen under serial
  execution.
* **Honest timing** — every task's busy time is measured on the worker
  that ran it.  :class:`ScheduleResult` aggregates busy time per group
  (one group per pipeline stage) so per-kernel throughput stays
  comparable to the serial baseline, and exposes
  :attr:`~ScheduleResult.overlap_saved_seconds` — the wall-clock the
  overlap actually recovered — as a separate, clearly-labelled number
  instead of silently deflating kernel times.

The scheduler is deliberately small: a thread pool plus a plain
ready-queue loop, because the graphs involved have tens of nodes, not
millions.  Threads suffice where the overlapped work releases the GIL
(file I/O, numpy kernels); for the work that does not — the TSV codec —
a task can be marked ``lane="process"``, in which case its body returns
a :class:`~repro.core.lanes.LaneTask` descriptor and the scheduler
dispatches it to an attached :class:`~repro.core.lanes.ProcessLanePool`
(the dispatching thread blocks on the pipe, GIL released, while a lane
worker does the CPU work).  Without an attached pool a process-lane
task simply runs its op on the scheduler thread, so lane marking is a
performance hint, never a correctness switch.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.core import trace
from repro.core.exceptions import PipelineError
from repro.core.lanes import LANE_KINDS, LaneTask, ProcessLanePool, run_lane_op

#: A task body: receives the (read-only) map of completed task results,
#: keyed by task name, and returns this task's result.
TaskFn = Callable[[Mapping[str, object]], object]


class SchedulerError(PipelineError):
    """A task failed; carries the originating task's name in the message."""


@dataclass(frozen=True)
class TaskSpec:
    """One node of the task graph."""

    name: str
    fn: TaskFn
    deps: Tuple[str, ...] = ()
    #: Attribution group (typically a kernel name); busy time is summed
    #: per group by :meth:`ScheduleResult.group_busy_seconds`.
    group: str = ""
    #: Keep the result in :attr:`ScheduleResult.results` after every
    #: dependent has completed.  Without this, an intermediate result is
    #: freed as soon as nothing can read it anymore — a pipeline stage's
    #: full edge arrays would otherwise stay pinned for the whole run.
    #: Tasks with no dependents (sinks) are always kept.
    retain: bool = False
    #: Where the task's CPU work runs: ``"thread"`` (on the scheduler
    #: pool, the default) or ``"process"`` (the body returns a
    #: :class:`~repro.core.lanes.LaneTask` which is shipped to the
    #: run's lane pool — or executed in-place when none is attached).
    lane: str = "thread"


@dataclass(frozen=True)
class TaskTiming:
    """Start/finish instants of one task, relative to the run start."""

    name: str
    group: str
    started: float
    finished: float
    #: Lane the task was scheduled on.  For a process-lane task the
    #: interval covers descriptor build + pipe round-trip + remote
    #: compute; time spent merely *queuing* for a lane worker is
    #: recorded separately and excluded from :attr:`seconds`.
    lane: str = "thread"
    #: Seconds a process-lane dispatch waited for a free lane worker
    #: (idle-queue wait plus any lazy respawn).  Kept out of busy
    #: time: when concurrent codec tasks outnumber lane workers, the
    #: same worker's compute would otherwise be billed to every
    #: dispatch that queued behind it, inflating group/lane busy sums
    #: and ``overlap_saved_seconds``.
    queue_wait: float = 0.0

    @property
    def seconds(self) -> float:
        """Busy time of the task on its worker thread."""
        return self.finished - self.started - self.queue_wait


@dataclass
class ScheduleResult:
    """Everything a :meth:`TaskGraph.run` produced.

    Attributes
    ----------
    results:
        Task results keyed by task name.  Holds sinks and
        ``retain=True`` tasks; intermediate results are freed the
        moment their last dependent completes (memory stays bounded by
        the live frontier, not the whole graph's history).
    timings:
        Per-task busy intervals.
    wall_seconds:
        End-to-end wall-clock of the whole graph.
    trace_origin:
        The graph's clock zero on the active trace collector's run
        clock (``None`` when the run was untraced).  Lets callers place
        :class:`TaskTiming` instants — which are graph-clock-relative —
        onto the trace timeline (the async executor synthesises its
        per-stage spans this way).
    """

    results: Dict[str, object] = field(default_factory=dict)
    timings: Dict[str, TaskTiming] = field(default_factory=dict)
    wall_seconds: float = 0.0
    trace_origin: Optional[float] = None

    def group_busy_seconds(self) -> Dict[str, float]:
        """Summed task busy time per group, insertion-ordered.

        Lane-offloaded tasks count toward their group exactly like
        thread tasks — the group is the *what* (a kernel), the lane the
        *where*, and per-kernel attribution must not change when work
        moves between lanes.
        """
        out: Dict[str, float] = {}
        for timing in self.timings.values():
            out[timing.group] = out.get(timing.group, 0.0) + timing.seconds
        return out

    def lane_busy_seconds(self) -> Dict[str, float]:
        """Summed task busy time per lane (``thread``/``process``)."""
        out: Dict[str, float] = {}
        for timing in self.timings.values():
            out[timing.lane] = out.get(timing.lane, 0.0) + timing.seconds
        return out

    @property
    def busy_seconds(self) -> float:
        """Total busy time across all tasks (the "serial equivalent")."""
        return sum(t.seconds for t in self.timings.values())

    @property
    def overlap_saved_seconds(self) -> float:
        """Wall-clock recovered by overlap: ``busy - wall``.

        Positive when tasks genuinely ran concurrently; can be slightly
        negative when scheduling overhead exceeded the (absent) overlap.
        Reported as-is — clamping would hide a pathological schedule.
        """
        return self.busy_seconds - self.wall_seconds


class TaskGraph:
    """A DAG of named tasks, acyclic by construction.

    Dependencies must already be present when :meth:`add` is called, so
    insertion order is a topological order and cycles cannot be
    expressed.

    Examples
    --------
    >>> graph = TaskGraph()
    >>> _ = graph.add("a", lambda r: 1)
    >>> _ = graph.add("b", lambda r: r["a"] + 1, deps=("a",))
    >>> graph.run().results["b"]
    2
    """

    def __init__(self) -> None:
        self._tasks: Dict[str, TaskSpec] = {}

    def __len__(self) -> int:
        return len(self._tasks)

    def add(
        self,
        name: str,
        fn: TaskFn,
        *,
        deps: Tuple[str, ...] = (),
        group: str = "",
        retain: bool = False,
        lane: str = "thread",
    ) -> str:
        """Register a task; returns its name for convenient chaining.

        Parameters
        ----------
        lane:
            ``"thread"`` runs ``fn``'s return value as the result;
            ``"process"`` requires ``fn`` to return a
            :class:`~repro.core.lanes.LaneTask`, which is dispatched to
            the lane pool handed to :meth:`run` (or executed in-place
            when none is).

        Raises
        ------
        ValueError
            On a duplicate name, an unknown lane, or a dependency that
            has not been added yet (which is also how cycles are
            rejected).
        """
        if name in self._tasks:
            raise ValueError(f"duplicate task name {name!r}")
        if lane not in LANE_KINDS:
            raise ValueError(
                f"lane must be one of {LANE_KINDS}, got {lane!r}"
            )
        missing = [dep for dep in deps if dep not in self._tasks]
        if missing:
            raise ValueError(
                f"task {name!r} depends on {missing} which are not in the "
                f"graph yet (add dependencies first; cycles are impossible)"
            )
        self._tasks[name] = TaskSpec(
            name=name, fn=fn, deps=tuple(deps), group=group or name,
            retain=retain, lane=lane,
        )
        return name

    # ------------------------------------------------------------------
    def run(
        self,
        max_workers: Optional[int] = None,
        *,
        lane_pool: Optional[ProcessLanePool] = None,
    ) -> ScheduleResult:
        """Execute the graph, overlapping every ready task.

        Parameters
        ----------
        max_workers:
            Thread-pool width; ``max_workers=1`` degenerates to serial
            execution in insertion order (useful for debugging).
        lane_pool:
            Destination for ``lane="process"`` tasks.  When omitted,
            their :class:`~repro.core.lanes.LaneTask` descriptors run
            on the scheduler thread instead — identical results, no
            extra processes.

        Raises
        ------
        SchedulerError
            When any task raises; the first failure is chained, already
            scheduled tasks are drained, and pending tasks never start.
        """
        if not self._tasks:
            return ScheduleResult()
        result = ScheduleResult()
        waiting = {name: set(spec.deps) for name, spec in self._tasks.items()}
        # How many dependents have yet to finish reading each task's
        # result; at zero a non-retained result is freed.
        readers: Dict[str, int] = {name: 0 for name in self._tasks}
        for spec in self._tasks.values():
            for dep in spec.deps:
                readers[dep] += 1
        tracer = trace.current()
        clock0 = time.perf_counter()
        schedule_handle = None
        if tracer is not None:
            # The schedule span's start is the graph's clock zero (same
            # perf_counter sample), so TaskTiming instants and trace
            # timestamps share one origin.
            result.trace_origin = clock0 - tracer.t0
            schedule_handle = tracer.begin(
                "schedule", cat="run", start=result.trace_origin,
                tasks=len(self._tasks),
            )

        def _call(spec: TaskSpec):
            t_started = time.perf_counter()
            queue_wait = 0.0
            handle = None
            if tracer is not None:
                handle = tracer.begin(
                    f"task:{spec.name}", cat="task",
                    start=t_started - tracer.t0,
                    parent_id=schedule_handle.span_id,
                    group=spec.group, lane=spec.lane,
                )
            try:
                # Re-bind the run's collector on this pool thread so
                # layers the task body calls into (artifact cache, shm
                # plane, lane dispatch) see it ambiently.
                with trace.activate(tracer):
                    value = spec.fn(result.results)
                    if spec.lane == "process":
                        if not isinstance(value, LaneTask):
                            raise TypeError(
                                f"process-lane task {spec.name!r} must return "
                                f"a LaneTask descriptor, got {type(value).__name__}"
                            )
                        task = value
                        if lane_pool is not None:
                            value, queue_wait = lane_pool.run_task_timed(task)
                        else:
                            value = run_lane_op(task.op, task.payload)
                        if task.post is not None:
                            # Parent-side hook (e.g. adopt a shared-memory
                            # segment the op created); applied identically
                            # on the pool and in-place paths.
                            value = task.post(value)
            finally:
                finished = time.perf_counter() - clock0
                timing = TaskTiming(
                    name=spec.name,
                    group=spec.group,
                    started=t_started - clock0,
                    finished=finished,
                    lane=spec.lane,
                    queue_wait=queue_wait,
                )
                result.timings[spec.name] = timing
                if handle is not None:
                    # Same perf_counter samples and the same float
                    # arithmetic as the TaskTiming, so busy recomputed
                    # from this span (dur - queue_wait) matches
                    # ``timing.seconds`` exactly.
                    tracer.end(handle,
                               dur=timing.finished - timing.started,
                               queue_wait=queue_wait)
            return value

        failure: Optional[Tuple[str, BaseException]] = None
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            inflight = {}
            for name in [n for n, deps in waiting.items() if not deps]:
                del waiting[name]
                inflight[pool.submit(_call, self._tasks[name])] = name
            while inflight:
                done, _ = wait(inflight, return_when=FIRST_COMPLETED)
                newly_ready: List[str] = []
                for future in done:
                    name = inflight.pop(future)
                    try:
                        result.results[name] = future.result()
                    except BaseException as exc:  # noqa: BLE001 - reported
                        if failure is None:
                            failure = (name, exc)
                        continue
                    # This task has finished reading its dependencies;
                    # free any whose last reader it was.
                    for dep in self._tasks[name].deps:
                        readers[dep] -= 1
                        if readers[dep] == 0 and not self._tasks[dep].retain:
                            result.results.pop(dep, None)
                    if failure is not None:
                        continue  # drain in-flight work, start nothing new
                    for dep_name, deps in waiting.items():
                        if name in deps:
                            deps.discard(name)
                            if not deps:
                                newly_ready.append(dep_name)
                for name in newly_ready:
                    del waiting[name]
                    inflight[pool.submit(_call, self._tasks[name])] = name
        result.wall_seconds = time.perf_counter() - clock0
        if schedule_handle is not None:
            tracer.end(schedule_handle, dur=result.wall_seconds)
        if failure is not None:
            name, exc = failure
            raise SchedulerError(f"task {name!r} failed: {exc}") from exc
        return result
