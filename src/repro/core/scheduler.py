"""Dependency-aware task scheduler behind the async executor.

The pipeline's stage graph (:class:`~repro.core.stages.ExecutionPlan`)
says *what* must precede what; this module supplies the machinery that
exploits the freedom left over: a :class:`TaskGraph` of named tasks with
explicit dependencies, run on a thread pool so that independent I/O and
compute overlap (K0 shard-writes against K1 shard-reads, spill writes
against batch deduplication, …).

Two properties matter for a benchmark harness and are designed in:

* **Determinism of results** — a task runs only after every dependency
  has completed, and dependencies must already exist when a task is
  added, so the graph is acyclic *by construction* and a task sees
  exactly the dependency results it would have seen under serial
  execution.
* **Honest timing** — every task's busy time is measured on the worker
  that ran it.  :class:`ScheduleResult` aggregates busy time per group
  (one group per pipeline stage) so per-kernel throughput stays
  comparable to the serial baseline, and exposes
  :attr:`~ScheduleResult.overlap_saved_seconds` — the wall-clock the
  overlap actually recovered — as a separate, clearly-labelled number
  instead of silently deflating kernel times.

The scheduler is deliberately small: threads (not processes) because the
overlapped work is dominated by file I/O and numpy kernels that release
the GIL, and a plain ready-queue loop because the graphs involved have
tens of nodes, not millions.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.exceptions import PipelineError

#: A task body: receives the (read-only) map of completed task results,
#: keyed by task name, and returns this task's result.
TaskFn = Callable[[Mapping[str, object]], object]


class SchedulerError(PipelineError):
    """A task failed; carries the originating task's name in the message."""


@dataclass(frozen=True)
class TaskSpec:
    """One node of the task graph."""

    name: str
    fn: TaskFn
    deps: Tuple[str, ...] = ()
    #: Attribution group (typically a kernel name); busy time is summed
    #: per group by :meth:`ScheduleResult.group_busy_seconds`.
    group: str = ""
    #: Keep the result in :attr:`ScheduleResult.results` after every
    #: dependent has completed.  Without this, an intermediate result is
    #: freed as soon as nothing can read it anymore — a pipeline stage's
    #: full edge arrays would otherwise stay pinned for the whole run.
    #: Tasks with no dependents (sinks) are always kept.
    retain: bool = False


@dataclass(frozen=True)
class TaskTiming:
    """Start/finish instants of one task, relative to the run start."""

    name: str
    group: str
    started: float
    finished: float

    @property
    def seconds(self) -> float:
        """Busy time of the task on its worker thread."""
        return self.finished - self.started


@dataclass
class ScheduleResult:
    """Everything a :meth:`TaskGraph.run` produced.

    Attributes
    ----------
    results:
        Task results keyed by task name.  Holds sinks and
        ``retain=True`` tasks; intermediate results are freed the
        moment their last dependent completes (memory stays bounded by
        the live frontier, not the whole graph's history).
    timings:
        Per-task busy intervals.
    wall_seconds:
        End-to-end wall-clock of the whole graph.
    """

    results: Dict[str, object] = field(default_factory=dict)
    timings: Dict[str, TaskTiming] = field(default_factory=dict)
    wall_seconds: float = 0.0

    def group_busy_seconds(self) -> Dict[str, float]:
        """Summed task busy time per group, insertion-ordered."""
        out: Dict[str, float] = {}
        for timing in self.timings.values():
            out[timing.group] = out.get(timing.group, 0.0) + timing.seconds
        return out

    @property
    def busy_seconds(self) -> float:
        """Total busy time across all tasks (the "serial equivalent")."""
        return sum(t.seconds for t in self.timings.values())

    @property
    def overlap_saved_seconds(self) -> float:
        """Wall-clock recovered by overlap: ``busy - wall``.

        Positive when tasks genuinely ran concurrently; can be slightly
        negative when scheduling overhead exceeded the (absent) overlap.
        Reported as-is — clamping would hide a pathological schedule.
        """
        return self.busy_seconds - self.wall_seconds


class TaskGraph:
    """A DAG of named tasks, acyclic by construction.

    Dependencies must already be present when :meth:`add` is called, so
    insertion order is a topological order and cycles cannot be
    expressed.

    Examples
    --------
    >>> graph = TaskGraph()
    >>> _ = graph.add("a", lambda r: 1)
    >>> _ = graph.add("b", lambda r: r["a"] + 1, deps=("a",))
    >>> graph.run().results["b"]
    2
    """

    def __init__(self) -> None:
        self._tasks: Dict[str, TaskSpec] = {}

    def __len__(self) -> int:
        return len(self._tasks)

    def add(
        self,
        name: str,
        fn: TaskFn,
        *,
        deps: Tuple[str, ...] = (),
        group: str = "",
        retain: bool = False,
    ) -> str:
        """Register a task; returns its name for convenient chaining.

        Raises
        ------
        ValueError
            On a duplicate name or a dependency that has not been added
            yet (which is also how cycles are rejected).
        """
        if name in self._tasks:
            raise ValueError(f"duplicate task name {name!r}")
        missing = [dep for dep in deps if dep not in self._tasks]
        if missing:
            raise ValueError(
                f"task {name!r} depends on {missing} which are not in the "
                f"graph yet (add dependencies first; cycles are impossible)"
            )
        self._tasks[name] = TaskSpec(
            name=name, fn=fn, deps=tuple(deps), group=group or name,
            retain=retain,
        )
        return name

    # ------------------------------------------------------------------
    def run(self, max_workers: Optional[int] = None) -> ScheduleResult:
        """Execute the graph, overlapping every ready task.

        Parameters
        ----------
        max_workers:
            Thread-pool width; ``max_workers=1`` degenerates to serial
            execution in insertion order (useful for debugging).

        Raises
        ------
        SchedulerError
            When any task raises; the first failure is chained, already
            scheduled tasks are drained, and pending tasks never start.
        """
        if not self._tasks:
            return ScheduleResult()
        result = ScheduleResult()
        waiting = {name: set(spec.deps) for name, spec in self._tasks.items()}
        # How many dependents have yet to finish reading each task's
        # result; at zero a non-retained result is freed.
        readers: Dict[str, int] = {name: 0 for name in self._tasks}
        for spec in self._tasks.values():
            for dep in spec.deps:
                readers[dep] += 1
        clock0 = time.perf_counter()

        def _call(spec: TaskSpec):
            started = time.perf_counter() - clock0
            try:
                value = spec.fn(result.results)
            finally:
                finished = time.perf_counter() - clock0
                result.timings[spec.name] = TaskTiming(
                    name=spec.name,
                    group=spec.group,
                    started=started,
                    finished=finished,
                )
            return value

        failure: Optional[Tuple[str, BaseException]] = None
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            inflight = {}
            for name in [n for n, deps in waiting.items() if not deps]:
                del waiting[name]
                inflight[pool.submit(_call, self._tasks[name])] = name
            while inflight:
                done, _ = wait(inflight, return_when=FIRST_COMPLETED)
                newly_ready: List[str] = []
                for future in done:
                    name = inflight.pop(future)
                    try:
                        result.results[name] = future.result()
                    except BaseException as exc:  # noqa: BLE001 - reported
                        if failure is None:
                            failure = (name, exc)
                        continue
                    # This task has finished reading its dependencies;
                    # free any whose last reader it was.
                    for dep in self._tasks[name].deps:
                        readers[dep] -= 1
                        if readers[dep] == 0 and not self._tasks[dep].retain:
                            result.results.pop(dep, None)
                    if failure is not None:
                        continue  # drain in-flight work, start nothing new
                    for dep_name, deps in waiting.items():
                        if name in deps:
                            deps.discard(name)
                            if not deps:
                                newly_ready.append(dep_name)
                for name in newly_ready:
                    del waiting[name]
                    inflight[pool.submit(_call, self._tasks[name])] = name
        result.wall_seconds = time.perf_counter() - clock0
        if failure is not None:
            name, exc = failure
            raise SchedulerError(f"task {name!r} failed: {exc}") from exc
        return result
