"""Result records for kernels and whole pipeline runs.

The benchmark's reporting currency is *edges per second*:

* Kernel 1 and 2: ``M / t``;
* Kernel 3: ``iterations * M / t`` (20 SpMVs each touch all M edges);
* Kernel 0 is officially untimed but measured anyway for Figure 4.

``KernelResult`` captures one kernel's timing plus a free-form details
dict (phase breakdowns, nnz counts); ``PipelineResult`` aggregates the
four kernels with the config echo and optional validation output.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.config import KernelName, PipelineConfig


@dataclass(frozen=True)
class KernelResult:
    """Timing and throughput for one kernel execution.

    Attributes
    ----------
    kernel:
        Which kernel this measures.
    seconds:
        Wall-clock duration of the timed region.
    edges_processed:
        Edge operations attributed to the kernel (``M``, or
        ``iterations * M`` for Kernel 3).
    officially_timed:
        False for Kernel 0, whose "performance is not part of the
        benchmark" but is still reported in the paper's Figure 4.
    details:
        Free-form metrics: phase timings, nnz, eliminated column counts…
    """

    kernel: KernelName
    seconds: float
    edges_processed: int
    officially_timed: bool = True
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def edges_per_second(self) -> float:
        """Throughput; ``inf`` when the timed region was unmeasurably fast."""
        if self.seconds <= 0.0:
            return float("inf")
        return self.edges_processed / self.seconds

    @property
    def cached(self) -> bool:
        """Whether the output was served from the artifact cache.

        A cached kernel's ``seconds`` measures a cache read, so its
        throughput must not be presented as kernel performance.
        """
        return self.details.get("artifact_cache") == "hit"

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe encoding.

        ``edges_per_second`` is ``None`` for cached kernels — consumers
        get an explicit gap instead of cache-read speed masquerading as
        throughput (matching the report/figure handling).
        """
        return {
            "kernel": self.kernel.value,
            "seconds": self.seconds,
            "edges_processed": self.edges_processed,
            "edges_per_second": None if self.cached else self.edges_per_second,
            "officially_timed": self.officially_timed,
            "cached": self.cached,
            "details": _json_safe(self.details),
        }


@dataclass
class PipelineResult:
    """Everything a pipeline run produced.

    Attributes
    ----------
    config:
        The config that produced this result.
    kernels:
        Per-kernel results, in execution order.
    rank:
        Final PageRank vector (length ``N``).
    validation:
        Eigenvector cross-check output when ``config.validate`` was set.
    wall_seconds:
        Measured end-to-end wall-clock of the whole run (set by the
        executors).  Equals roughly :attr:`total_seconds` for serial
        strategies; *smaller* under the async executor, whose per-kernel
        ``seconds`` report busy time so throughput stays comparable while
        the overlap's saving shows up here.
    trace:
        Run-trace document when ``config.trace`` was set: ``{"epoch0":
        epoch-seconds, "spans": [span dicts]}`` from
        :meth:`repro.core.trace.TraceCollector.trace_doc`.  Export with
        :func:`repro.core.trace.chrome_trace`.
    """

    config: PipelineConfig
    kernels: List[KernelResult] = field(default_factory=list)
    rank: Optional[np.ndarray] = None
    validation: Optional[Dict[str, object]] = None
    wall_seconds: Optional[float] = None
    trace: Optional[Dict[str, object]] = None

    def kernel(self, name: KernelName) -> KernelResult:
        """Fetch one kernel's result.

        Raises
        ------
        KeyError
            If the kernel did not run.
        """
        for result in self.kernels:
            if result.kernel is name:
                return result
        raise KeyError(f"no result recorded for {name.value}")

    @property
    def total_seconds(self) -> float:
        """Sum of all kernel durations (including the untimed Kernel 0)."""
        return sum(k.seconds for k in self.kernels)

    @property
    def benchmark_seconds(self) -> float:
        """Sum over officially timed kernels only (K1 + K2 + K3)."""
        return sum(k.seconds for k in self.kernels if k.officially_timed)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe encoding (the rank vector is summarised, not dumped)."""
        doc: Dict[str, object] = {
            "config": self.config.to_dict(),
            "kernels": [k.to_dict() for k in self.kernels],
            "total_seconds": self.total_seconds,
            "benchmark_seconds": self.benchmark_seconds,
        }
        if self.wall_seconds is not None:
            doc["wall_seconds"] = self.wall_seconds
        if self.rank is not None:
            doc["rank_summary"] = {
                "size": int(self.rank.size),
                "sum": float(self.rank.sum()),
                "max": float(self.rank.max()) if self.rank.size else 0.0,
                "argmax": int(self.rank.argmax()) if self.rank.size else -1,
            }
        if self.validation is not None:
            doc["validation"] = _json_safe(self.validation)
        if self.trace is not None:
            doc["trace"] = _json_safe(self.trace)
        return doc

    def to_json(self) -> str:
        """Stable JSON encoding of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def _json_safe(value):
    """Recursively convert numpy scalars/arrays for JSON encoding."""
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return value
