"""Benchmark configuration.

:class:`PipelineConfig` is the single source of truth for a run: sizes,
seeds, file layout, backend and algorithm switches.  It is immutable,
hashable, JSON-serialisable, and fully determines the pipeline output
(given the same library version) — reproducibility is a config property,
not a harness afterthought.

:func:`run_sizes_table` regenerates the paper's Table II from first
principles.
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional

from repro._util import check_in_range, check_nonneg_int, check_positive_int
from repro.core.shmplane import SHARD_PLANES
from repro.generators.base import BYTES_PER_EDGE, GeneratorSpec


class KernelName(str, enum.Enum):
    """The four pipeline kernels, in execution order."""

    K0_GENERATE = "k0-generate"
    K1_SORT = "k1-sort"
    K2_FILTER = "k2-filter"
    K3_PAGERANK = "k3-pagerank"

    @property
    def index(self) -> int:
        """0-based kernel position."""
        return list(KernelName).index(self)


#: Damping factor fixed by the paper (Section IV.D).
DEFAULT_DAMPING = 0.85
#: PageRank iteration count fixed by the paper.
DEFAULT_ITERATIONS = 20
#: Execution strategies understood by :mod:`repro.core.executor`.
EXECUTION_MODES = ("serial", "streaming", "parallel", "async")
#: Default rank count for the "parallel" strategy (config and CLI).
DEFAULT_PARALLEL_RANKS = 4
#: Communicators selectable by the "parallel" strategy.
PARALLEL_EXECUTORS = ("sim", "mp")
#: Default pass-1 batch size for the "streaming" strategy (config, CLI,
#: and :func:`repro.core.streaming.streaming_kernel2`).
DEFAULT_STREAMING_BATCH_EDGES = 1 << 18
#: Lane kinds for the "async" strategy's codec tasks (config and CLI):
#: "thread" keeps TSV encode/decode on the scheduler's thread pool,
#: "process" offloads them to a :class:`repro.core.lanes.ProcessLanePool`.
ASYNC_LANES = ("thread", "process")
# Shard hand-off planes for process lanes (config and CLI): "pipe"
# pickles arrays over the worker pipes, "shm" shares them through
# ShardBuffer segments (zero-copy; only segment names cross the pipe).
# SHARD_PLANES itself lives in repro.core.shmplane (the single source
# of truth) and is re-exported via the import at the top of this module.


@dataclass(frozen=True)
class PipelineConfig:
    """Everything needed to reproduce one benchmark run.

    Attributes
    ----------
    scale:
        Graph500 scale ``S``: the graph has ``N = 2**S`` vertices.
    edge_factor:
        Edges per vertex ``k`` (paper fixes 16).
    seed:
        Root RNG seed; child streams are derived deterministically.
    num_files:
        Shard count for Kernels 0 and 1 output ("a free parameter to be
        set by the implementer or the user").
    backend:
        Registered backend name (see :func:`repro.backends.registry`).
    generator:
        Registered Kernel 0 generator name.
    damping:
        PageRank damping ``c``.
    iterations:
        Fixed PageRank iteration count.
    data_dir:
        Directory for kernel files; ``None`` means a temporary directory
        cleaned up after the run.
    vertex_base:
        On-disk vertex label base (0, or 1 for Matlab convention).
    file_format:
        ``"tsv"`` (paper) or ``"npy"`` (binary ablation).
    sort_algorithm:
        In-memory sort used by Kernel 1 (``numpy``/``counting``/``radix``).
    sort_by_end_vertex:
        Also order ties by end vertex (paper's open question).
    external_sort:
        Force the out-of-core sort path in Kernel 1 regardless of size.
    formula:
        Kernel 3 update form: ``"appendix"`` (with ``/N``, the correct
        PageRank) or ``"paper-body"`` (the body text's typo, kept for
        documentation of the divergence).
    validate:
        Run the eigenvector cross-check after Kernel 3 (small scales).
    keep_files:
        Keep kernel files after the run even in a temp dir.
    execution:
        Execution strategy: ``"serial"`` (in-memory, the default),
        ``"streaming"`` (out-of-core Kernel 2), ``"parallel"``
        (sharded distributed Kernels 2+3), or ``"async"`` (overlapped
        stage I/O and compute via the task scheduler).  See
        :mod:`repro.core.executor`.
    cache_dir:
        Root of the Kernel 0/1 artifact cache
        (:class:`repro.core.artifacts.ArtifactCache`); ``None`` disables
        caching.
    parallel_ranks:
        Rank count for the ``"parallel"`` execution strategy.
    parallel_executor:
        Communicator for the ``"parallel"`` strategy: ``"sim"``
        (threads, traffic-accounted) or ``"mp"`` (multiprocessing, true
        process parallelism; traffic is logged per process and not
        aggregated).
    streaming_batch_edges:
        Pass-1 batch size (the memory knob) for the ``"streaming"``
        strategy.
    async_lanes:
        Where the ``"async"`` strategy runs its GIL-bound TSV codec
        tasks: ``"thread"`` (scheduler thread pool, the default) or
        ``"process"`` (offloaded to lane worker processes so shard
        encodes/decodes overlap compute instead of contending for the
        GIL).  Results are bit-identical either way.
    shard_plane:
        How edge arrays cross the lane-worker boundary when process
        lanes are active: ``"pipe"`` (pickled over the worker pipes,
        the default) or ``"shm"`` (shared-memory
        :class:`~repro.core.shmplane.ShardBuffer` segments; only
        segment names cross the pipe).  Degrades to ``"pipe"`` with a
        warning when shared memory is unavailable; results are
        bit-identical either way.
    cache_mmap:
        Serve ``.npy`` shard payloads from the artifact cache as
        read-only memory-mapped views instead of private copies, so
        concurrent readers on one host share one page-cache-resident
        warm cache.  Views are copy-on-read at mutation seams (see
        ARCHITECTURE.md's shard-plane section).
    trace:
        Record a span trace of the run (:mod:`repro.core.trace`): stage
        phases, scheduler tasks, lane ops, shm segment lifecycle, and
        cache probes land in ``PipelineResult.trace``, exportable as a
        Chrome/Perfetto ``trace.json``.  Off by default; the disabled
        path is a cheap no-op and the flag never enters artifact-cache
        keys (those enumerate their fields explicitly).
    """

    scale: int
    edge_factor: int = 16
    seed: int = 1
    num_files: int = 1
    backend: str = "scipy"
    generator: str = "kronecker"
    damping: float = DEFAULT_DAMPING
    iterations: int = DEFAULT_ITERATIONS
    data_dir: Optional[Path] = None
    vertex_base: int = 0
    file_format: str = "tsv"
    sort_algorithm: str = "numpy"
    sort_by_end_vertex: bool = False
    external_sort: bool = False
    formula: str = "appendix"
    validate: bool = False
    keep_files: bool = False
    execution: str = "serial"
    cache_dir: Optional[Path] = None
    parallel_ranks: int = DEFAULT_PARALLEL_RANKS
    parallel_executor: str = "sim"
    streaming_batch_edges: int = DEFAULT_STREAMING_BATCH_EDGES
    async_lanes: str = "thread"
    shard_plane: str = "pipe"
    cache_mmap: bool = False
    trace: bool = False

    def __post_init__(self) -> None:
        check_positive_int("scale", self.scale)
        check_positive_int("edge_factor", self.edge_factor)
        check_nonneg_int("seed", self.seed)
        check_positive_int("num_files", self.num_files)
        check_in_range("damping", self.damping, 0.0, 1.0)
        check_positive_int("iterations", self.iterations)
        check_nonneg_int("vertex_base", self.vertex_base)
        if self.vertex_base not in (0, 1):
            raise ValueError(f"vertex_base must be 0 or 1, got {self.vertex_base}")
        if self.file_format not in ("tsv", "npy", "tsv.gz"):
            raise ValueError(
                "file_format must be 'tsv', 'npy', or 'tsv.gz', "
                f"got {self.file_format!r}"
            )
        if self.formula not in ("appendix", "paper-body"):
            raise ValueError(
                f"formula must be 'appendix' or 'paper-body', got {self.formula!r}"
            )
        if self.execution not in EXECUTION_MODES:
            raise ValueError(
                f"execution must be one of {EXECUTION_MODES}, "
                f"got {self.execution!r}"
            )
        check_positive_int("parallel_ranks", self.parallel_ranks)
        if self.parallel_executor not in PARALLEL_EXECUTORS:
            raise ValueError(
                f"parallel_executor must be one of {PARALLEL_EXECUTORS}, "
                f"got {self.parallel_executor!r}"
            )
        check_positive_int("streaming_batch_edges", self.streaming_batch_edges)
        if self.async_lanes not in ASYNC_LANES:
            raise ValueError(
                f"async_lanes must be one of {ASYNC_LANES}, "
                f"got {self.async_lanes!r}"
            )
        if self.shard_plane not in SHARD_PLANES:
            raise ValueError(
                f"shard_plane must be one of {SHARD_PLANES}, "
                f"got {self.shard_plane!r}"
            )
        if self.data_dir is not None:
            object.__setattr__(self, "data_dir", Path(self.data_dir))
        if self.cache_dir is not None:
            object.__setattr__(self, "cache_dir", Path(self.cache_dir))

    # ------------------------------------------------------------------
    # Derived sizes (paper Section IV.A / Table II)
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """``N = 2**scale``."""
        return GeneratorSpec(self.scale, self.edge_factor).num_vertices

    @property
    def num_edges(self) -> int:
        """``M = edge_factor * N``."""
        return GeneratorSpec(self.scale, self.edge_factor).num_edges

    @property
    def memory_bytes(self) -> int:
        """Edge-data footprint at 16 bytes/edge (Table II's column)."""
        return self.num_edges * BYTES_PER_EDGE

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict (paths become strings)."""
        doc = asdict(self)
        for key in ("data_dir", "cache_dir"):
            if doc[key] is not None:
                doc[key] = str(doc[key])
        return doc

    def to_json(self) -> str:
        """Stable JSON encoding."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "PipelineConfig":
        """Inverse of :meth:`to_dict`."""
        doc = dict(doc)
        for key in ("data_dir", "cache_dir"):
            if doc.get(key):
                doc[key] = Path(str(doc[key]))
        return cls(**doc)  # type: ignore[arg-type]

    def with_overrides(self, **changes: object) -> "PipelineConfig":
        """Functional update (delegates to ``dataclasses.replace``)."""
        return replace(self, **changes)  # type: ignore[arg-type]


@dataclass(frozen=True)
class RunSizeRow:
    """One row of the paper's Table II."""

    scale: int
    max_vertices: int
    max_edges: int
    memory_bytes: int


#: Bytes/edge that reproduce the paper's Table II memory column.
#: The paper's *text* says "assuming 16 bytes per edge", but its printed
#: numbers (25MB at scale 16 … 1.6GB at scale 22) only follow from
#: ~24 bytes/edge (1048576 * 24 = 25.2 MB; 67108864 * 24 = 1.61 GB).
#: We reproduce the published numbers and document the discrepancy in
#: EXPERIMENTS.md.
TABLE2_BYTES_PER_EDGE = 24


def run_sizes_table(
    scales: Optional[List[int]] = None,
    edge_factor: int = 16,
    bytes_per_edge: int = TABLE2_BYTES_PER_EDGE,
) -> List[RunSizeRow]:
    """Regenerate the paper's Table II (benchmark run sizes).

    Parameters
    ----------
    scales:
        Scale factors to tabulate; defaults to the paper's 16..22.
    edge_factor:
        Edges per vertex (paper: 16).
    bytes_per_edge:
        Memory-column multiplier; the default 24 matches the paper's
        printed numbers (its text says 16 — see
        :data:`TABLE2_BYTES_PER_EDGE`).

    Examples
    --------
    >>> rows = run_sizes_table([16])
    >>> rows[0].max_vertices, rows[0].max_edges
    (65536, 1048576)
    """
    scales = scales if scales is not None else list(range(16, 23))
    rows = []
    for scale in scales:
        spec = GeneratorSpec(scale, edge_factor)
        rows.append(
            RunSizeRow(
                scale=scale,
                max_vertices=spec.num_vertices,
                max_edges=spec.num_edges,
                memory_bytes=spec.num_edges * bytes_per_edge,
            )
        )
    return rows
