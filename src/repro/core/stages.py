"""The stage graph: kernels as composable, contract-checked nodes.

The paper describes *one* pipeline whose kernels stress different system
axes, but an implementation can run that pipeline many ways — serially
in memory, out-of-core, or sharded across ranks.  This module factors
the *protocol* out of any single execution strategy:

* :class:`Contract` — a named post-condition verified after a stage
  (the four inter-kernel checks of Sections IV.A–D), enforced
  identically by every executor and always *outside* the timed region;
* :class:`Stage` — one kernel as a graph node: what it provides, what
  artifacts it consumes, whether its time counts toward the benchmark;
* :class:`ExecutionPlan` — an ordered, dependency-validated sequence of
  stages (the benchmark's "each kernel ... must be fully completed
  before the next kernel can begin");
* :class:`StageContext` — the artifact store threaded through a run.

Executors (:mod:`repro.core.executor`) decide *how* each stage's kernel
is computed; the plan decides *what* must happen and *what must hold*
afterwards.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

import numpy as np

from repro.core.config import KernelName, PipelineConfig
from repro.core.exceptions import KernelContractError
from repro.sort.inmemory import is_sorted_by_start

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.backends.base import Backend

#: Artifact keys produced by the default plan, in order.
ARTIFACT_K0 = "k0_dataset"
ARTIFACT_K1 = "k1_dataset"
ARTIFACT_ADJACENCY = "adjacency"
ARTIFACT_RANK = "rank"


@dataclass
class StageContext:
    """Mutable state threaded through one pipeline execution.

    Attributes
    ----------
    config:
        The run configuration.
    backend:
        The backend computing (some of) the kernels.
    base_dir:
        Scratch/file directory for this run.
    artifacts:
        Stage outputs keyed by :attr:`Stage.provides`.
    scratch:
        Executor-private state (e.g. the fused parallel-run result).
    held_locks:
        Shared artifact-cache entry locks acquired for this run (cache
        datasets are read lazily by later stages, so eviction must be
        kept away until the run ends); released by the executor's
        :meth:`release_locks` in its ``finally`` block.
    """

    config: PipelineConfig
    backend: "Backend"
    base_dir: Path
    artifacts: Dict[str, object] = field(default_factory=dict)
    scratch: Dict[str, object] = field(default_factory=dict)
    held_locks: List[object] = field(default_factory=list)

    def release_locks(self) -> None:
        """Release every held cache-entry lock (idempotent)."""
        while self.held_locks:
            self.held_locks.pop().release()

    def require(self, key: str) -> object:
        """Fetch an artifact, raising a diagnosable error when missing."""
        try:
            return self.artifacts[key]
        except KeyError:
            raise KernelContractError(
                f"artifact {key!r} was never produced; available: "
                f"{sorted(self.artifacts)}"
            ) from None


class Contract(abc.ABC):
    """A named post-condition enforced after one stage completes.

    Contracts read the :class:`StageContext` (the stage's own output
    and, when needed, earlier artifacts) and raise
    :class:`~repro.core.exceptions.KernelContractError` on violation.
    They never mutate state and always run outside timed regions, so
    every executor pays the same zero measurement cost for them.
    """

    #: Human-readable contract id (shown in error context / docs).
    name: str = ""

    @abc.abstractmethod
    def check(self, ctx: StageContext) -> None:
        """Verify the post-condition, raising on violation."""


class GenerateContract(Contract):
    """K0: edge and vertex counts match the configured problem size."""

    name = "k0-counts"

    def check(self, ctx: StageContext) -> None:
        dataset = ctx.require(ARTIFACT_K0)
        expected = ctx.config.num_edges
        if dataset.num_edges != expected:
            raise KernelContractError(
                f"Kernel 0 wrote {dataset.num_edges} edges, spec requires "
                f"M = {expected}"
            )
        if dataset.num_vertices != ctx.config.num_vertices:
            raise KernelContractError(
                f"Kernel 0 dataset declares N = {dataset.num_vertices}, "
                f"config requires {ctx.config.num_vertices}"
            )


class SortContract(Contract):
    """K1: edge count preserved; output sorted by start vertex."""

    name = "k1-sorted"

    def check(self, ctx: StageContext) -> None:
        source = ctx.require(ARTIFACT_K0)
        output = ctx.require(ARTIFACT_K1)
        if output.num_edges != source.num_edges:
            raise KernelContractError(
                f"Kernel 1 changed the edge count: {source.num_edges} -> "
                f"{output.num_edges}"
            )
        previous_last = None
        for u, _ in output.iter_shards():
            if len(u) == 0:
                continue
            if not is_sorted_by_start(u):
                raise KernelContractError(
                    "Kernel 1 output is not sorted by start vertex within "
                    "a shard"
                )
            if previous_last is not None and u[0] < previous_last:
                raise KernelContractError(
                    "Kernel 1 output is not sorted across shard boundaries"
                )
            previous_last = int(u[-1])


class FilterContract(Contract):
    """K2: pre-filter entries sum to M; matrix dimension is N."""

    name = "k2-entry-sum"

    def check(self, ctx: StageContext) -> None:
        handle = ctx.require(ARTIFACT_ADJACENCY)
        expected = float(ctx.config.num_edges)
        total = handle.pre_filter_entry_total
        if not np.isfinite(total):
            raise KernelContractError(
                f"Kernel 2 pre-filter entry total is non-finite ({total}), "
                f"spec requires M = {expected}"
            )
        if abs(total - expected) > 1e-6 * max(expected, 1.0):
            raise KernelContractError(
                f"Kernel 2 adjacency entries sum to {total}, spec requires "
                f"M = {expected}"
            )
        if handle.num_vertices != ctx.config.num_vertices:
            raise KernelContractError(
                f"Kernel 2 matrix is {handle.num_vertices}-dimensional, "
                f"config requires N = {ctx.config.num_vertices}"
            )


class RankContract(Contract):
    """K3: rank vector is finite, non-negative, and length N."""

    name = "k3-rank-vector"

    def check(self, ctx: StageContext) -> None:
        rank = np.asarray(ctx.require(ARTIFACT_RANK))
        n = ctx.config.num_vertices
        if rank.shape != (n,):
            raise KernelContractError(
                f"Kernel 3 rank vector has shape {rank.shape}, expected ({n},)"
            )
        if not np.isfinite(rank).all():
            raise KernelContractError("Kernel 3 rank vector has non-finite entries")
        if (rank < 0).any():
            raise KernelContractError("Kernel 3 rank vector has negative entries")


@dataclass(frozen=True)
class Stage:
    """One kernel as a node of the execution graph.

    Attributes
    ----------
    kernel:
        Which benchmark kernel this stage executes.
    provides:
        Artifact key this stage stores its output under.
    requires:
        Artifact keys that must exist before the stage may run.
    officially_timed:
        False for Kernel 0 (paper: "performance is not part of the
        benchmark" but still reported for Figure 4).
    contract:
        Post-condition verified (outside the timed region) when the
        executor runs with ``verify=True``.
    iterations_scaled:
        Whether throughput counts ``iterations * M`` edge operations
        (Kernel 3) instead of ``M``.
    """

    kernel: KernelName
    provides: str
    requires: Tuple[str, ...] = ()
    officially_timed: bool = True
    contract: Optional[Contract] = None
    iterations_scaled: bool = False

    def nominal_edges(self, config: PipelineConfig) -> int:
        """Edge operations attributed to this stage by the spec.

        Executors prefer a kernel-reported ``details["edges_processed"]``
        when present (e.g. the streaming Kernel 2 reports what it
        actually ingested); this is the fallback.
        """
        if self.iterations_scaled:
            return config.iterations * config.num_edges
        return config.num_edges


@dataclass(frozen=True)
class ExecutionPlan:
    """A validated, ordered stage graph.

    The constructor verifies the dependency closure: every ``requires``
    key must be provided by an *earlier* stage, and no two stages may
    provide the same artifact.  This is what lets executors be dumb
    loops — sequencing correctness is a property of the plan.

    Examples
    --------
    >>> plan = default_plan()
    >>> [stage.kernel.value for stage in plan.stages]
    ['k0-generate', 'k1-sort', 'k2-filter', 'k3-pagerank']
    """

    stages: Tuple[Stage, ...]

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError("ExecutionPlan needs at least one stage")
        provided: set = set()
        for stage in self.stages:
            missing = [key for key in stage.requires if key not in provided]
            if missing:
                raise ValueError(
                    f"stage {stage.kernel.value} requires {missing} which no "
                    f"earlier stage provides"
                )
            if stage.provides in provided:
                raise ValueError(
                    f"artifact {stage.provides!r} provided by more than one "
                    f"stage"
                )
            provided.add(stage.provides)

    def stage(self, kernel: KernelName) -> Stage:
        """Fetch the stage executing ``kernel``.

        Raises
        ------
        KeyError
            When the plan has no stage for that kernel.
        """
        for stage in self.stages:
            if stage.kernel is kernel:
                return stage
        raise KeyError(f"plan has no stage for {kernel.value}")


def default_plan() -> ExecutionPlan:
    """The benchmark's canonical four-stage plan with all contracts."""
    return ExecutionPlan(
        stages=(
            Stage(
                kernel=KernelName.K0_GENERATE,
                provides=ARTIFACT_K0,
                officially_timed=False,
                contract=GenerateContract(),
            ),
            Stage(
                kernel=KernelName.K1_SORT,
                provides=ARTIFACT_K1,
                requires=(ARTIFACT_K0,),
                contract=SortContract(),
            ),
            Stage(
                kernel=KernelName.K2_FILTER,
                provides=ARTIFACT_ADJACENCY,
                requires=(ARTIFACT_K1,),
                contract=FilterContract(),
            ),
            Stage(
                kernel=KernelName.K3_PAGERANK,
                provides=ARTIFACT_RANK,
                requires=(ARTIFACT_ADJACENCY,),
                contract=RankContract(),
                iterations_scaled=True,
            ),
        )
    )
