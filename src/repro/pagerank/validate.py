"""Eigenvector cross-check of the Kernel 3 result (paper Section IV.D).

The paper: "The results of the above calculation can be checked by
comparing r with the first eigenvector of ``c*A.' + (1-c)/N``", both
normalised by their 1-norms.  Because the benchmark runs a *fixed* 20
iterations rather than to convergence, the comparison tolerance must
absorb the remaining transient (roughly ``c**iterations ≈ 0.039`` in the
1-norm for c = 0.85, k = 20); :func:`validate_rank` therefore reports
both the raw distances and a pass/fail against a configurable bound.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro._util import check_in_range

#: Below this size the dense eigensolver is used (robust for tiny,
#: possibly highly degenerate matrices); above it, ARPACK on a
#: matrix-free operator.
_DENSE_LIMIT = 1500


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of the eigenvector comparison.

    Attributes
    ----------
    l1_distance:
        ``|| r/|r|_1 - e/|e|_1 ||_1`` between the normalised rank and
        eigenvector.
    cosine_similarity:
        Cosine of the angle between the two vectors.
    eigenvalue:
        Modulus of the dominant eigenvalue (sub-stochastic matrices give
        values below 1).
    tolerance:
        The pass threshold applied to ``l1_distance``.
    passed:
        Whether the check succeeded.
    """

    l1_distance: float
    cosine_similarity: float
    eigenvalue: float
    tolerance: float
    passed: bool

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe encoding."""
        return asdict(self)


def spectral_rank(adjacency: sp.spmatrix, damping: float = 0.85) -> np.ndarray:
    """Dominant eigenvector of ``c*A.T + (1-c)/N * ones`` (unit 1-norm).

    Uses a matrix-free operator so the rank-one ``(1-c)/N`` term never
    materialises; falls back to dense ``numpy.linalg.eig`` for small
    matrices where ARPACK is unreliable.
    """
    check_in_range("damping", damping, 0.0, 1.0)
    n = adjacency.shape[0]
    c = damping
    at = adjacency.T.tocsr()

    if n <= _DENSE_LIMIT:
        dense = c * np.asarray(at.todense()) + (1.0 - c) / n
        eigenvalues, eigenvectors = np.linalg.eig(dense)
        lead = int(np.argmax(np.abs(eigenvalues)))
        vec = np.real(eigenvectors[:, lead])
    else:
        def matvec(x: np.ndarray) -> np.ndarray:
            return c * (at @ x) + (1.0 - c) / n * x.sum()

        operator = spla.LinearOperator((n, n), matvec=matvec, dtype=np.float64)
        eigenvalues, eigenvectors = spla.eigs(operator, k=1, which="LM", tol=1e-10)
        vec = np.real(eigenvectors[:, 0])

    norm = np.abs(vec).sum()
    if norm == 0:
        raise ValueError("eigenvector has zero 1-norm")
    vec = vec / norm
    if vec.sum() < 0:
        vec = -vec
    return vec


def dominant_eigenvalue(adjacency: sp.spmatrix, damping: float = 0.85) -> float:
    """Modulus of the dominant eigenvalue of the validation matrix."""
    n = adjacency.shape[0]
    c = damping
    at = adjacency.T.tocsr()
    if n <= _DENSE_LIMIT:
        dense = c * np.asarray(at.todense()) + (1.0 - c) / n
        return float(np.max(np.abs(np.linalg.eigvals(dense))))

    def matvec(x: np.ndarray) -> np.ndarray:
        return c * (at @ x) + (1.0 - c) / n * x.sum()

    operator = spla.LinearOperator((n, n), matvec=matvec, dtype=np.float64)
    eigenvalues = spla.eigs(
        operator, k=1, which="LM", tol=1e-10, return_eigenvectors=False
    )
    return float(np.abs(eigenvalues[0]))


def validate_rank(
    adjacency: sp.spmatrix,
    rank: np.ndarray,
    *,
    damping: float = 0.85,
    tolerance: float = 0.05,
) -> ValidationReport:
    """Compare a Kernel 3 rank vector against the spectral solution.

    Parameters
    ----------
    adjacency:
        The Kernel 2 normalised matrix.
    rank:
        The Kernel 3 output (any positive scale; it is 1-norm
        normalised before comparison, per the paper).
    damping:
        The ``c`` used to produce ``rank``.
    tolerance:
        Pass bound on the normalised 1-norm distance.  The default 0.05
        absorbs the ``c**20 ≈ 0.039`` truncation left by the fixed
        iteration count.

    Examples
    --------
    >>> import numpy as np, scipy.sparse as sp
    >>> from repro.pagerank.benchmark import benchmark_pagerank
    >>> a = sp.csr_matrix(np.array([[0, 1.0], [1.0, 0]]))
    >>> r = benchmark_pagerank(a, np.array([0.7, 0.3]))
    >>> validate_rank(a, r).passed
    True
    """
    n = adjacency.shape[0]
    rank = np.asarray(rank, dtype=np.float64)
    if rank.shape != (n,):
        raise ValueError(f"rank shape {rank.shape} != ({n},)")
    norm = np.abs(rank).sum()
    if norm == 0:
        raise ValueError("rank vector has zero 1-norm")
    r_hat = rank / norm

    eig_vec = spectral_rank(adjacency, damping)
    eigenvalue = dominant_eigenvalue(adjacency, damping)

    l1 = float(np.abs(r_hat - eig_vec).sum())
    denom = np.linalg.norm(r_hat) * np.linalg.norm(eig_vec)
    cosine = float(np.dot(r_hat, eig_vec) / denom) if denom > 0 else 0.0
    return ValidationReport(
        l1_distance=l1,
        cosine_similarity=cosine,
        eigenvalue=eigenvalue,
        tolerance=tolerance,
        passed=l1 <= tolerance,
    )
