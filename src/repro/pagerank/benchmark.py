"""Kernel 3's PageRank update as a standalone, backend-neutral function.

The benchmark fixes the iteration count (20) rather than testing
convergence, "yield[ing] more consistent timing results that are less
dependent on the specifics of the data generator" — this module is the
specification-level reference the backend implementations are tested
against.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro._util import check_in_range, check_positive_int


def benchmark_pagerank(
    adjacency: sp.spmatrix,
    initial_rank: np.ndarray,
    *,
    damping: float = 0.85,
    iterations: int = 20,
    formula: str = "appendix",
) -> np.ndarray:
    """Run the benchmark's fixed-iteration PageRank.

    Parameters
    ----------
    adjacency:
        Row-normalised ``N x N`` sparse matrix from Kernel 2 (rows with
        out-edges sum to 1; eliminated/dangling rows are all-zero).
    initial_rank:
        Length-``N`` start vector; will be 1-norm normalised.
    damping:
        The paper's ``c`` (0.85).
    iterations:
        Fixed iteration count (paper: 20).
    formula:
        ``"appendix"`` applies the correct ``(1-c)*sum(r)/N`` teleport
        (the damping-vector definition and appendix form);
        ``"paper-body"`` reproduces the body text's typo without the
        ``/N`` — documented divergence, not a recommended setting.

    Returns
    -------
    Length-``N`` rank vector after ``iterations`` updates.  Note the
    benchmark matrix is sub-stochastic (eliminated columns, dangling
    rows), so the vector's sum decays — mass conservation is *not* a
    property of Kernel 3, by design.

    Examples
    --------
    >>> import numpy as np, scipy.sparse as sp
    >>> a = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
    >>> r = benchmark_pagerank(a, np.array([0.5, 0.5]), iterations=5)
    >>> bool(np.allclose(r.sum(), 1.0))
    True
    """
    check_in_range("damping", damping, 0.0, 1.0)
    check_positive_int("iterations", iterations)
    if formula not in ("appendix", "paper-body"):
        raise ValueError(f"formula must be 'appendix' or 'paper-body', got {formula!r}")
    n = adjacency.shape[0]
    if adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError(f"adjacency must be square, got {adjacency.shape}")
    if initial_rank.shape != (n,):
        raise ValueError(
            f"initial_rank shape {initial_rank.shape} != ({n},)"
        )

    at = adjacency.T.tocsr()
    r = np.asarray(initial_rank, dtype=np.float64)
    norm = np.abs(r).sum()
    if norm == 0:
        raise ValueError("initial_rank must not be all-zero")
    r = r / norm
    c = damping
    for _ in range(iterations):
        teleport = (1.0 - c) * r.sum()
        if formula == "appendix":
            teleport /= n
        r = c * (at @ r) + teleport
    return r


def iteration_operator(
    adjacency: sp.spmatrix, damping: float = 0.85
) -> sp.linalg.LinearOperator:
    """The Kernel 3 update as a linear operator on column vectors.

    ``L x = c * A^T x + (1-c)/N * sum(x)`` — the transpose form of the
    row-vector update, whose dominant eigenvector is the PageRank
    fixed point (paper Section IV.D).
    """
    check_in_range("damping", damping, 0.0, 1.0)
    n = adjacency.shape[0]
    at = adjacency.T.tocsr()
    c = damping

    def matvec(x: np.ndarray) -> np.ndarray:
        return c * (at @ x) + (1.0 - c) / n * x.sum()

    return sp.linalg.LinearOperator((n, n), matvec=matvec, dtype=np.float64)
