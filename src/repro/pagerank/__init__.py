"""PageRank algorithms and validation.

:mod:`repro.pagerank.benchmark` implements Kernel 3's exact update as a
standalone function over any scipy CSR matrix.  Beyond the benchmark,
the paper's appendix sketches a taxonomy of PageRank variants (strongly
preferential, weakly preferential, sink) distinguished by their
dangling-node handling; :mod:`repro.pagerank.variants` implements them
plus a convergence-tested iteration, and :mod:`repro.pagerank.validate`
implements Section IV.D's eigenvector cross-check.
"""

from __future__ import annotations

from repro.pagerank.benchmark import benchmark_pagerank
from repro.pagerank.variants import (
    PageRankResult,
    pagerank_converged,
    pagerank_sink,
    pagerank_strongly_preferential,
    pagerank_weakly_preferential,
)
from repro.pagerank.dense import dense_power_iteration, google_matrix
from repro.pagerank.validate import ValidationReport, spectral_rank, validate_rank
from repro.pagerank.gauss_seidel import pagerank_gauss_seidel
from repro.pagerank.compare import (
    DisplacementSummary,
    kendall_tau,
    rank_displacement,
    spearman_rho,
    top_k,
    top_k_overlap,
)

__all__ = [
    "DisplacementSummary",
    "PageRankResult",
    "ValidationReport",
    "benchmark_pagerank",
    "dense_power_iteration",
    "google_matrix",
    "kendall_tau",
    "pagerank_converged",
    "pagerank_gauss_seidel",
    "pagerank_sink",
    "pagerank_strongly_preferential",
    "pagerank_weakly_preferential",
    "rank_displacement",
    "spearman_rho",
    "spectral_rank",
    "top_k",
    "top_k_overlap",
    "validate_rank",
]
