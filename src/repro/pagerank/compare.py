"""Rank-vector comparison utilities.

The benchmark fixes 20 iterations; real deployments converge or use
variant algorithms.  These helpers quantify how much those choices
change the *ranking* (which is what downstream users consume), using
standard rank-agreement statistics:

* :func:`top_k` — leading vertices with deterministic tie-breaking;
* :func:`top_k_overlap` — |top-k ∩ top-k| / k between two rankings;
* :func:`kendall_tau` / :func:`spearman_rho` — rank correlations
  (scipy.stats implementations);
* :func:`rank_displacement` — per-vertex position shift summary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy import stats

from repro._util import check_positive_int


def top_k(rank: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest entries, rank-descending.

    Ties are broken by ascending vertex id so the result is
    deterministic across implementations.

    Examples
    --------
    >>> top_k(np.array([0.1, 0.5, 0.5, 0.2]), 3).tolist()
    [1, 2, 3]
    """
    check_positive_int("k", k)
    rank = np.asarray(rank)
    order = np.lexsort((np.arange(len(rank)), -rank))
    return order[: min(k, len(rank))].astype(np.int64)


def top_k_overlap(rank_a: np.ndarray, rank_b: np.ndarray, k: int) -> float:
    """Fraction of shared vertices between the two top-``k`` sets."""
    a = set(top_k(rank_a, k).tolist())
    b = set(top_k(rank_b, k).tolist())
    if not a:
        return 1.0
    return len(a & b) / len(a)


def kendall_tau(rank_a: np.ndarray, rank_b: np.ndarray) -> float:
    """Kendall's tau-b between two full rankings."""
    _check_pair(rank_a, rank_b)
    tau, _ = stats.kendalltau(rank_a, rank_b)
    return float(tau)


def spearman_rho(rank_a: np.ndarray, rank_b: np.ndarray) -> float:
    """Spearman rank correlation between two full rankings."""
    _check_pair(rank_a, rank_b)
    rho, _ = stats.spearmanr(rank_a, rank_b)
    return float(rho)


@dataclass(frozen=True)
class DisplacementSummary:
    """How far vertices move between two rankings.

    Attributes
    ----------
    max_displacement:
        Largest absolute position change.
    mean_displacement:
        Average absolute position change.
    unchanged_fraction:
        Fraction of vertices keeping their exact position.
    """

    max_displacement: int
    mean_displacement: float
    unchanged_fraction: float


def rank_displacement(rank_a: np.ndarray, rank_b: np.ndarray) -> DisplacementSummary:
    """Positional displacement of each vertex between two rankings.

    Positions are computed with the same deterministic tie-breaking as
    :func:`top_k`, so identical vectors yield zero displacement.

    Examples
    --------
    >>> s = rank_displacement(np.array([3., 2., 1.]), np.array([3., 2., 1.]))
    >>> (s.max_displacement, s.unchanged_fraction)
    (0, 1.0)
    """
    _check_pair(rank_a, rank_b)
    n = len(rank_a)
    position_a = np.empty(n, dtype=np.int64)
    position_b = np.empty(n, dtype=np.int64)
    position_a[top_k(rank_a, n)] = np.arange(n)
    position_b[top_k(rank_b, n)] = np.arange(n)
    displacement = np.abs(position_a - position_b)
    return DisplacementSummary(
        max_displacement=int(displacement.max()) if n else 0,
        mean_displacement=float(displacement.mean()) if n else 0.0,
        unchanged_fraction=float((displacement == 0).mean()) if n else 1.0,
    )


def _check_pair(rank_a: np.ndarray, rank_b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    rank_a = np.asarray(rank_a)
    rank_b = np.asarray(rank_b)
    if rank_a.shape != rank_b.shape:
        raise ValueError(
            f"rank vectors differ in shape: {rank_a.shape} vs {rank_b.shape}"
        )
    return rank_a, rank_b
