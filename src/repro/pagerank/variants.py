"""PageRank variants beyond the benchmark kernel.

The paper's appendix notes that "a variety of specific algorithms have
been developed … with names such as strongly preferential PageRank,
weakly preferential PageRank, and sink PageRank" (Gleich 2015), and
Section IV.D explains the benchmark deliberately omits the dangling-node
correction.  These variants supply that correction for users who want a
*true* PageRank from the pipeline's Kernel 2 output:

* **strongly preferential** — dangling mass re-enters through the
  teleport distribution;
* **weakly preferential** — dangling mass follows its own distribution,
  independent of the teleport vector;
* **sink** — no correction (the benchmark's behaviour), provided with
  the same interface for comparison.

All variants support personalised teleport vectors and convergence
testing on the 1-norm residual.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro._util import check_in_range, check_positive_int


@dataclass(frozen=True)
class PageRankResult:
    """Converged (or iteration-capped) PageRank output.

    Attributes
    ----------
    rank:
        Final rank vector.
    iterations:
        Update steps actually performed.
    residual:
        Final 1-norm difference between successive iterates.
    converged:
        Whether ``residual <= tol`` was reached within the cap.
    """

    rank: np.ndarray
    iterations: int
    residual: float
    converged: bool


def _prepare(
    adjacency: sp.spmatrix,
    teleport: Optional[np.ndarray],
    initial_rank: Optional[np.ndarray],
):
    n = adjacency.shape[0]
    if adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError(f"adjacency must be square, got {adjacency.shape}")
    if teleport is None:
        teleport_vec = np.full(n, 1.0 / n)
    else:
        teleport_vec = np.asarray(teleport, dtype=np.float64)
        if teleport_vec.shape != (n,):
            raise ValueError(f"teleport shape {teleport_vec.shape} != ({n},)")
        if (teleport_vec < 0).any():
            raise ValueError("teleport vector must be non-negative")
        total = teleport_vec.sum()
        if total <= 0:
            raise ValueError("teleport vector must have positive mass")
        teleport_vec = teleport_vec / total
    if initial_rank is None:
        r = np.full(n, 1.0 / n)
    else:
        r = np.asarray(initial_rank, dtype=np.float64)
        if r.shape != (n,):
            raise ValueError(f"initial_rank shape {r.shape} != ({n},)")
        norm = np.abs(r).sum()
        if norm == 0:
            raise ValueError("initial_rank must not be all-zero")
        r = r / norm
    at = adjacency.T.tocsr()
    dangling = np.asarray(adjacency.sum(axis=1)).ravel() == 0.0
    return n, at, teleport_vec, r, dangling


def _iterate(
    at: sp.csr_matrix,
    r: np.ndarray,
    damping: float,
    teleport_vec: np.ndarray,
    dangling: np.ndarray,
    dangling_vec: Optional[np.ndarray],
    *,
    tol: float,
    max_iterations: int,
) -> PageRankResult:
    """Shared damped-iteration loop with optional dangling redistribution."""
    c = damping
    residual = np.inf
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        spread = at @ r
        if dangling_vec is not None:
            dangling_mass = r[dangling].sum()
            spread = spread + dangling_mass * dangling_vec
        nxt = c * spread + (1.0 - c) * r.sum() * teleport_vec
        residual = float(np.abs(nxt - r).sum())
        r = nxt
        if residual <= tol:
            return PageRankResult(r, iterations, residual, True)
    return PageRankResult(r, iterations, residual, False)


def pagerank_strongly_preferential(
    adjacency: sp.spmatrix,
    *,
    damping: float = 0.85,
    teleport: Optional[np.ndarray] = None,
    initial_rank: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    max_iterations: int = 1000,
) -> PageRankResult:
    """PageRank with dangling mass following the teleport vector.

    This is the standard "PageRank" of most references: the transition
    matrix is made fully stochastic by giving dangling rows the teleport
    distribution, so rank mass is conserved every iteration.

    Examples
    --------
    >>> import numpy as np, scipy.sparse as sp
    >>> a = sp.csr_matrix(np.array([[0.0, 1.0], [0.0, 0.0]]))  # 1 dangles
    >>> res = pagerank_strongly_preferential(a)
    >>> bool(res.converged and abs(res.rank.sum() - 1.0) < 1e-9)
    True
    """
    check_in_range("damping", damping, 0.0, 1.0)
    check_positive_int("max_iterations", max_iterations)
    n, at, tele, r, dangling = _prepare(adjacency, teleport, initial_rank)
    return _iterate(
        at, r, damping, tele, dangling, tele, tol=tol, max_iterations=max_iterations
    )


def pagerank_weakly_preferential(
    adjacency: sp.spmatrix,
    *,
    damping: float = 0.85,
    teleport: Optional[np.ndarray] = None,
    dangling_distribution: Optional[np.ndarray] = None,
    initial_rank: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    max_iterations: int = 1000,
) -> PageRankResult:
    """PageRank with dangling mass following its own distribution.

    ``dangling_distribution`` defaults to uniform; it is normalised to
    unit mass.  Setting it equal to the teleport vector recovers the
    strongly preferential variant.
    """
    check_in_range("damping", damping, 0.0, 1.0)
    check_positive_int("max_iterations", max_iterations)
    n, at, tele, r, dangling = _prepare(adjacency, teleport, initial_rank)
    if dangling_distribution is None:
        dvec = np.full(n, 1.0 / n)
    else:
        dvec = np.asarray(dangling_distribution, dtype=np.float64)
        if dvec.shape != (n,):
            raise ValueError(
                f"dangling_distribution shape {dvec.shape} != ({n},)"
            )
        total = dvec.sum()
        if total <= 0:
            raise ValueError("dangling_distribution must have positive mass")
        dvec = dvec / total
    return _iterate(
        at, r, damping, tele, dangling, dvec, tol=tol, max_iterations=max_iterations
    )


def pagerank_sink(
    adjacency: sp.spmatrix,
    *,
    damping: float = 0.85,
    teleport: Optional[np.ndarray] = None,
    initial_rank: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    max_iterations: int = 1000,
    renormalize: bool = False,
) -> PageRankResult:
    """Sink PageRank: dangling mass is simply lost each iteration.

    This matches the benchmark kernel's behaviour (run to convergence
    instead of 20 fixed iterations).  With ``renormalize`` the final
    vector is rescaled to unit 1-norm, which is how sink PageRank is
    usually reported.
    """
    check_in_range("damping", damping, 0.0, 1.0)
    check_positive_int("max_iterations", max_iterations)
    n, at, tele, r, dangling = _prepare(adjacency, teleport, initial_rank)
    result = _iterate(
        at, r, damping, tele, dangling, None, tol=tol, max_iterations=max_iterations
    )
    if renormalize:
        norm = np.abs(result.rank).sum()
        if norm > 0:
            result = PageRankResult(
                result.rank / norm, result.iterations, result.residual,
                result.converged,
            )
    return result


def pagerank_converged(
    adjacency: sp.spmatrix,
    *,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iterations: int = 1000,
    initial_rank: Optional[np.ndarray] = None,
    variant: str = "strongly-preferential",
) -> PageRankResult:
    """Convergence-tested PageRank with a selectable variant.

    The "real application" mode the paper contrasts with the fixed
    20-iteration benchmark kernel: iterate until the 1-norm residual
    drops below ``tol``.

    Parameters
    ----------
    variant:
        ``"strongly-preferential"``, ``"weakly-preferential"``, or
        ``"sink"``.
    """
    dispatch = {
        "strongly-preferential": pagerank_strongly_preferential,
        "weakly-preferential": pagerank_weakly_preferential,
        "sink": pagerank_sink,
    }
    try:
        fn = dispatch[variant]
    except KeyError:
        raise ValueError(
            f"unknown variant {variant!r}; expected one of {sorted(dispatch)}"
        ) from None
    return fn(
        adjacency,
        damping=damping,
        tol=tol,
        max_iterations=max_iterations,
        initial_rank=initial_rank,
    )
