"""Gauss-Seidel PageRank: an alternative solver for the fixed point.

Power iteration (the benchmark kernel) applies the whole update from
the previous iterate; Gauss-Seidel sweeps vertices in order and uses
*already-updated* values within the sweep, typically converging in
roughly half the iterations.  Included as the kind of
algorithm/software co-design the paper's "goal-oriented" benchmark
category invites: same input, same fixed point, different solver.

Solves ``r = c·(r @ A) + (1-c)/N · sum(r)`` in the strongly
preferential formulation (dangling mass redistributed uniformly), i.e.
the fixed point of the stochastic-completion matrix — directly
comparable to :func:`repro.pagerank.variants.pagerank_strongly_preferential`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro._util import check_in_range, check_positive_int
from repro.pagerank.variants import PageRankResult


def pagerank_gauss_seidel(
    adjacency: sp.spmatrix,
    *,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iterations: int = 200,
    initial_rank: Optional[np.ndarray] = None,
) -> PageRankResult:
    """Gauss-Seidel sweeps for the strongly preferential PageRank.

    Parameters
    ----------
    adjacency:
        Row-normalised matrix from Kernel 2 (dangling rows all-zero).
    damping, tol, max_iterations, initial_rank:
        As in the other variants.

    Returns
    -------
    PageRankResult
        With ``rank`` summing to 1 and typically fewer iterations than
        the power method at the same tolerance.

    Notes
    -----
    Works column-wise on ``A^T`` in CSC layout: updating ``r[j]`` needs
    column ``j`` of ``A`` (the in-edges of ``j``).  The sweep is a
    Python loop over vertices, so this solver targets validation and
    iteration-count studies, not raw throughput.

    Examples
    --------
    >>> import numpy as np, scipy.sparse as sp
    >>> ring = sp.csr_matrix(np.array([[0., 1.], [1., 0.]]))
    >>> result = pagerank_gauss_seidel(ring)
    >>> bool(result.converged), round(float(result.rank.sum()), 9)
    (True, 1.0)
    """
    check_in_range("damping", damping, 0.0, 1.0)
    check_positive_int("max_iterations", max_iterations)
    n = adjacency.shape[0]
    if adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError(f"adjacency must be square, got {adjacency.shape}")

    csc = adjacency.tocsc()
    indptr = csc.indptr
    indices = csc.indices
    data = csc.data
    dangling = np.asarray(adjacency.sum(axis=1)).ravel() == 0.0
    c = damping

    if initial_rank is None:
        r = np.full(n, 1.0 / n)
    else:
        r = np.asarray(initial_rank, dtype=np.float64)
        norm = np.abs(r).sum()
        if norm == 0:
            raise ValueError("initial_rank must not be all-zero")
        r = r / norm

    residual = np.inf
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        previous = r.copy()
        # Scalars that change as the sweep proceeds: total mass and
        # dangling mass.  Both are maintained incrementally.
        total = r.sum()
        dangling_mass = r[dangling].sum()
        for j in range(n):
            lo, hi = indptr[j], indptr[j + 1]
            cols = indices[lo:hi]
            vals = data[lo:hi]
            in_flow = float(vals @ r[cols])  # includes any self-loop term
            diagonal = float(vals[cols == j].sum())
            old = r[j]
            # The fixed-point equation for component j, with r[j]'s own
            # contributions (self-loop, dangling share, teleport share)
            # collected into self_coeff so it can be solved exactly:
            #   r_j = self_coeff * r_j + rest
            self_coeff = c * diagonal + (1.0 - c) / n
            if dangling[j]:
                self_coeff += c / n
            rhs = (
                c * in_flow
                + c * dangling_mass / n
                + (1.0 - c) * total / n
            )
            rest = rhs - self_coeff * old
            new = rest / (1.0 - self_coeff) if self_coeff < 1.0 else rest
            r[j] = new
            total += new - old
            if dangling[j]:
                dangling_mass += new - old
        # Normalise to kill accumulated drift, then test convergence.
        r = r / r.sum()
        residual = float(np.abs(r - previous).sum())
        if residual <= tol:
            return PageRankResult(r, iterations, residual, True)
    return PageRankResult(r, iterations, residual, False)
