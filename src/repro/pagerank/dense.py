"""Dense-matrix PageRank utilities for small-graph validation.

Paper Section IV.D: "For small enough problems where the … dense matrix
fits into memory, the first eigenvector can be computed" directly.
These helpers build the dense Google matrix and run dense power
iteration — the oracle the sparse kernels are checked against in tests.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro._util import check_in_range, check_positive_int


def google_matrix(adjacency: sp.spmatrix, damping: float = 0.85) -> np.ndarray:
    """The dense iteration matrix ``G = c*A + (1-c)/N * ones``.

    The Kernel 3 update is ``r <- r @ G``; the paper's validation
    computes the first eigenvector of ``G.T = c*A.T + (1-c)/N``.

    Parameters
    ----------
    adjacency:
        Row-normalised sparse matrix (Kernel 2 output).
    damping:
        The paper's ``c``.
    """
    check_in_range("damping", damping, 0.0, 1.0)
    n = adjacency.shape[0]
    dense = np.asarray(adjacency.todense(), dtype=np.float64)
    return damping * dense + (1.0 - damping) / n


def dense_power_iteration(
    matrix: np.ndarray,
    *,
    initial: Optional[np.ndarray] = None,
    tol: float = 1e-12,
    max_iterations: int = 10000,
) -> Tuple[np.ndarray, float, int]:
    """Dominant *left* eigenvector of a dense matrix by power iteration.

    Returns ``(vector, eigenvalue, iterations)`` with the vector
    normalised to unit 1-norm and non-negative orientation.

    Raises
    ------
    ValueError
        On non-square input or a zero iterate (nilpotent direction).
    """
    check_positive_int("max_iterations", max_iterations)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"matrix must be square, got shape {matrix.shape}")
    n = matrix.shape[0]
    r = np.full(n, 1.0 / n) if initial is None else np.asarray(initial, float)
    r = r / np.abs(r).sum()
    eigenvalue = 0.0
    for iteration in range(1, max_iterations + 1):
        nxt = r @ matrix
        norm = np.abs(nxt).sum()
        if norm == 0:
            raise ValueError("power iteration hit the zero vector")
        eigenvalue = norm
        nxt = nxt / norm
        delta = float(np.abs(nxt - r).sum())
        r = nxt
        if delta <= tol:
            break
    if r.sum() < 0:
        r = -r
    return r, float(eigenvalue), iteration
