"""TSV I/O for :class:`repro.frame.Frame`.

Matches the pipeline's edge-file format when used with two int64
columns, but works for any column set (used by the harness to dump
result tables too).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro.frame.frame import Frame


def write_tsv_frame(frame: Frame, path: Path, *, header: bool = False) -> int:
    """Write a frame as TSV; returns bytes written.

    Parameters
    ----------
    frame:
        Source frame.
    header:
        Emit a first line with column names (the pipeline's edge files
        are headerless; harness tables use headers).
    """
    path = Path(path)
    names = frame.column_names
    columns = [frame.column(n) for n in names]
    parts = []
    if header:
        parts.append("\t".join(names) + "\n")
    if frame.num_rows:
        text_cols = []
        for col in columns:
            if np.issubdtype(col.dtype, np.integer):
                text_cols.append(np.char.mod("%d", col))
            elif np.issubdtype(col.dtype, np.floating):
                text_cols.append(np.char.mod("%.17g", col))
            else:
                text_cols.append(col.astype(str))
        merged = text_cols[0]
        for col in text_cols[1:]:
            merged = np.char.add(np.char.add(merged, "\t"), col)
        parts.append("\n".join(merged.tolist()) + "\n")
    payload = "".join(parts).encode("ascii")
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(payload)
    tmp.replace(path)
    return len(payload)


def read_tsv_frame(
    path: Path,
    *,
    names: Optional[Sequence[str]] = None,
    dtypes: Optional[Sequence[np.dtype]] = None,
    header: bool = False,
) -> Frame:
    """Read a TSV file into a frame.

    Parameters
    ----------
    path:
        Input file.
    names:
        Column names; required when ``header`` is False.
    dtypes:
        Per-column dtypes; default int64 for every column.
    header:
        First line holds column names.

    Raises
    ------
    ValueError
        On ragged rows or missing names.
    """
    path = Path(path)
    text = path.read_text(encoding="ascii")
    lines = [ln for ln in text.splitlines() if ln.strip()]
    if header:
        if not lines:
            raise ValueError(f"{path}: empty file but header=True")
        names = lines[0].split("\t")
        lines = lines[1:]
    if names is None:
        raise ValueError("names is required when the file has no header")
    names = list(names)
    ncols = len(names)
    if dtypes is None:
        dtypes = [np.dtype(np.int64)] * ncols
    if len(dtypes) != ncols:
        raise ValueError(f"{len(dtypes)} dtypes for {ncols} columns")

    if not lines:
        return Frame({n: np.empty(0, dtype=d) for n, d in zip(names, dtypes)})

    cells = [ln.split("\t") for ln in lines]
    widths = {len(row) for row in cells}
    if widths != {ncols}:
        raise ValueError(
            f"{path}: ragged rows — expected {ncols} fields, saw widths {sorted(widths)}"
        )
    raw = np.array(cells)
    columns = {}
    for index, (name, dtype) in enumerate(zip(names, dtypes)):
        try:
            columns[name] = raw[:, index].astype(dtype)
        except ValueError as exc:
            raise ValueError(
                f"{path}: column {name!r} cannot convert to {dtype}: {exc}"
            ) from exc
    return Frame(columns)
