"""A minimal columnar dataframe.

The paper benchmarks a "Python with Pandas" implementation.  Pandas is
not installable in this offline environment, so this package provides
the thin slice of dataframe functionality the pipeline needs — typed
named columns over numpy arrays, TSV read/write, multi-key sorting,
filtering, and grouped aggregation — letting
:mod:`repro.backends.dataframe_backend` exercise the same
columnar-dataframe code path the paper's Pandas variant did.

It is *not* a pandas re-implementation: no index objects, no NaN
semantics, no broadcasting alignment — just columns.
"""

from __future__ import annotations

from repro.frame.frame import Frame
from repro.frame.io import read_tsv_frame, write_tsv_frame

__all__ = ["Frame", "read_tsv_frame", "write_tsv_frame"]
