"""The :class:`Frame` type: named, equal-length numpy columns."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Sequence, Tuple, Union

import numpy as np

ColumnLike = Union[np.ndarray, Sequence]


class Frame:
    """An immutable columnar table.

    Columns are 1-D numpy arrays of equal length; operations return new
    frames and never mutate in place.

    Examples
    --------
    >>> f = Frame({"u": [2, 0, 1], "v": [5, 6, 7]})
    >>> f.sort_values("u").column("v").tolist()
    [6, 7, 5]
    >>> f.num_rows
    3
    """

    __slots__ = ("_columns", "_length")

    def __init__(self, columns: Mapping[str, ColumnLike]) -> None:
        if not columns:
            raise ValueError("Frame requires at least one column")
        converted: Dict[str, np.ndarray] = {}
        length = None
        for name, data in columns.items():
            arr = np.asarray(data)
            if arr.ndim != 1:
                raise ValueError(
                    f"column {name!r} must be 1-D, got shape {arr.shape}"
                )
            if length is None:
                length = len(arr)
            elif len(arr) != length:
                raise ValueError(
                    f"column {name!r} has length {len(arr)}, expected {length}"
                )
            converted[name] = arr
        self._columns = converted
        self._length = length or 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Row count."""
        return self._length

    @property
    def column_names(self) -> List[str]:
        """Column names in insertion order."""
        return list(self._columns)

    def column(self, name: str) -> np.ndarray:
        """Return one column as a (copied) numpy array."""
        try:
            return self._columns[name].copy()
        except KeyError:
            raise KeyError(
                f"no column {name!r}; available: {self.column_names}"
            ) from None

    def _col_view(self, name: str) -> np.ndarray:
        """Internal no-copy access."""
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r}; available: {self.column_names}"
            ) from None

    def __len__(self) -> int:
        return self._length

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cols = ", ".join(f"{n}:{c.dtype}" for n, c in self._columns.items())
        return f"Frame({self._length} rows; {cols})"

    def to_dict(self) -> Dict[str, np.ndarray]:
        """Copy out all columns."""
        return {name: col.copy() for name, col in self._columns.items()}

    def head(self, n: int = 5) -> "Frame":
        """First ``n`` rows."""
        return self.take(np.arange(min(n, self._length)))

    # ------------------------------------------------------------------
    # Row operations
    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray) -> "Frame":
        """Select rows by integer positions."""
        indices = np.asarray(indices)
        return Frame({n: c[indices] for n, c in self._columns.items()})

    def filter(self, mask: np.ndarray) -> "Frame":
        """Select rows where the boolean ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        if len(mask) != self._length:
            raise ValueError(
                f"mask length {len(mask)} != frame length {self._length}"
            )
        return self.take(np.flatnonzero(mask))

    def sort_values(self, by: Union[str, Sequence[str]], *, stable: bool = True) -> "Frame":
        """Sort rows by one or more key columns (first key primary).

        Multi-key sorts use ``numpy.lexsort`` (last key in the lexsort
        tuple is primary, so keys are reversed internally).
        """
        keys = [by] if isinstance(by, str) else list(by)
        if not keys:
            raise ValueError("sort_values requires at least one key")
        if len(keys) == 1:
            order = np.argsort(
                self._col_view(keys[0]), kind="stable" if stable else None
            )
        else:
            order = np.lexsort(tuple(self._col_view(k) for k in reversed(keys)))
        return self.take(order)

    def assign(self, **new_columns: ColumnLike) -> "Frame":
        """Return a frame with columns added or replaced."""
        merged: Dict[str, ColumnLike] = {n: c for n, c in self._columns.items()}
        merged.update(new_columns)
        return Frame(merged)

    def select(self, names: Iterable[str]) -> "Frame":
        """Keep only the named columns, in the given order."""
        return Frame({n: self._col_view(n) for n in names})

    def concat(self, other: "Frame") -> "Frame":
        """Stack another frame with identical columns below this one."""
        if set(other.column_names) != set(self._columns):
            raise ValueError(
                f"column mismatch: {self.column_names} vs {other.column_names}"
            )
        return Frame({
            n: np.concatenate([c, other._col_view(n)])
            for n, c in self._columns.items()
        })

    # ------------------------------------------------------------------
    # Grouped aggregation
    # ------------------------------------------------------------------
    def groupby_size(self, key: str) -> "Frame":
        """Count rows per distinct key value.

        Returns a frame with columns ``key`` (distinct values,
        ascending) and ``"size"``.
        """
        keys = self._col_view(key)
        values, counts = np.unique(keys, return_counts=True)
        return Frame({key: values, "size": counts.astype(np.int64)})

    def groupby_sum(self, key: str, value: str) -> "Frame":
        """Sum ``value`` per distinct ``key``.

        Returns a frame with columns ``key`` and ``f"{value}_sum"``.
        """
        keys = self._col_view(key)
        vals = np.asarray(self._col_view(value), dtype=np.float64)
        uniq, inverse = np.unique(keys, return_inverse=True)
        sums = np.bincount(inverse, weights=vals, minlength=len(uniq))
        return Frame({key: uniq, f"{value}_sum": sums})

    def groupby_apply_scalar(
        self, key: str, fn: Callable[["Frame"], float]
    ) -> "Frame":
        """Apply ``fn`` to each key's sub-frame, returning scalars.

        Slow (Python loop over groups); provided for expressiveness in
        examples, not used by the benchmark kernels.
        """
        keys = self._col_view(key)
        uniq, inverse = np.unique(keys, return_inverse=True)
        results = np.empty(len(uniq), dtype=np.float64)
        order = np.argsort(inverse, kind="stable")
        boundaries = np.searchsorted(inverse[order], np.arange(len(uniq)))
        boundaries = np.r_[boundaries, len(inverse)]
        for g in range(len(uniq)):
            rows = order[boundaries[g]:boundaries[g + 1]]
            results[g] = fn(self.take(rows))
        return Frame({key: uniq, "result": results})

    # ------------------------------------------------------------------
    # Joins (hash join on a single key)
    # ------------------------------------------------------------------
    def merge(self, other: "Frame", on: str, how: str = "inner") -> "Frame":
        """Single-key equi-join.

        Parameters
        ----------
        other:
            Right-hand frame.
        on:
            Key column present in both frames.
        how:
            ``"inner"`` or ``"left"``.  Left rows without a match get
            fill values (0 for numeric columns) in ``"left"`` mode.
        """
        if how not in ("inner", "left"):
            raise ValueError(f"how must be 'inner' or 'left', got {how!r}")
        left_keys = self._col_view(on)
        right_keys = other._col_view(on)

        if len(right_keys) == 0:
            # Degenerate join: no matches possible.
            if how == "inner":
                out = {n: c[:0] for n, c in self._columns.items()}
                for name, col in other._columns.items():
                    if name != on:
                        out[name] = col[:0]
                return Frame(out)
            out = {n: c.copy() for n, c in self._columns.items()}
            for name, col in other._columns.items():
                if name != on:
                    fill = (
                        np.zeros(self._length, dtype=col.dtype)
                        if np.issubdtype(col.dtype, np.number)
                        else np.empty(self._length, dtype=col.dtype)
                    )
                    out[name] = fill
            return Frame(out)

        # Sorted right side + searchsorted gives match positions.
        right_order = np.argsort(right_keys, kind="stable")
        sorted_right = right_keys[right_order]
        pos = np.searchsorted(sorted_right, left_keys, side="left")
        pos_clamped = np.minimum(pos, len(sorted_right) - 1)
        matched = (pos < len(sorted_right)) & (
            sorted_right[pos_clamped] == left_keys
        )

        # NOTE: only the first match per key is joined (sufficient for
        # the degree-table joins the backends perform; duplicate-key
        # fan-out joins are out of scope).
        right_index = right_order[pos_clamped]
        if how == "inner":
            keep = np.flatnonzero(matched)
            out = {n: c[keep] for n, c in self._columns.items()}
            for name, col in other._columns.items():
                if name == on:
                    continue
                out[name] = col[right_index[keep]]
            return Frame(out)

        out = {n: c.copy() for n, c in self._columns.items()}
        for name, col in other._columns.items():
            if name == on:
                continue
            gathered = col[right_index].copy()
            if np.issubdtype(gathered.dtype, np.number):
                gathered[~matched] = 0
            out[name] = gathered
        return Frame(out)

    # ------------------------------------------------------------------
    # Equality (mainly for tests)
    # ------------------------------------------------------------------
    def equals(self, other: "Frame") -> bool:
        """Exact column-name and value equality."""
        if self.column_names != other.column_names:
            return False
        return all(
            np.array_equal(self._col_view(n), other._col_view(n))
            for n in self.column_names
        )
