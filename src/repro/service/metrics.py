"""Service metrics: counters, histograms, and the Prometheus text view.

The benchmark service exposes ``GET /metrics`` in the Prometheus text
exposition format (version 0.0.4) so a scraper — or a plain ``curl`` —
can watch job throughput, queue depth, worker churn, cache behaviour,
and per-kernel latency without touching the job API.  The state model
is standard Prometheus practice: counters and histograms accumulate
from service start and reset on restart (rate queries difference them),
while gauges (queue depth, jobs by state) are read live at scrape time.

:class:`ServiceMetrics` owns the accumulating half; the service feeds
it one terminal result payload per finished job
(:meth:`ServiceMetrics.record_job`) and supplies the live gauges at
render time.  Everything is stdlib — no prometheus_client dependency.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Mapping, Optional, Sequence

#: ``repro_artifact_sync_total`` label pairs always emitted (zeroed),
#: so scrapers and smoke checks see the family before the first sync.
ARTIFACT_SYNC_SERIES = (
    ("get", "hit"), ("get", "miss"), ("put", "stored"), ("put", "rejected"),
)

#: Per-kernel wall-seconds histogram bucket upper bounds.  Static —
#: Prometheus buckets must never change between scrapes — and spanning
#: the repo's realistic kernel range (sub-10ms cache reads to
#: half-minute large-scale sorts); +Inf is implicit.
KERNEL_SECONDS_BUCKETS = (
    0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0,
)


class _Histogram:
    """One cumulative histogram: bucket counts plus sum and count."""

    def __init__(self, buckets: Sequence[float]) -> None:
        self.bounds = tuple(buckets)
        self.counts = [0] * (len(self.bounds) + 1)  # last slot: +Inf
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += value
        self.count += 1

    def cumulative(self) -> List[int]:
        """Per-bucket *cumulative* counts (``le`` semantics), +Inf last."""
        out: List[int] = []
        running = 0
        for count in self.counts:
            running += count
            out.append(running)
        return out


class ServiceMetrics:
    """Accumulating service counters, fed one finished job at a time."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._jobs_finished: Dict[str, int] = {}
        self._cache_hits = 0
        self._cache_misses = 0
        self._shm_bytes_saved = 0
        self._kernel_seconds: Dict[str, _Histogram] = {}
        self._requeues = 0
        self._artifact_sync: Dict[tuple, int] = {
            pair: 0 for pair in ARTIFACT_SYNC_SERIES
        }

    def record_requeue(self) -> None:
        """One in-flight job requeued after its worker was lost."""
        with self._lock:
            self._requeues += 1

    def record_artifact_sync(self, op: str, outcome: str) -> None:
        """One ``GET/PUT /artifacts`` transfer served, by outcome."""
        with self._lock:
            key = (op, outcome)
            self._artifact_sync[key] = self._artifact_sync.get(key, 0) + 1

    def record_job(
        self, state: str, payload: Optional[Mapping[str, object]]
    ) -> None:
        """Fold one terminal job into the counters.

        ``payload`` is the job's result document (may be ``None`` for
        failures/cancellations): the ``observability`` summary the
        worker computed plus the per-kernel ``records`` feed the cache,
        shm, and latency series.
        """
        with self._lock:
            self._jobs_finished[state] = self._jobs_finished.get(state, 0) + 1
            if not payload:
                return
            summary = payload.get("observability") or {}
            self._cache_hits += int(summary.get("cache_hits", 0))
            self._cache_misses += int(summary.get("cache_misses", 0))
            self._shm_bytes_saved += int(summary.get("shm_bytes_saved", 0))
            for record in payload.get("records") or []:
                kernel = record.get("kernel")
                seconds = record.get("seconds")
                if kernel is None or seconds is None:
                    continue
                histogram = self._kernel_seconds.get(kernel)
                if histogram is None:
                    histogram = self._kernel_seconds[kernel] = _Histogram(
                        KERNEL_SECONDS_BUCKETS
                    )
                histogram.observe(float(seconds))

    # ------------------------------------------------------------------
    def render(
        self,
        *,
        jobs_by_state: Mapping[str, int],
        queue_depth: int,
        worker_stats: Mapping[str, int],
        worker_detail: Optional[Sequence[Mapping[str, object]]] = None,
    ) -> str:
        """The Prometheus text exposition document.

        Live gauges come from the caller (the service reads them under
        its own lock at scrape time); accumulated series come from this
        object.
        """
        with self._lock:
            lines: List[str] = []

            def header(name: str, kind: str, help_text: str) -> None:
                lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {kind}")

            header("repro_jobs", "gauge", "Jobs known to the service, by state.")
            for state in sorted(jobs_by_state):
                lines.append(
                    f'repro_jobs{{state="{state}"}} {jobs_by_state[state]}'
                )
            header("repro_jobs_finished_total", "counter",
                   "Jobs that reached a terminal state since service start.")
            for state in sorted(self._jobs_finished):
                lines.append(
                    f'repro_jobs_finished_total{{state="{state}"}} '
                    f"{self._jobs_finished[state]}"
                )
            header("repro_queue_depth", "gauge",
                   "Jobs submitted but not yet dispatched to a worker.")
            lines.append(f"repro_queue_depth {queue_depth}")
            header("repro_workers_spawned_total", "counter",
                   "Worker processes started (including crash respawns).")
            lines.append(
                f"repro_workers_spawned_total "
                f"{worker_stats.get('workers_spawned', 0)}"
            )
            header("repro_workers_crashed_total", "counter",
                   "Worker processes that died mid-job and were replaced.")
            lines.append(
                f"repro_workers_crashed_total "
                f"{worker_stats.get('workers_crashed', 0)}"
            )
            header("repro_jobs_requeued_total", "counter",
                   "In-flight jobs requeued after their worker was lost "
                   "(process crash or remote heartbeat/connection loss).")
            lines.append(f"repro_jobs_requeued_total {self._requeues}")
            if "workers_connected" in worker_stats:
                # Remote-pool churn gauges: only rendered when the pool
                # actually tracks connections, so local-kind scrapes
                # stay unchanged.
                header("repro_remote_workers_connected", "gauge",
                       "Remote worker agents currently registered.")
                lines.append(
                    f"repro_remote_workers_connected "
                    f"{worker_stats['workers_connected']}"
                )
                header("repro_remote_registrations_rejected_total",
                       "counter",
                       "Connections dropped before a valid register "
                       "frame (port scans, protocol garbage).")
                lines.append(
                    f"repro_remote_registrations_rejected_total "
                    f"{worker_stats.get('registrations_rejected', 0)}"
                )
                header("repro_remote_results_dropped_total", "counter",
                       "Worker results discarded for want of a matching "
                       "in-flight dispatch (stale seq after a requeue).")
                lines.append(
                    f"repro_remote_results_dropped_total "
                    f"{worker_stats.get('results_dropped', 0)}"
                )
            if worker_detail:
                header("repro_worker_info", "gauge",
                       "One series per connected worker: kind, "
                       "transport, and host ride as labels.")
                for row in worker_detail:
                    lines.append(
                        f'repro_worker_info{{worker="{row.get("worker")}",'
                        f'kind="{row.get("kind")}",'
                        f'transport="{row.get("transport")}",'
                        f'host="{row.get("host")}"}} 1'
                    )
                header("repro_worker_heartbeat_age_seconds", "gauge",
                       "Seconds since each connected worker's last "
                       "heartbeat at scrape time.")
                for row in worker_detail:
                    age = row.get("heartbeat_age_s")
                    if isinstance(age, (int, float)):
                        lines.append(
                            f"repro_worker_heartbeat_age_seconds"
                            f'{{worker="{row.get("worker")}"}} {age}'
                        )
            header("repro_artifact_sync_total", "counter",
                   "Cross-host artifact-cache sync transfers served "
                   "over GET/PUT /artifacts, by operation and outcome.")
            for (op, outcome) in sorted(self._artifact_sync):
                lines.append(
                    f'repro_artifact_sync_total{{op="{op}",'
                    f'outcome="{outcome}"}} '
                    f"{self._artifact_sync[(op, outcome)]}"
                )
            header("repro_artifact_cache_probes_total", "counter",
                   "Artifact-cache probes by finished jobs, by outcome.")
            lines.append(
                f'repro_artifact_cache_probes_total{{outcome="hit"}} '
                f"{self._cache_hits}"
            )
            lines.append(
                f'repro_artifact_cache_probes_total{{outcome="miss"}} '
                f"{self._cache_misses}"
            )
            probes = self._cache_hits + self._cache_misses
            header("repro_artifact_cache_hit_ratio", "gauge",
                   "Cache hits over probes across finished jobs (0 when "
                   "no probes yet).")
            ratio = self._cache_hits / probes if probes else 0.0
            lines.append(f"repro_artifact_cache_hit_ratio {ratio}")
            header("repro_shm_bytes_saved_total", "counter",
                   "Payload bytes the shared-memory shard plane kept off "
                   "worker pipes.")
            lines.append(
                f"repro_shm_bytes_saved_total {self._shm_bytes_saved}"
            )
            header("repro_kernel_seconds", "histogram",
                   "Per-kernel wall seconds across finished jobs.")
            for kernel in sorted(self._kernel_seconds):
                histogram = self._kernel_seconds[kernel]
                cumulative = histogram.cumulative()
                for bound, count in zip(histogram.bounds, cumulative):
                    lines.append(
                        f'repro_kernel_seconds_bucket{{kernel="{kernel}",'
                        f'le="{bound}"}} {count}'
                    )
                lines.append(
                    f'repro_kernel_seconds_bucket{{kernel="{kernel}",'
                    f'le="+Inf"}} {cumulative[-1]}'
                )
                lines.append(
                    f'repro_kernel_seconds_sum{{kernel="{kernel}"}} '
                    f"{histogram.total}"
                )
                lines.append(
                    f'repro_kernel_seconds_count{{kernel="{kernel}"}} '
                    f"{histogram.count}"
                )
            return "\n".join(lines) + "\n"
