"""Cross-host artifact-cache sync for the distributed worker plane.

Remote workers run with *per-host* cache roots; what makes those roots
interchangeable is content addressing — a K0/K1 entry's key is the
SHA-256 of the producing config fields, identical on every host.  This
module is the client half of the sync protocol the service's HTTP
front end exposes::

    GET /artifacts                      index of published entries
    GET /artifacts/<kind>/<key>         one entry as an uncompressed tar
                                        (404: the service has no such
                                        entry)
    PUT /artifacts/<kind>/<key>         publish one entry tar

Agents call :func:`sync_before_run` to pull warm K0/K1 entries for a
spec from the service before executing it (a sweep's second host gets
the first host's generate/sort work for the price of a localhost-or-LAN
transfer), then :func:`sync_after_run` to push whatever the run
produced that the service lacked — so the *next* worker's GET hits.
Every transfer is best-effort: a sync failure degrades to a cold cache,
never to a failed job.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, List, Optional

from repro.api.runner import spec_cache_fields
from repro.api.spec import RunSpec
from repro.core.artifacts import ArtifactCache, cache_key

#: Per-transfer HTTP budget; entries at service scales are MBs, not GBs.
SYNC_TIMEOUT_SECONDS = 60.0


def entry_url(base: str, kind: str, key: str) -> str:
    return f"{base.rstrip('/')}/artifacts/{kind}/{key}"


def fetch_entry(base: str, kind: str, key: str) -> Optional[bytes]:
    """Download one entry tar; ``None`` on a miss or any failure."""
    try:
        with urllib.request.urlopen(
            entry_url(base, kind, key), timeout=SYNC_TIMEOUT_SECONDS
        ) as response:
            return response.read()
    except (urllib.error.URLError, OSError, ValueError):
        return None


def push_entry(base: str, kind: str, key: str, data: bytes) -> bool:
    """Upload one entry tar; ``False`` on rejection or any failure."""
    request = urllib.request.Request(
        entry_url(base, kind, key),
        data=data,
        headers={"Content-Type": "application/x-tar"},
        method="PUT",
    )
    try:
        with urllib.request.urlopen(
            request, timeout=SYNC_TIMEOUT_SECONDS
        ) as response:
            return 200 <= response.status < 300
    except (urllib.error.URLError, OSError, ValueError):
        return False


def list_entries(base: str) -> Optional[List[Dict[str, object]]]:
    """The service's published-entry index; ``None`` on failure."""
    try:
        with urllib.request.urlopen(
            f"{base.rstrip('/')}/artifacts", timeout=SYNC_TIMEOUT_SECONDS
        ) as response:
            doc = json.loads(response.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, ValueError):
        return None
    entries = doc.get("entries")
    return entries if isinstance(entries, list) else None


def spec_sync_keys(spec: RunSpec) -> Dict[str, str]:
    """``{kind: cache_key}`` for the entries a spec would read/write."""
    return {
        kind: cache_key(fields)
        for kind, fields in spec_cache_fields(spec).items()
    }


def sync_before_run(
    cache: ArtifactCache, base: str, spec: RunSpec
) -> Dict[str, List[str]]:
    """Pull the spec's warm K0/K1 entries from the service.

    Returns a summary: ``fetched`` (imported from the service),
    ``local`` (already warm here), ``missing`` (cold everywhere — the
    run will produce them; :func:`sync_after_run` pushes them back).
    Labels are ``"<kind>/<key>"``.
    """
    summary: Dict[str, List[str]] = {
        "fetched": [], "local": [], "missing": [],
    }
    for kind, key in spec_sync_keys(spec).items():
        label = f"{kind}/{key}"
        if (cache.entry_dir(kind, key) / "manifest.json").is_file():
            summary["local"].append(label)
            continue
        data = fetch_entry(base, kind, key)
        if data is not None and cache.import_entry(kind, key, data):
            summary["fetched"].append(label)
        else:
            summary["missing"].append(label)
    return summary


def sync_after_run(
    cache: ArtifactCache, base: str, spec: RunSpec,
    before: Optional[Dict[str, List[str]]] = None,
) -> List[str]:
    """Push entries the run produced that the service lacked.

    ``before`` (a :func:`sync_before_run` summary) narrows the pushes
    to entries that were missing on the service; without it every
    locally-present entry for the spec is offered (the PUT side
    deduplicates by key).  Returns the pushed ``"<kind>/<key>"`` labels.
    """
    candidates = spec_sync_keys(spec)
    if before is not None:
        missing = set(before.get("missing", ()))
        candidates = {
            kind: key for kind, key in candidates.items()
            if f"{kind}/{key}" in missing
        }
    pushed: List[str] = []
    for kind, key in candidates.items():
        data = cache.export_entry(kind, key)
        if data is None:
            continue  # the run did not produce it (e.g. cache off)
        if push_entry(base, kind, key, data):
            pushed.append(f"{kind}/{key}")
    return pushed
