"""Job records and the durable JSONL job store.

A *job* is one submitted :class:`~repro.api.spec.RunSpec` moving
through ``PENDING → RUNNING → {SUCCEEDED, FAILED, CANCELLED}``.  The
in-memory truth lives in :class:`BenchmarkService`; this module owns the
shapes plus the append-only JSONL store that makes job history durable —
one line per lifecycle event, written under a lock, flushed immediately,
so a crash loses at most the event being written and concurrent workers
never interleave partial lines.

The store is an audit log, not a database: the service never reads it
back to make decisions.  ``repro.service.jobs.load_events`` exists for
offline analysis and the test suite.
"""

from __future__ import annotations

import enum
import json
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.api.runner import RunOutcome
from repro.api.spec import RunSpec


class JobState(str, enum.Enum):
    """Lifecycle states of a submitted job."""

    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        """Whether the job can no longer change state."""
        return self in (JobState.SUCCEEDED, JobState.FAILED, JobState.CANCELLED)


@dataclass
class Job:
    """One submitted spec and everything known about its execution.

    Mutable service-internal state; callers see :meth:`view` snapshots.
    """

    job_id: str
    spec: RunSpec
    spec_hash: str
    state: JobState = JobState.PENDING
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    outcome: Optional[RunOutcome] = None
    #: How many in-flight submissions were deduplicated onto this job
    #: (each returned this job's id instead of queueing new work).
    duplicate_submissions: int = 0

    def view(self) -> Dict[str, object]:
        """JSON-safe status snapshot (no result payload)."""
        return {
            "job_id": self.job_id,
            "state": self.state.value,
            "spec_hash": self.spec_hash,
            "spec": self.spec.to_dict(),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "duplicate_submissions": self.duplicate_submissions,
        }

    def result_doc(self) -> Dict[str, object]:
        """JSON-safe result payload for a terminal job.

        Carries the per-kernel records, the bit-exact rank digest
        (:func:`repro.api.runner.rank_sha256`), and — when the spec
        asked for it — the eigenvector validation verdicts, so a remote
        client sees exactly what ``repro run --validate`` would.
        """
        from repro.core.results import _json_safe

        doc = self.view()
        if self.outcome is not None:
            doc["records"] = [asdict(r) for r in self.outcome.records]
            doc["rank_sha256"] = self.outcome.rank_digest
            rank = self.outcome.rank
            if rank is not None:
                doc["rank_summary"] = {
                    "size": int(rank.size),
                    "sum": float(rank.sum()),
                    "argmax": int(rank.argmax()) if rank.size else -1,
                }
            doc["wall_seconds"] = [
                r.wall_seconds for r in self.outcome.results
            ]
            validations = [
                _json_safe(r.validation)
                for r in self.outcome.results
                if r.validation is not None
            ]
            if validations:
                doc["validation"] = validations
        return doc


class JobStore:
    """Append-only JSONL event log, safe under concurrent workers.

    Each line is one event: ``{"event": ..., "time": ..., **payload}``.
    ``path=None`` disables persistence (events are dropped) so the
    in-memory service works without a filesystem side effect.
    """

    def __init__(self, path: Optional[Path]) -> None:
        self.path = Path(path) if path is not None else None
        self._lock = threading.Lock()
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)

    def append(self, event: str, payload: Dict[str, object]) -> None:
        """Write one event line (no-op when the store is disabled)."""
        if self.path is None:
            return
        doc = {"event": event, "time": time.time()}
        doc.update(payload)
        line = json.dumps(doc, sort_keys=True, default=str)
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")
                fh.flush()


def load_events(path: Path) -> List[Dict[str, object]]:
    """Read a store file back (offline analysis / tests).

    Tolerates a torn final line — the one crash artifact the
    append-under-lock discipline permits.
    """
    events: List[Dict[str, object]] = []
    text = Path(path).read_text(encoding="utf-8")
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return events
