"""Job records and the durable JSONL job store.

A *job* is one submitted workload moving through ``PENDING → RUNNING →
{SUCCEEDED, FAILED, CANCELLED}``.  Two kinds exist: a ``"run"`` job is
one :class:`~repro.api.spec.RunSpec`; a ``"sweep"`` job is a parent
over a :class:`~repro.api.spec.SweepSpec` grid whose cells are child
run jobs fanned across the worker pool.  The in-memory truth lives in
:class:`BenchmarkService`; this module owns the shapes plus the
append-only JSONL store that makes job history durable — one line per
lifecycle event, written under a lock, flushed immediately, so a crash
loses at most the event being written and concurrent workers never
interleave partial lines.

Unlike the original audit-log design, the store is now read back in
one place: :meth:`BenchmarkService._replay_store` reconstructs service
state from it on startup (terminal jobs come back verbatim from their
terminal event documents; jobs that were in flight at a crash are
re-queued).  :meth:`JobStore.compact` keeps the log from growing
without bound by rewriting it with only the lifecycle events replay
needs.
"""

from __future__ import annotations

import enum
import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.api.runner import RunOutcome
from repro.api.spec import RunSpec, SweepSpec


class JobState(str, enum.Enum):
    """Lifecycle states of a submitted job."""

    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        """Whether the job can no longer change state."""
        return self in (JobState.SUCCEEDED, JobState.FAILED, JobState.CANCELLED)


#: Event names that end a job's lifecycle in the store.
TERMINAL_EVENTS = ("succeeded", "failed", "cancelled")

#: The JSON-safe result-payload keys a terminal event may carry (the
#: subset of a result document that is *result*, not status) — used to
#: split a replayed terminal event back into view vs. payload.
PAYLOAD_KEYS = (
    "records", "rank_sha256", "rank_summary", "wall_seconds",
    "validation", "cells", "trace", "observability", "remote",
    "artifact_sync",
)


@dataclass
class Job:
    """One submitted workload and everything known about its execution.

    Mutable service-internal state; callers see :meth:`view` snapshots.

    ``kind="run"`` jobs carry a ``spec``; ``kind="sweep"`` parents carry
    a ``sweep`` plus ``cells`` (grid-ordered ``{"backend", "scale",
    "job_id", "skipped"}`` references to child jobs).  ``result_payload``
    is the JSON-safe result document — for process-pool jobs it is all
    the service ever receives (the rank vector stays in the worker);
    thread-pool jobs additionally keep the live ``outcome``.
    """

    job_id: str
    spec: Optional[RunSpec]
    spec_hash: str
    kind: str = "run"
    sweep: Optional[SweepSpec] = None
    cells: List[Dict[str, object]] = field(default_factory=list)
    state: JobState = JobState.PENDING
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    outcome: Optional[RunOutcome] = None
    result_payload: Optional[Dict[str, object]] = None
    #: How many in-flight submissions were deduplicated onto this job
    #: (each returned this job's id instead of queueing new work).
    duplicate_submissions: int = 0
    #: Set exactly when the job reaches a terminal state; waiters
    #: (:meth:`BenchmarkService.result`) block on it instead of on a
    #: future, so sweep parents and replayed jobs wait the same way.
    done: threading.Event = field(
        default_factory=threading.Event, repr=False, compare=False
    )

    def view(self) -> Dict[str, object]:
        """JSON-safe status snapshot (no result payload)."""
        doc: Dict[str, object] = {
            "job_id": self.job_id,
            "kind": self.kind,
            "state": self.state.value,
            "spec_hash": self.spec_hash,
            "spec": self.spec.to_dict() if self.spec is not None else None,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "duplicate_submissions": self.duplicate_submissions,
        }
        if self.kind == "sweep":
            doc["sweep"] = self.sweep.to_dict() if self.sweep else None
            doc["cells"] = [dict(cell) for cell in self.cells]
        return doc

    def result_doc(self) -> Dict[str, object]:
        """JSON-safe result payload for a terminal job.

        For run jobs this carries the per-kernel records, the bit-exact
        rank digest (:func:`repro.api.runner.rank_sha256`), and — when
        the spec asked for it — the eigenvector validation verdicts, so
        a remote client sees exactly what ``repro run --validate``
        would.  For sweep parents it carries the assembled sweep table
        (per-cell documents plus the flattened grid-ordered records).
        """
        doc = self.view()
        if self.result_payload is not None:
            doc.update(self.result_payload)
        return doc


class JobStore:
    """Append-only JSONL event log, safe under concurrent workers.

    Each line is one event: ``{"event": ..., "time": ..., **payload}``.
    ``path=None`` disables persistence (events are dropped) so the
    in-memory service works without a filesystem side effect.

    Parameters
    ----------
    path:
        The JSONL file (created lazily; parent directories made).
    compact_every:
        When set, the store compacts itself after every ``N`` appended
        events — the periodic half of log hygiene (``repro serve
        --compact`` is the on-startup half).
    """

    def __init__(
        self, path: Optional[Path], *, compact_every: Optional[int] = None
    ) -> None:
        if compact_every is not None and compact_every < 1:
            raise ValueError(
                f"compact_every must be >= 1, got {compact_every}"
            )
        self.path = Path(path) if path is not None else None
        self.compact_every = compact_every
        self._appended = 0
        self._lock = threading.Lock()
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)

    def append(self, event: str, payload: Dict[str, object]) -> None:
        """Write one event line (no-op when the store is disabled)."""
        if self.path is None:
            return
        doc = {"event": event, "time": time.time()}
        doc.update(payload)
        line = json.dumps(doc, sort_keys=True, default=str)
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")
                fh.flush()
            self._appended += 1
            # Auto-compact only on terminal-event appends: the service
            # writes those *outside* its own lock, so the full-log
            # rewrite never stalls submit/status/HTTP traffic that
            # appends (submitted/deduplicated) while holding it.
            if (
                self.compact_every
                and self._appended >= self.compact_every
                and event in TERMINAL_EVENTS
            ):
                self._compact_locked()
                self._appended = 0

    def compact(self) -> int:
        """Rewrite the log keeping only load-bearing lifecycle events.

        For a job with a terminal event, everything between its
        ``submitted`` (or ``sweep-submitted``) event and its *last*
        terminal event is noise to replay: ``running``, ``requeued``,
        ``deduplicated``, ``sweep-cells``, and superseded terminal
        events are dropped.  Jobs still in flight keep their full event
        trail.  Replaying a compacted store reconstructs exactly the
        service state the original would (asserted by the replay test
        suite).  Returns the number of events dropped.
        """
        if self.path is None or not self.path.exists():
            return 0
        with self._lock:
            return self._compact_locked()

    def _compact_locked(self) -> int:
        events = load_events(self.path)
        last_terminal: Dict[object, int] = {}
        for index, event in enumerate(events):
            if event.get("event") in TERMINAL_EVENTS:
                last_terminal[event.get("job_id")] = index
        # Jobs whose last terminal event is a worker-crash failure are
        # retry candidates on replay; their 'requeued' trail carries
        # the attempt count that caps the retries, so it must survive.
        retryable = {
            job_id for job_id, index in last_terminal.items()
            if events[index].get("event") == "failed"
            and str(events[index].get("error", "")).startswith(
                "WorkerCrashError"
            )
        }
        keep: List[Dict[str, object]] = []
        for index, event in enumerate(events):
            name = event.get("event")
            job_id = event.get("job_id")
            if name in ("submitted", "sweep-submitted"):
                keep.append(event)
            elif name in TERMINAL_EVENTS:
                if last_terminal.get(job_id) == index:
                    keep.append(event)
            elif name == "deduplicated":
                continue  # the count rides in the terminal/view doc
            elif name == "requeued":
                if job_id not in last_terminal or job_id in retryable:
                    keep.append(event)
            elif job_id not in last_terminal:
                keep.append(event)  # in-flight job: keep its trail
        staging = self.path.with_name(self.path.name + ".compact-tmp")
        with open(staging, "w", encoding="utf-8") as fh:
            for event in keep:
                fh.write(json.dumps(event, sort_keys=True, default=str) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(staging, self.path)
        return len(events) - len(keep)


def load_events(path: Path) -> List[Dict[str, object]]:
    """Read a store file back (replay, offline analysis, tests).

    Tolerates a torn final line — the one crash artifact the
    append-under-lock discipline permits.
    """
    events: List[Dict[str, object]] = []
    path = Path(path)
    if not path.exists():
        return events
    text = path.read_text(encoding="utf-8")
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return events
