"""The benchmark job service: many clients, one execution surface.

:class:`BenchmarkService` is a long-lived object with submit / status /
result / cancel semantics over declarative
:class:`~repro.api.spec.RunSpec`s and :class:`~repro.api.spec.SweepSpec`
grids:

* **Worker pool** — jobs are scheduled on a small thread pool whose
  threads hand the work to a :mod:`~repro.service.pool` worker pool.
  ``worker_kind="thread"`` runs jobs in-process (kernels are numpy/
  file-I/O dominated and release the GIL); ``worker_kind="process"``
  ships each spec as JSON to one of ``workers`` long-lived worker
  *processes* and receives back the same record/rank-digest document
  the job store persists — true multi-core fan-out with bit-identical
  results (specs are environment-free; the shared artifact cache's
  per-entry locks are ``flock``-based and therefore process-safe).
* **Sweep jobs** — :meth:`submit_sweep` lowers a SweepSpec grid into
  per-cell child RunSpec jobs fanned across the pool, tracks a parent
  job aggregating cell statuses, and assembles the sweep table
  (grid-ordered records plus per-cell digests) as the parent's result.
* **Deduplication** — a spec is identified by its
  :meth:`~repro.api.spec.RunSpec.spec_hash`; submitting a spec that is
  already pending or running returns the existing job id instead of
  queueing the work twice.  Duplicate sweep *cells* collapse the same
  way, across the whole pool.  Completed specs re-run on resubmission —
  with a shared ``cache_dir`` their Kernel 0/1/2 artifacts come back as
  :class:`~repro.core.artifacts.ArtifactCache` hits, so the expensive
  work still happens exactly once.
* **Durability + replay** — every lifecycle event (and, on success,
  the per-kernel records plus the bit-exact rank digest) is appended to
  a JSONL :class:`~repro.service.jobs.JobStore`.  On startup the
  service *replays* the store: terminal jobs are restored verbatim from
  their terminal event documents (no re-execution), and jobs that were
  PENDING or RUNNING at a crash are re-queued exactly once.  A sweep
  interrupted mid-grid resumes: finished cells come back from the log,
  the rest re-run, and the parent completes.  ``compact_on_start`` /
  ``JobStore(compact_every=...)`` keep the log bounded.

The HTTP front end (:mod:`repro.service.httpd`) and the CLI are thin
layers over this class.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.api.runner import RunOutcome, sweep_cells
from repro.api.spec import RunSpec, SweepSpec
from repro.service.jobs import (
    PAYLOAD_KEYS,
    Job,
    JobState,
    JobStore,
    load_events,
)
from repro.service.metrics import ServiceMetrics
from repro.service.pool import RemoteJobError, WorkerCrashError, make_worker_pool

#: Default worker count (scheduler threads == workers for both kinds).
DEFAULT_WORKERS = 2

#: Live requeue budget per scheduler attempt: a job whose worker died
#: (process crash, remote heartbeat loss) is retried this many times
#: *within* the owning scheduler thread before converging to FAILED.
#: Matches the replay cap — both count the job's durable ``requeued``
#: events, so a job that keeps killing workers cannot retry forever
#: across restarts either.
MAX_LIVE_REQUEUES = 2


class JobError(Exception):
    """Base class for job-service failures."""


class UnknownJobError(JobError, KeyError):
    """No job with the given id."""


class JobFailedError(JobError):
    """The job's pipeline execution raised; carries the error text."""


class JobCancelledError(JobError):
    """The job was cancelled before it ran."""


class BenchmarkService:
    """Concurrent benchmark job execution over declarative specs.

    Parameters
    ----------
    workers:
        Concurrent job count (scheduler threads; for
        ``worker_kind="process"`` also the worker-process count).
    worker_kind:
        ``"thread"`` (in-process execution, default) or ``"process"``
        (jobs fan out to long-lived worker processes; results come back
        as JSON documents, the rank vector stays in the worker and only
        its digest crosses the boundary).
    cache_dir:
        Shared :class:`~repro.core.artifacts.ArtifactCache` root handed
        to every job whose spec's ``cache_policy`` allows it.  Safe to
        share across workers *and processes*: entries publish via
        atomic rename and eviction respects per-entry flock reader
        locks.
    store_path:
        JSONL job-store file; ``None`` keeps the service memory-only.
        An existing store is replayed on startup (see ``replay``).
    dedup:
        Deduplicate in-flight submissions by spec hash (default on).
    replay:
        Replay an existing job store on startup: restore terminal jobs
        from their logged result documents and re-queue jobs that were
        in flight when the previous process died.  Default on.
    compact_on_start:
        Compact the store (before replaying it) on startup.
    compact_every:
        Auto-compact the store after every N appended events.
    worker_listen:
        ``worker_kind="remote"`` only: the ``(host, port)`` the
        :class:`~repro.service.remote.RemoteWorkerPool` listens on for
        ``repro worker --connect`` agents (``port=0`` binds an
        ephemeral port — read :attr:`worker_address` back).  Defaults
        to ``("127.0.0.1", 0)``.
    heartbeat_timeout:
        ``worker_kind="remote"`` only: a worker whose heartbeat age
        exceeds this is lost — its in-flight job requeues (then
        retries on another worker) and the worker may reconnect.

    Examples
    --------
    >>> from repro.api import RunSpec
    >>> with BenchmarkService(workers=2) as service:
    ...     job_id = service.submit(RunSpec(scale=6, backend="numpy"))
    ...     outcome = service.result(job_id)
    >>> len(outcome.records)
    4
    """

    def __init__(
        self,
        *,
        workers: int = DEFAULT_WORKERS,
        worker_kind: str = "thread",
        cache_dir: Optional[Path] = None,
        store_path: Optional[Path] = None,
        dedup: bool = True,
        replay: bool = True,
        compact_on_start: bool = False,
        compact_every: Optional[int] = None,
        worker_listen: Optional[Tuple[str, int]] = None,
        heartbeat_timeout: float = 10.0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.dedup = dedup
        self.worker_kind = worker_kind
        if worker_kind == "remote":
            listen = worker_listen or ("127.0.0.1", 0)
            self._workers = make_worker_pool(
                worker_kind, workers,
                host=listen[0], port=int(listen[1]),
                heartbeat_timeout=heartbeat_timeout,
            )
        else:
            if worker_listen is not None:
                raise ValueError(
                    "worker_listen applies only to worker_kind='remote'"
                )
            self._workers = make_worker_pool(worker_kind, workers)
        self._scheduler = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-job"
        )
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._futures: Dict[str, object] = {}
        self._inflight: Dict[str, str] = {}  # spec_hash -> primary job id
        #: scheduler-thread name -> the job id it is currently driving
        #: (the /healthz per-worker in-flight view).
        self._running_jobs: Dict[str, str] = {}
        self.metrics = ServiceMetrics()
        #: child job id -> parent sweep-job ids still waiting on it.
        self._cell_parents: Dict[str, Set[str]] = {}
        #: parent sweep-job id -> child job ids not yet terminal.
        self._parent_waiting: Dict[str, Set[str]] = {}
        self._counter = 0
        self._closed = False
        #: True only during close(wait=False): child terminations it
        #: induces must not durably finalize sweep parents (the store
        #: keeps them open so a restart can resume the sweep).
        self._terminating = False
        self.store = JobStore(store_path, compact_every=compact_every)
        if self.store.path is not None and compact_on_start:
            self.store.compact()
        if self.store.path is not None and replay:
            self._replay_store()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, *, wait: bool = True) -> None:
        """Stop accepting jobs and shut the pools down.

        ``wait=False`` is the ``^C`` path: still-queued jobs are
        cancelled (marked CANCELLED in memory but *not* in the store —
        a queued job survives a service restart), and with
        ``worker_kind="process"`` the worker processes are terminated
        so in-flight jobs fail fast — their scheduler threads observe
        the dead worker, mark the jobs FAILED, and append the
        ``failed`` event, so a later replay never resurrects a zombie
        RUNNING job (replay re-queues such worker-crash failures — the
        job produced no wrong result, its worker was killed).  Sweep
        parents are deliberately *not* finalized by shutdown-induced
        child terminations: their store entry stays open so a restart
        resumes the sweep.
        """
        with self._lock:
            self._closed = True
            if not wait:
                self._terminating = True
        if not wait:
            # Kill workers first so running jobs unblock immediately
            # (a no-op for thread workers, which run to completion).
            self._workers.terminate()
        self._scheduler.shutdown(wait=wait, cancel_futures=not wait)
        if not wait:
            with self._lock:
                cancelled = [
                    job for job in self._jobs.values()
                    if job.state is JobState.PENDING
                    and job.job_id in self._futures
                    and self._futures[job.job_id].cancelled()
                ]
                for job in cancelled:
                    job.state = JobState.CANCELLED
                    job.finished_at = time.time()
                    self._inflight.pop(job.spec_hash, None)
                    job.done.set()
            for job in cancelled:
                self._child_finished(job.job_id)
            if self._workers.kind in ("process", "remote"):
                # Give in-flight scheduler threads a moment to append
                # their terminal (FAILED) events before the process
                # exits.  Thread workers keep running past close() and
                # finish on their own — never stall shutdown on them.
                deadline = time.monotonic() + 10.0
                for job in list(self._jobs.values()):
                    if job.state is JobState.RUNNING and job.kind == "run":
                        job.done.wait(
                            timeout=max(0.0, deadline - time.monotonic())
                        )
            with self._lock:
                for job in self._jobs.values():
                    if job.kind == "sweep" and not job.state.terminal:
                        # The _terminating gate kept the parent's store
                        # entry open (so a restart resumes the sweep),
                        # but local waiters blocked in result() must
                        # still wake: cancel the parent in memory only.
                        job.state = JobState.CANCELLED
                        job.finished_at = time.time()
                        self._inflight.pop(job.spec_hash, None)
                        job.done.set()
        self._workers.shutdown(wait=wait)

    def __enter__(self) -> "BenchmarkService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, spec: Union[RunSpec, Dict[str, object]]) -> str:
        """Queue a spec; returns its job id.

        A dict is parsed through the strict
        :meth:`~repro.api.spec.RunSpec.from_dict` (unknown fields
        refused).  With dedup on, an identical spec already pending or
        running returns the in-flight job's id.
        """
        if isinstance(spec, dict):
            spec = RunSpec.from_dict(spec)
        spec_hash = spec.spec_hash()
        with self._lock:
            if self._closed:
                raise RuntimeError("service is closed")
            primary_id = self._deduplicate_locked(spec_hash)
            if primary_id is not None:
                return primary_id
            job_id = self._next_job_id_locked()
            job = Job(job_id=job_id, spec=spec, spec_hash=spec_hash)
            self._jobs[job_id] = job
            self._inflight[spec_hash] = job_id
            # Log "submitted" before the worker can pick the job up, so
            # the durable event order is always submitted → running.
            self.store.append(
                "submitted",
                {"job_id": job_id, "spec_hash": spec_hash,
                 "spec": spec.to_dict()},
            )
            self._futures[job_id] = self._scheduler.submit(
                self._run_job, job_id
            )
        return job_id

    def submit_sweep(
        self, sweep: Union[SweepSpec, Dict[str, object]]
    ) -> str:
        """Queue a whole sweep grid; returns the *parent* job id.

        The grid is lowered into per-cell RunSpec child jobs (harness
        order: backend-major, then scale) fanned across the worker
        pool; capability-skipped cells are recorded as such.  Duplicate
        cells — within the grid or against jobs already in flight —
        deduplicate by spec hash onto one child.  The parent job is
        RUNNING until every cell is terminal; its result document is
        the assembled sweep table.  Poll it like any job; fetch
        ``GET /jobs/<id>/result`` (or :meth:`result_doc`) when done.

        Raises
        ------
        ValueError
            When no backend in the grid supports the sweep's execution
            strategy (parity with ``execute_sweep``).
        """
        if isinstance(sweep, dict):
            sweep = SweepSpec.from_dict(sweep)
        sweep_hash = sweep.spec_hash()
        cells_plan = sweep_cells(sweep)  # may raise ValueError
        with self._lock:
            if self._closed:
                raise RuntimeError("service is closed")
            primary_id = self._deduplicate_locked(sweep_hash)
            if primary_id is not None:
                return primary_id
            parent_id = self._next_job_id_locked()
            parent = Job(
                job_id=parent_id, spec=None, spec_hash=sweep_hash,
                kind="sweep", sweep=sweep, state=JobState.RUNNING,
                started_at=time.time(),
            )
            self._jobs[parent_id] = parent
            self._inflight[sweep_hash] = parent_id
            # Logged before any cell is submitted so a crash during
            # lowering still replays the parent (which then re-lowers).
            self.store.append(
                "sweep-submitted",
                {"job_id": parent_id, "spec_hash": sweep_hash,
                 "sweep": sweep.to_dict()},
            )
        self._attach_cells(parent, cells_plan)
        return parent_id

    def _deduplicate_locked(self, spec_hash: str) -> Optional[str]:
        """In-flight dedup by workload hash (caller holds the lock)."""
        if not self.dedup:
            return None
        primary_id = self._inflight.get(spec_hash)
        if primary_id is None:
            return None
        primary = self._jobs[primary_id]
        if primary.state.terminal:
            return None
        primary.duplicate_submissions += 1
        self.store.append(
            "deduplicated",
            {"job_id": primary_id, "spec_hash": spec_hash},
        )
        return primary_id

    def _next_job_id_locked(self) -> str:
        self._counter += 1
        return f"job-{self._counter:05d}"

    def _attach_cells(
        self,
        parent: Job,
        cells_plan: List[Tuple[str, int, Optional[RunSpec]]],
    ) -> None:
        """Submit a sweep's cells and wire up parent aggregation."""
        cells: List[Dict[str, object]] = []
        child_ids: List[str] = []
        try:
            for backend, scale, cell_spec in cells_plan:
                if cell_spec is None:
                    cells.append({
                        "backend": backend, "scale": scale,
                        "job_id": None, "skipped": True,
                    })
                    continue
                child_id = self.submit(cell_spec)
                cells.append({
                    "backend": backend, "scale": scale,
                    "job_id": child_id, "skipped": False,
                })
                if child_id not in child_ids:
                    child_ids.append(child_id)
        except RuntimeError:
            # The service closed mid-fan-out.  Unwind the parent in
            # memory (waiters must not block forever) but leave its
            # store entry open — without a sweep-cells event the next
            # start re-lowers the grid, deduplicating onto any cells
            # that did get submitted.
            with self._lock:
                parent.state = JobState.CANCELLED
                parent.finished_at = time.time()
                self._inflight.pop(parent.spec_hash, None)
            parent.done.set()
            raise
        with self._lock:
            parent.cells = cells
            pending = {
                child_id for child_id in child_ids
                if not self._jobs[child_id].state.terminal
            }
            for child_id in pending:
                self._cell_parents.setdefault(child_id, set()).add(
                    parent.job_id
                )
            self._parent_waiting[parent.job_id] = pending
        self.store.append(
            "sweep-cells", {"job_id": parent.job_id, "cells": cells}
        )
        if not pending:
            self._maybe_finalize_parent(parent.job_id)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _run_job(self, job_id: str) -> None:
        """Scheduler-thread body: one job, cradle to grave."""
        job = self._jobs[job_id]
        with self._lock:
            if job.state is not JobState.PENDING:  # cancelled meanwhile
                return
            if self._terminating and self._workers.kind in (
                "process", "remote"
            ):
                # Dequeued in the race window between terminate() and
                # cancel_futures: the workers are already dead, so
                # running would only record a spurious failure.  Leave
                # no durable trace (the job never ran) so the next
                # start re-queues it; mark it cancelled in memory for
                # any local waiters.  Thread workers instead run
                # slipped-through jobs to completion (close never
                # interrupts an in-process pipeline mid-kernel).
                job.state = JobState.CANCELLED
                job.finished_at = time.time()
                self._inflight.pop(job.spec_hash, None)
                job.done.set()
                return
            job.state = JobState.RUNNING
            job.started_at = time.time()
            self._running_jobs[threading.current_thread().name] = job_id
        payload: Optional[Dict[str, object]] = None
        outcome: Optional[RunOutcome] = None
        error: Optional[str] = None
        t_dispatched = t_received = None
        requeues = 0
        try:
            # Guarded: a store I/O failure here must fail the job (and
            # wake its waiters via the finally below), never strand it
            # RUNNING with the spec hash pinned in the dedup map.
            self.store.append("running", {"job_id": job_id})
            while True:
                t_dispatched = time.time()
                try:
                    payload, outcome = self._workers.run_spec(
                        job.spec.to_dict(),
                        str(self.cache_dir)
                        if self.cache_dir is not None else None,
                        job_id=job_id,
                    )
                    t_received = time.time()
                except WorkerCrashError as exc:
                    # The *worker* died under the job (process crash,
                    # remote heartbeat loss, torn socket) — the job
                    # produced no wrong result.  Requeue it live on the
                    # next available worker, with the same durable
                    # ``requeued`` event (and cap) the restart-replay
                    # path uses, so both failure paths share one
                    # vocabulary.  During shutdown the retry would only
                    # spin against a terminated pool: converge to
                    # FAILED, which replay already treats as retryable.
                    with self._lock:
                        terminating = self._terminating
                    if terminating or requeues >= MAX_LIVE_REQUEUES:
                        error = f"WorkerCrashError: {exc}"
                        break
                    requeues += 1
                    self.metrics.record_requeue()
                    self.store.append(
                        "requeued",
                        {"job_id": job_id, "spec_hash": job.spec_hash,
                         "reason": f"WorkerCrashError: {exc}"},
                    )
                    continue
                break
        except RemoteJobError as exc:
            # A worker-side job failure, formatted exactly as the
            # in-process exception would have been.
            error = f"{exc.error_type}: {exc}"
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
        if error is None:
            # A run whose eigenvector validation FAILed is a benchmark
            # failure, mirroring `repro run --validate`'s exit 1; the
            # payload is kept so result_doc still shows the verdict.
            failed = [
                verdict for verdict in (payload.get("validation") or [])
                if not verdict.get("passed")
            ]
            if failed:
                error = (
                    "validation failed "
                    f"(l1={failed[0]['l1_distance']:.4f}, "
                    f"cosine={failed[0]['cosine_similarity']:.6f})"
                )
        if payload is not None and t_dispatched is not None:
            self._append_job_spans(
                job, payload, t_dispatched, t_received, requeues=requeues
            )
        with self._lock:
            job.finished_at = time.time()
            job.result_payload = payload
            job.outcome = outcome
            if error is not None:
                job.state = JobState.FAILED
                job.error = error
            else:
                job.state = JobState.SUCCEEDED
            self._inflight.pop(job.spec_hash, None)
            self._running_jobs.pop(threading.current_thread().name, None)
        self.metrics.record_job(job.state.value, payload)
        try:
            if payload is not None:
                self.store.append(
                    "failed" if error else "succeeded", job.result_doc()
                )
            else:
                self.store.append(
                    "failed", {"job_id": job_id, "error": error}
                )
        finally:
            # A store failure (disk full, directory gone) must never
            # strand waiters: the job *is* terminal in memory.
            job.done.set()
            self._child_finished(job_id)

    def _append_job_spans(
        self,
        job: Job,
        payload: Dict[str, object],
        t_dispatched: float,
        t_received: Optional[float],
        *,
        requeues: int = 0,
    ) -> None:
        """Graft service-side job-lifecycle spans onto the run trace.

        Only possible when the job's payload carries a trace (the spec
        set ``trace``): the pipeline's collector recorded its creation
        epoch, so service events — which live on the epoch clock — map
        onto the run clock as ``epoch - epoch0``.  Negative ids keep
        the grafted spans clear of the pipeline collector's positive id
        space; negative *starts* (the queue began before the collector
        existed) are fine — the Chrome export shifts all timestamps so
        the earliest lands at zero.  Remote dispatches additionally
        graft the worker's registration/heartbeat/dispatch provenance
        from the payload's ``remote`` annotation.
        """
        from repro.core.trace import graft_span

        trace_doc = payload.get("trace")
        if not isinstance(trace_doc, dict):
            return
        thread = threading.current_thread().name
        t_result = time.time()

        def graft(name: str, span_id: int, parent: Optional[int],
                  begin: float, end: float,
                  args: Optional[Dict[str, object]] = None) -> None:
            merged = {"job_id": job.job_id}
            merged.update(args or {})
            graft_span(
                trace_doc, name=name, span_id=span_id, parent_id=parent,
                begin_epoch=begin, end_epoch=end,
                proc="service", thread=thread, args=merged,
            )

        graft(f"job:{job.job_id}", -1, None, job.submitted_at, t_result,
              {"requeues": requeues} if requeues else None)
        graft("job:queue", -2, -1, job.submitted_at, job.started_at)
        graft("job:dispatch", -3, -1, job.started_at, t_dispatched)
        if t_received is not None:
            graft("job:run", -4, -1, t_dispatched, t_received)
            graft("job:result", -5, -1, t_received, t_result)
        remote = payload.get("remote")
        if isinstance(remote, dict) and t_received is not None:
            worker = remote.get("worker_id")
            info = {
                "worker_id": worker,
                "host": remote.get("host"),
                "transport": remote.get("transport"),
            }
            dispatched = remote.get("dispatched_at")
            completed = remote.get("completed_at")
            if isinstance(dispatched, (int, float)) \
                    and isinstance(completed, (int, float)):
                graft(f"job:remote-dispatch:{worker}", -6, -4,
                      float(dispatched), float(completed), info)
            registered = remote.get("registered_at")
            if isinstance(registered, (int, float)):
                graft("worker:registered", -7, -6,
                      float(registered), float(registered), info)
            heartbeat = remote.get("last_heartbeat_at")
            if isinstance(heartbeat, (int, float)):
                graft("worker:last-heartbeat", -8, -6,
                      float(heartbeat), float(heartbeat), info)

    # ------------------------------------------------------------------
    # Sweep aggregation
    # ------------------------------------------------------------------
    def _child_finished(self, child_id: str) -> None:
        """Settle a terminal child against every waiting sweep parent."""
        with self._lock:
            parent_ids = list(self._cell_parents.pop(child_id, ()))
            ready: List[str] = []
            for parent_id in parent_ids:
                waiting = self._parent_waiting.get(parent_id)
                if waiting is None:
                    continue
                waiting.discard(child_id)
                if not waiting:
                    ready.append(parent_id)
        for parent_id in ready:
            self._maybe_finalize_parent(parent_id)

    def _maybe_finalize_parent(self, parent_id: str) -> None:
        """Assemble the sweep table and close the parent job."""
        with self._lock:
            parent = self._jobs[parent_id]
            if parent.state.terminal:
                return
            if self._terminating:
                # Shutdown-induced child terminations must not close
                # the parent durably: its store entry stays open so a
                # restart replays and resumes the sweep.
                return
            cell_docs: List[Dict[str, object]] = []
            records: List[Dict[str, object]] = []
            failures: List[str] = []
            for cell in parent.cells:
                doc = dict(cell)
                if cell.get("skipped"):
                    doc["state"] = "skipped"
                    cell_docs.append(doc)
                    continue
                child = self._jobs.get(cell["job_id"])
                if child is None:
                    # A replayed store can reference a child whose
                    # events were unusable (e.g. unparseable spec from
                    # a newer version); surface it, don't crash.
                    doc["state"] = "failed"
                    doc["error"] = "child job could not be restored"
                    cell_docs.append(doc)
                    failures.append(
                        f"{cell['backend']}/s{cell['scale']} (lost)"
                    )
                    continue
                doc["state"] = child.state.value
                if child.error:
                    doc["error"] = child.error
                child_payload = child.result_payload or {}
                if "rank_sha256" in child_payload:
                    doc["rank_sha256"] = child_payload["rank_sha256"]
                cell_docs.append(doc)
                # Records appear once, in the flattened grid-ordered
                # table (duplicate cells repeat their shared child's
                # rows there, preserving the execute_sweep shape); the
                # per-cell docs carry state + digest only, so the
                # parent's store line and HTTP payload stay lean.
                if child.state is JobState.SUCCEEDED:
                    records.extend(child_payload.get("records") or [])
                else:
                    failures.append(
                        f"{cell['backend']}/s{cell['scale']} "
                        f"({child.state.value})"
                    )
            parent.result_payload = {"cells": cell_docs, "records": records}
            parent.finished_at = time.time()
            if failures:
                parent.state = JobState.FAILED
                parent.error = (
                    f"{len(failures)} of {len(parent.cells)} sweep cells "
                    f"did not succeed: {', '.join(failures)}"
                )
            else:
                parent.state = JobState.SUCCEEDED
            self._inflight.pop(parent.spec_hash, None)
            self._parent_waiting.pop(parent_id, None)
            event = "failed" if failures else "succeeded"
            doc = parent.result_doc()
        # Parents aggregate their cells' records; the cells already fed
        # the metrics one by one, so only the state counter moves here.
        self.metrics.record_job(parent.state.value, None)
        try:
            self.store.append(event, doc)
        finally:
            parent.done.set()

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def _replay_store(self) -> None:
        """Reconstruct service state from the JSONL store on startup.

        Terminal jobs are restored verbatim from their terminal event
        documents — no re-execution, the stored records/digests *are*
        the result.  Jobs that were PENDING or RUNNING when the
        previous process died are re-queued exactly once (a ``requeued``
        event marks the hand-off).  Sweep parents re-arm aggregation
        over their surviving cells; a parent that crashed mid-lowering
        re-lowers its grid, deduplicating onto any requeued cells.
        Tolerates a torn final line (the crash artifact).
        """
        events = load_events(self.store.path)
        if not events:
            return
        infos: Dict[str, Dict[str, object]] = {}
        for event in events:
            name = event.get("event")
            job_id = event.get("job_id")
            if not isinstance(job_id, str):
                continue
            if name == "submitted":
                infos[job_id] = {
                    "kind": "run",
                    "spec": event.get("spec"),
                    "spec_hash": event.get("spec_hash"),
                    "submitted_at": event.get("time"),
                    "terminal": None,
                }
            elif name == "sweep-submitted":
                infos[job_id] = {
                    "kind": "sweep",
                    "sweep": event.get("sweep"),
                    "spec_hash": event.get("spec_hash"),
                    "submitted_at": event.get("time"),
                    "cells": None,
                    "terminal": None,
                }
            elif name == "sweep-cells" and job_id in infos:
                infos[job_id]["cells"] = event.get("cells")
            elif name == "requeued" and job_id in infos:
                infos[job_id]["requeues"] = (
                    int(infos[job_id].get("requeues", 0)) + 1
                )
            elif name in ("succeeded", "failed", "cancelled") \
                    and job_id in infos:
                infos[job_id]["terminal"] = (name, event)

        requeue: List[Job] = []
        open_parents: List[Job] = []
        relower: List[Job] = []
        for job_id, info in infos.items():
            terminal = info["terminal"]
            if info["kind"] == "run":
                spec_doc = info.get("spec")
                try:
                    spec = (
                        RunSpec.from_dict(spec_doc)
                        if isinstance(spec_doc, dict) else None
                    )
                except ValueError:
                    spec = None
                if spec is None and terminal is None:
                    continue  # unusable: no spec to re-run, no result
                if (
                    spec is not None
                    and terminal is not None
                    and terminal[0] == "failed"
                    and str(terminal[1].get("error", "")).startswith(
                        "WorkerCrashError"
                    )
                    and int(info.get("requeues", 0)) < 2
                ):
                    # The *worker* died (shutdown terminate or a real
                    # crash), the job produced no wrong result — retry
                    # it instead of restoring the failure, so a ^C'd
                    # sweep completes on the next start.  Capped at two
                    # logged requeues: a job that keeps killing its
                    # workers (e.g. OOM) must eventually converge to
                    # FAILED instead of poisoning every restart.
                    terminal = None
                job = Job(
                    job_id=job_id, spec=spec,
                    spec_hash=str(info.get("spec_hash") or
                                  (spec.spec_hash() if spec else "")),
                )
            else:
                try:
                    sweep = SweepSpec.from_dict(info["sweep"])
                except (ValueError, TypeError):
                    sweep = None
                if sweep is None and terminal is None:
                    continue  # unusable: nothing to re-lower, no result
                job = Job(
                    job_id=job_id, spec=None,
                    spec_hash=str(info.get("spec_hash") or
                                  (sweep.spec_hash() if sweep else "")),
                    kind="sweep", sweep=sweep,
                    state=JobState.RUNNING,
                )
            submitted_at = info.get("submitted_at")
            if isinstance(submitted_at, (int, float)):
                job.submitted_at = float(submitted_at)
            if terminal is not None:
                name, doc = terminal
                job.state = JobState(name)
                job.error = doc.get("error")
                for attr in ("started_at", "finished_at"):
                    value = doc.get(attr)
                    if isinstance(value, (int, float)):
                        setattr(job, attr, float(value))
                if job.finished_at is None:
                    value = doc.get("time")
                    if isinstance(value, (int, float)):
                        job.finished_at = float(value)
                dupes = doc.get("duplicate_submissions")
                if isinstance(dupes, int):
                    job.duplicate_submissions = dupes
                payload = {
                    key: doc[key] for key in PAYLOAD_KEYS if key in doc
                }
                if job.kind == "sweep":
                    # view() carries cell *references* only; the full
                    # per-cell documents (digests) stay in the result
                    # payload, matching live parents' shape.  Fall back
                    # to the sweep-cells event for terminal docs that
                    # carry no cell roster (e.g. an exception-path
                    # failure).
                    cells_doc = doc.get("cells")
                    if not isinstance(cells_doc, list):
                        cells_doc = info.get("cells")
                    if isinstance(cells_doc, list):
                        job.cells = [
                            {key: cell.get(key)
                             for key in ("backend", "scale", "job_id",
                                         "skipped")}
                            for cell in cells_doc
                        ]
                if payload:
                    job.result_payload = payload
                job.done.set()
            elif job.kind == "run":
                requeue.append(job)
            else:
                cells = info.get("cells")
                if isinstance(cells, list):
                    job.cells = [dict(c) for c in cells]
                    open_parents.append(job)
                else:
                    relower.append(job)  # crashed mid-lowering
            self._jobs[job_id] = job

        # Resume the id counter over every id the log ever issued —
        # including jobs replay had to drop — so no id is reissued to
        # an unrelated workload (the store and sweep cell rosters key
        # on job ids).
        for job_id in infos:
            tail = job_id.rsplit("-", 1)[-1]
            if tail.isdigit():
                self._counter = max(self._counter, int(tail))

        # A parent that went FAILED only because workers were killed
        # under it is reopened (a) when any of its cells is being
        # retried — otherwise the retried cells would complete as
        # orphans while the parent stayed durably failed — or (b) when
        # every cell has in fact succeeded (a crash landed between the
        # last cell's terminal event and the parent's fresh one, so the
        # logged parent failure is stale).  Its eventual terminal event
        # supersedes the old one on the next replay.
        requeued_ids = {job.job_id for job in requeue}
        for job in self._jobs.values():
            if job.kind != "sweep" or job.state is not JobState.FAILED:
                continue
            cell_ids = {
                cell.get("job_id") for cell in job.cells
                if cell.get("job_id")
            }
            children = [self._jobs.get(cell_id) for cell_id in cell_ids]
            reopen = bool(cell_ids & requeued_ids) or (
                bool(children)
                and all(
                    child is not None
                    and child.state is JobState.SUCCEEDED
                    for child in children
                )
            )
            if reopen:
                job.state = JobState.RUNNING
                job.error = None
                job.finished_at = None
                job.result_payload = None
                job.done.clear()
                open_parents.append(job)

        # Re-arm dedup and parent aggregation before any work starts.
        for job in requeue:
            self._inflight.setdefault(job.spec_hash, job.job_id)
        for parent in open_parents:
            self._inflight.setdefault(parent.spec_hash, parent.job_id)
            pending: Set[str] = set()
            for cell in parent.cells:
                child_id = cell.get("job_id")
                child = self._jobs.get(child_id) if child_id else None
                if child is not None and not child.state.terminal:
                    pending.add(child_id)
                    self._cell_parents.setdefault(child_id, set()).add(
                        parent.job_id
                    )
            self._parent_waiting[parent.job_id] = pending

        for job in requeue:
            self.store.append(
                "requeued",
                {"job_id": job.job_id, "spec_hash": job.spec_hash},
            )
            self._futures[job.job_id] = self._scheduler.submit(
                self._run_job, job.job_id
            )
        for parent in relower:
            self._inflight.setdefault(parent.spec_hash, parent.job_id)
            try:
                cells_plan = sweep_cells(parent.sweep)
            except ValueError as exc:
                with self._lock:
                    parent.state = JobState.FAILED
                    parent.error = str(exc)
                    parent.finished_at = time.time()
                    self._inflight.pop(parent.spec_hash, None)
                self.store.append(
                    "failed",
                    {"job_id": parent.job_id, "error": parent.error},
                )
                parent.done.set()
                continue
            self._attach_cells(parent, cells_plan)
        for parent in open_parents:
            if not self._parent_waiting.get(parent.job_id):
                self._maybe_finalize_parent(parent.job_id)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def _job(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise UnknownJobError(
                f"unknown job id {job_id!r}; known: {sorted(self._jobs)}"
            ) from None

    def status(self, job_id: str) -> Dict[str, object]:
        """JSON-safe status snapshot of one job."""
        with self._lock:
            return self._job(job_id).view()

    def jobs(self) -> List[Dict[str, object]]:
        """Status snapshots of every job, in submission order."""
        with self._lock:
            return [job.view() for job in self._jobs.values()]

    def result(self, job_id: str, timeout: Optional[float] = None):
        """Block until the job finishes and return its result.

        Returns the live :class:`RunOutcome` when one exists (thread
        workers); otherwise — process workers, sweep parents, jobs
        restored by replay — the JSON-safe result document (the rank
        vector never crossed into this process; its digest rides in
        ``rank_sha256``).

        Raises
        ------
        JobFailedError / JobCancelledError:
            Terminal non-success states.
        concurrent.futures.TimeoutError:
            ``timeout`` elapsed first.
        """
        job = self._job(job_id)
        if not job.done.wait(timeout):
            raise FuturesTimeout(
                f"job {job_id} still {job.state.value} after {timeout}s"
            )
        if job.state is JobState.FAILED:
            raise JobFailedError(f"job {job_id} failed: {job.error}")
        if job.state is not JobState.SUCCEEDED:
            raise JobCancelledError(f"job {job_id} was cancelled")
        if job.outcome is not None:
            return job.outcome
        with self._lock:
            return job.result_doc()

    def result_doc(self, job_id: str) -> Dict[str, object]:
        """JSON-safe result payload (records + rank digest) of a job."""
        with self._lock:
            return self._job(job_id).result_doc()

    def job_trace(self, job_id: str) -> Optional[Dict[str, object]]:
        """The Perfetto-loadable Chrome trace of a terminal traced job.

        ``None`` when the job recorded no trace (spec had ``trace``
        off, or the job failed before producing one).  The run-trace
        document stored in the payload — pipeline spans plus the
        service's grafted job-lifecycle spans — is rendered through
        :func:`repro.core.trace.chrome_trace`.
        """
        from repro.core.trace import chrome_trace

        with self._lock:
            job = self._job(job_id)
            payload = job.result_payload or {}
            trace_doc = payload.get("trace")
        if not isinstance(trace_doc, dict):
            return None
        return chrome_trace(trace_doc)

    def queue_depth(self) -> int:
        """Jobs submitted but not yet picked up by a scheduler thread."""
        with self._lock:
            return sum(
                1 for job in self._jobs.values()
                if job.state is JobState.PENDING
            )

    def running_jobs_by_worker(self) -> Dict[str, str]:
        """Scheduler-thread name → the job id it is currently driving."""
        with self._lock:
            return dict(self._running_jobs)

    @property
    def worker_address(self) -> Optional[Tuple[str, int]]:
        """The remote pool's worker-listen address (``None`` for local
        worker kinds)."""
        return getattr(self._workers, "address", None)

    def set_artifact_base(self, base_url: Optional[str]) -> None:
        """Advertise the HTTP front end's base URL to remote workers
        (they fetch/push artifact-cache entries against it).  No-op
        for local worker kinds."""
        if hasattr(self._workers, "artifact_base"):
            self._workers.artifact_base = base_url

    def workers_health(self) -> Dict[str, Dict[str, object]]:
        """Per-worker health rows for ``/healthz``.

        Remote pools report every *connected* worker — kind, transport,
        host, heartbeat age, and the in-flight job id (``None`` when
        idle).  Local pools have no pool-owned identities or
        heartbeats, so their rows are the scheduler threads currently
        driving jobs, labelled with the pool's kind/transport (idle
        local services report ``{}``).
        """
        view = self._workers.workers_view()
        if view:
            return {
                str(row.pop("worker")): row for row in view
            }
        transport = getattr(self._workers, "transport", "inline")
        with self._lock:
            running = dict(self._running_jobs)
        return {
            name: {
                "kind": self.worker_kind,
                "transport": transport,
                "job_id": running_job_id,
                "heartbeat_age_s": None,
            }
            for name, running_job_id in running.items()
        }

    def jobs_by_state(self) -> Dict[str, int]:
        """Job counts per lifecycle state (the /metrics gauge)."""
        with self._lock:
            counts: Dict[str, int] = {}
            for job in self._jobs.values():
                counts[job.state.value] = counts.get(job.state.value, 0) + 1
            return counts

    def metrics_text(self) -> str:
        """The Prometheus text document for ``GET /metrics``."""
        return self.metrics.render(
            jobs_by_state=self.jobs_by_state(),
            queue_depth=self.queue_depth(),
            worker_stats=self._workers.stats(),
            worker_detail=self._workers.workers_view(),
        )

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------
    def cancel(self, job_id: str) -> bool:
        """Cancel a job that has not started; returns whether it worked.

        A running pipeline is never interrupted mid-kernel (the paper's
        sequencing makes partial runs meaningless) — cancelling a
        RUNNING or terminal job returns False.  Sweep parents are
        RUNNING from submission; cancel their PENDING cells instead.
        """
        with self._lock:
            job = self._job(job_id)
            if job.state is not JobState.PENDING:
                return False
            future = self._futures.get(job_id)
            if future is None or not future.cancel():
                return False  # a worker grabbed it in between
            job.state = JobState.CANCELLED
            job.finished_at = time.time()
            self._inflight.pop(job.spec_hash, None)
        self.metrics.record_job(JobState.CANCELLED.value, None)
        try:
            self.store.append("cancelled", {"job_id": job_id})
        finally:
            job.done.set()
            self._child_finished(job_id)
        return True
