"""The benchmark job service: many clients, one execution surface.

:class:`BenchmarkService` is a long-lived object with submit / status /
result / cancel semantics over declarative
:class:`~repro.api.spec.RunSpec`s:

* **Worker pool** — jobs run on a thread pool (the kernels are
  numpy/file-I/O dominated and release the GIL; a spec that selects the
  ``parallel`` strategy with ``parallel_executor="mp"`` gets true
  process parallelism *inside* its job via the multiprocessing
  communicator).
* **Deduplication** — a spec is identified by its
  :meth:`~repro.api.spec.RunSpec.spec_hash`; submitting a spec that is
  already pending or running returns the existing job id instead of
  queueing the work twice.  Completed specs re-run on resubmission —
  with a shared ``cache_dir`` their Kernel 0/1/2 artifacts come back as
  :class:`~repro.core.artifacts.ArtifactCache` hits, so the expensive
  work still happens exactly once.
* **Durability** — every lifecycle event (and, on success, the
  per-kernel :class:`~repro.harness.records.MeasurementRecord`s plus
  the bit-exact rank digest) is appended to a JSONL
  :class:`~repro.service.jobs.JobStore`.

The HTTP front end (:mod:`repro.service.httpd`) and the CLI are thin
layers over this class.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import CancelledError, Future, ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.api.runner import RunOutcome, execute_spec
from repro.api.spec import RunSpec
from repro.service.jobs import Job, JobState, JobStore

#: Default worker-thread count.
DEFAULT_WORKERS = 2


class JobError(Exception):
    """Base class for job-service failures."""


class UnknownJobError(JobError, KeyError):
    """No job with the given id."""


class JobFailedError(JobError):
    """The job's pipeline execution raised; carries the error text."""


class JobCancelledError(JobError):
    """The job was cancelled before it ran."""


class BenchmarkService:
    """Concurrent benchmark job execution over declarative specs.

    Parameters
    ----------
    workers:
        Worker-thread count (jobs executing concurrently).
    cache_dir:
        Shared :class:`~repro.core.artifacts.ArtifactCache` root handed
        to every job whose spec's ``cache_policy`` allows it.  Safe to
        share across workers: entries publish via atomic rename and
        eviction respects per-entry reader locks.
    store_path:
        JSONL job-store file; ``None`` keeps the service memory-only.
    dedup:
        Deduplicate in-flight submissions by spec hash (default on).

    Examples
    --------
    >>> from repro.api import RunSpec
    >>> with BenchmarkService(workers=2) as service:
    ...     job_id = service.submit(RunSpec(scale=6, backend="numpy"))
    ...     outcome = service.result(job_id)
    >>> len(outcome.records)
    4
    """

    def __init__(
        self,
        *,
        workers: int = DEFAULT_WORKERS,
        cache_dir: Optional[Path] = None,
        store_path: Optional[Path] = None,
        dedup: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.dedup = dedup
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-job"
        )
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._futures: Dict[str, Future] = {}
        self._inflight: Dict[str, str] = {}  # spec_hash -> primary job id
        self._counter = 0
        self._closed = False
        self.store = JobStore(store_path)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, *, wait: bool = True) -> None:
        """Stop accepting jobs and shut the pool down.

        ``wait=False`` also cancels still-queued jobs (marking them
        CANCELLED) — otherwise the interpreter's atexit join would
        drain every pending benchmark run before the process could
        exit, which is not what Ctrl-C on ``repro serve`` means.
        """
        with self._lock:
            self._closed = True
        self._pool.shutdown(wait=wait, cancel_futures=not wait)
        if not wait:
            with self._lock:
                for job in self._jobs.values():
                    if job.state is JobState.PENDING and \
                            self._futures[job.job_id].cancelled():
                        job.state = JobState.CANCELLED
                        job.finished_at = time.time()
                        self._inflight.pop(job.spec_hash, None)

    def __enter__(self) -> "BenchmarkService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, spec: Union[RunSpec, Dict[str, object]]) -> str:
        """Queue a spec; returns its job id.

        A dict is parsed through the strict
        :meth:`~repro.api.spec.RunSpec.from_dict` (unknown fields
        refused).  With dedup on, an identical spec already pending or
        running returns the in-flight job's id.
        """
        if isinstance(spec, dict):
            spec = RunSpec.from_dict(spec)
        spec_hash = spec.spec_hash()
        with self._lock:
            if self._closed:
                raise RuntimeError("service is closed")
            if self.dedup:
                primary_id = self._inflight.get(spec_hash)
                if primary_id is not None:
                    primary = self._jobs[primary_id]
                    if not primary.state.terminal:
                        primary.duplicate_submissions += 1
                        self.store.append(
                            "deduplicated",
                            {"job_id": primary_id, "spec_hash": spec_hash},
                        )
                        return primary_id
            self._counter += 1
            job_id = f"job-{self._counter:05d}"
            job = Job(job_id=job_id, spec=spec, spec_hash=spec_hash)
            self._jobs[job_id] = job
            self._inflight[spec_hash] = job_id
            # Log "submitted" before the worker can pick the job up, so
            # the durable event order is always submitted → running.
            self.store.append(
                "submitted",
                {"job_id": job_id, "spec_hash": spec_hash,
                 "spec": spec.to_dict()},
            )
            self._futures[job_id] = self._pool.submit(self._run_job, job_id)
        return job_id

    def _run_job(self, job_id: str) -> None:
        """Worker body: one job, cradle to grave."""
        job = self._jobs[job_id]
        with self._lock:
            if job.state is not JobState.PENDING:  # cancelled meanwhile
                return
            job.state = JobState.RUNNING
            job.started_at = time.time()
        self.store.append("running", {"job_id": job_id})
        try:
            outcome = execute_spec(job.spec, cache_dir=self.cache_dir)
        except Exception as exc:
            with self._lock:
                job.state = JobState.FAILED
                job.error = f"{type(exc).__name__}: {exc}"
                job.finished_at = time.time()
                self._inflight.pop(job.spec_hash, None)
            self.store.append(
                "failed", {"job_id": job_id, "error": job.error}
            )
        else:
            # A run whose eigenvector validation FAILed is a benchmark
            # failure, mirroring `repro run --validate`'s exit 1; the
            # outcome is kept so result_doc still shows the verdict.
            failed = [
                r.validation for r in outcome.results
                if r.validation is not None and not r.validation["passed"]
            ]
            with self._lock:
                job.outcome = outcome
                job.finished_at = time.time()
                self._inflight.pop(job.spec_hash, None)
                if failed:
                    job.state = JobState.FAILED
                    job.error = (
                        "validation failed "
                        f"(l1={failed[0]['l1_distance']:.4f}, "
                        f"cosine={failed[0]['cosine_similarity']:.6f})"
                    )
                else:
                    job.state = JobState.SUCCEEDED
            self.store.append(
                "failed" if failed else "succeeded", job.result_doc()
            )

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def _job(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise UnknownJobError(
                f"unknown job id {job_id!r}; known: {sorted(self._jobs)}"
            ) from None

    def status(self, job_id: str) -> Dict[str, object]:
        """JSON-safe status snapshot of one job."""
        with self._lock:
            return self._job(job_id).view()

    def jobs(self) -> List[Dict[str, object]]:
        """Status snapshots of every job, in submission order."""
        with self._lock:
            return [job.view() for job in self._jobs.values()]

    def result(self, job_id: str, timeout: Optional[float] = None) -> RunOutcome:
        """Block until the job finishes and return its outcome.

        Raises
        ------
        JobFailedError / JobCancelledError:
            Terminal non-success states.
        concurrent.futures.TimeoutError:
            ``timeout`` elapsed first.
        """
        with self._lock:
            future = self._futures[self._job(job_id).job_id]
        try:
            future.result(timeout)
        except CancelledError:
            pass
        job = self._job(job_id)
        if job.state is JobState.FAILED:
            raise JobFailedError(f"job {job_id} failed: {job.error}")
        if job.outcome is None:
            # CANCELLED — or still PENDING because close(wait=False)
            # cancelled the future and is about to mark the job (the
            # waiter can wake before close() takes the lock again).
            raise JobCancelledError(f"job {job_id} was cancelled")
        return job.outcome

    def result_doc(self, job_id: str) -> Dict[str, object]:
        """JSON-safe result payload (records + rank digest) of a job."""
        with self._lock:
            return self._job(job_id).result_doc()

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------
    def cancel(self, job_id: str) -> bool:
        """Cancel a job that has not started; returns whether it worked.

        A running pipeline is never interrupted mid-kernel (the paper's
        sequencing makes partial runs meaningless) — cancelling a
        RUNNING or terminal job returns False.
        """
        with self._lock:
            job = self._job(job_id)
            if job.state is not JobState.PENDING:
                return False
            if not self._futures[job_id].cancel():
                return False  # a worker grabbed it in between
            job.state = JobState.CANCELLED
            job.finished_at = time.time()
            self._inflight.pop(job.spec_hash, None)
        self.store.append("cancelled", {"job_id": job_id})
        return True
