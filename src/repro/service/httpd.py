"""JSON-over-HTTP front end for the benchmark service (stdlib only).

``repro-pipeline serve`` starts a :class:`ThreadingHTTPServer` whose
handler is a thin translation layer over one shared
:class:`~repro.service.BenchmarkService` — many clients submit
concurrently; per-request threads funnel into the service's worker
pool.

Routes::

    GET    /healthz              liveness + job counts
    GET    /scenarios            registered scenario names/descriptions
    GET    /jobs                 all job status snapshots
    POST   /jobs                 submit: {"spec": {...}} or
                                 {"scenario": "name",
                                  "overrides": {...}}   -> {"job_id": ...}
    GET    /jobs/<id>            one job's status
    GET    /jobs/<id>/result     terminal payload (records, rank digest);
                                 409 while the job is still in flight
    DELETE /jobs/<id>            cancel (only a PENDING job can be)

Errors are JSON too: ``{"error": "..."}`` with a 4xx status.  The
server never imports beyond the stdlib — the paper's "holistic system
benchmark" framing means the harness must not drag in a web stack the
platforms under test would not share.
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.api.scenarios import BUILTIN_SCENARIOS, ScenarioRegistry
from repro.api.spec import RunSpec
from repro.service.service import BenchmarkService, UnknownJobError

logger = logging.getLogger("repro.service.http")


class BenchmarkHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the shared service + registry."""

    #: Per-request threads must not outlive a shutdown mid-job-poll.
    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: BenchmarkService,
        registry: Optional[ScenarioRegistry] = None,
    ) -> None:
        super().__init__(address, BenchmarkRequestHandler)
        self.service = service
        self.registry = registry if registry is not None else BUILTIN_SCENARIOS


class BenchmarkRequestHandler(BaseHTTPRequestHandler):
    """Translate HTTP verbs/paths into service calls."""

    server: BenchmarkHTTPServer
    #: Advertised in responses; bump with the JSON shape.
    server_version = "repro-serve/1.0"

    # -- plumbing ------------------------------------------------------
    def log_message(self, format: str, *args: object) -> None:
        logger.debug("%s - %s", self.address_string(), format % args)

    def _reply(self, status: int, doc: Dict[str, object]) -> None:
        payload = json.dumps(doc, sort_keys=True, default=str).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _error(self, status: int, message: str) -> None:
        self._reply(status, {"error": message})

    def _read_body(self) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        doc = json.loads(raw.decode("utf-8"))
        if not isinstance(doc, dict):
            raise ValueError("request body must be a JSON object")
        return doc

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib handler API)
        service = self.server.service
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        try:
            if parts == ["healthz"]:
                jobs = service.jobs()
                self._reply(200, {
                    "status": "ok",
                    "jobs": len(jobs),
                    "in_flight": sum(
                        1 for j in jobs
                        if j["state"] in ("pending", "running")
                    ),
                })
            elif parts == ["scenarios"]:
                self._reply(200, {
                    "scenarios": [
                        {"name": name, "description": description}
                        for name, description in self.server.registry.describe()
                    ]
                })
            elif parts == ["jobs"]:
                self._reply(200, {"jobs": service.jobs()})
            elif len(parts) == 2 and parts[0] == "jobs":
                self._reply(200, service.status(parts[1]))
            elif len(parts) == 3 and parts[:1] == ["jobs"] and parts[2] == "result":
                status = service.status(parts[1])
                if status["state"] in ("pending", "running"):
                    self._error(
                        409, f"job {parts[1]} is {status['state']}; poll "
                             f"GET /jobs/{parts[1]} until terminal"
                    )
                else:
                    self._reply(200, service.result_doc(parts[1]))
            else:
                self._error(404, f"no route for GET {self.path}")
        except UnknownJobError as exc:
            self._error(404, str(exc.args[0] if exc.args else exc))

    def do_POST(self) -> None:  # noqa: N802
        if [p for p in self.path.split("?")[0].split("/") if p] != ["jobs"]:
            self._error(404, f"no route for POST {self.path}")
            return
        try:
            body = self._read_body()
        except (ValueError, json.JSONDecodeError) as exc:
            self._error(400, f"bad request body: {exc}")
            return
        try:
            if "scenario" in body:
                overrides = body.get("overrides") or {}
                if not isinstance(overrides, dict):
                    raise ValueError("'overrides' must be an object")
                spec = self.server.registry.resolve(
                    str(body["scenario"]), **overrides
                )
            elif "spec" in body:
                spec = RunSpec.from_dict(body["spec"])
            else:
                raise ValueError(
                    "body must carry either 'spec' (a RunSpec document) "
                    "or 'scenario' (+ optional 'overrides')"
                )
        except (KeyError, ValueError, TypeError) as exc:
            self._error(400, str(exc.args[0] if exc.args else exc))
            return
        try:
            job_id = self.server.service.submit(spec)
        except RuntimeError as exc:  # service closed
            self._error(503, str(exc))
            return
        self._reply(202, {"job_id": job_id, **self.server.service.status(job_id)})

    def do_DELETE(self) -> None:  # noqa: N802
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if len(parts) != 2 or parts[0] != "jobs":
            self._error(404, f"no route for DELETE {self.path}")
            return
        try:
            cancelled = self.server.service.cancel(parts[1])
        except UnknownJobError as exc:
            self._error(404, str(exc.args[0] if exc.args else exc))
            return
        self._reply(200 if cancelled else 409, {
            "job_id": parts[1],
            "cancelled": cancelled,
            **self.server.service.status(parts[1]),
        })


def make_server(
    service: BenchmarkService,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    registry: Optional[ScenarioRegistry] = None,
) -> BenchmarkHTTPServer:
    """Bind (but do not start) a server; ``port=0`` picks a free port.

    The caller owns the loop: ``server.serve_forever()`` inline, or in a
    thread for tests (see :func:`serve_in_thread`).
    """
    return BenchmarkHTTPServer((host, port), service, registry)


def serve_in_thread(
    service: BenchmarkService, **kwargs: object
) -> Tuple[BenchmarkHTTPServer, threading.Thread]:
    """Start a server on a daemon thread (test/embedding helper)."""
    server = make_server(service, **kwargs)  # type: ignore[arg-type]
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve", daemon=True
    )
    thread.start()
    return server, thread


def run_server(
    *,
    host: str = "127.0.0.1",
    port: int = 8734,
    workers: int = 2,
    cache_dir: Optional[Path] = None,
    store_path: Optional[Path] = None,
) -> int:
    """``repro-pipeline serve`` body: serve until interrupted.

    Prints the bound address (stdout, one line, parse-friendly) so
    scripts using ``--port 0`` can discover the ephemeral port.
    """
    service = BenchmarkService(
        workers=workers, cache_dir=cache_dir, store_path=store_path
    )
    server = make_server(service, host=host, port=port)
    bound_host, bound_port = server.server_address[:2]
    print(f"serving on http://{bound_host}:{bound_port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.close(wait=False)
    return 0
