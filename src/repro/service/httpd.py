"""JSON-over-HTTP front end for the benchmark service (stdlib only).

``repro-pipeline serve`` starts a :class:`ThreadingHTTPServer` whose
handler is a thin translation layer over one shared
:class:`~repro.service.BenchmarkService` — many clients submit
concurrently; per-request threads funnel into the service's worker
pool.

Routes::

    GET    /healthz              liveness + job counts + worker kind +
                                 queue depth + per-worker health rows
                                 (kind, transport, host, heartbeat age,
                                 in-flight job id)
    GET    /metrics              Prometheus text exposition (job counts,
                                 queue depth, worker churn + heartbeat
                                 ages, cache hit ratio, artifact-sync
                                 transfers, shm savings, kernel
                                 histograms)
    GET    /artifacts            index of published artifact-cache
                                 entries (the cross-host sync surface)
    GET    /artifacts/<kind>/<key>
                                 one cache entry as an uncompressed tar
                                 (404 on a miss — the worker generates
                                 locally instead)
    PUT    /artifacts/<kind>/<key>
                                 publish one entry tar (workers push
                                 fresh K0/K1 artifacts so later workers
                                 on other hosts hit)
    GET    /scenarios            registered scenario names/descriptions
    GET    /jobs                 all job status snapshots
    POST   /jobs                 submit: {"spec": {...}} or
                                 {"scenario": "name",
                                  "overrides": {...}} or a sweep —
                                 {"sweep": {SweepSpec doc}} or
                                 {"scenario": "name", "overrides": {...},
                                  "sweep": {"scales": [...],
                                            "backends": [...],
                                            "repeats": N}}
                                 -> {"job_id": ...} (sweeps return the
                                 parent job; its status lists per-cell
                                 child jobs and its result is the
                                 assembled sweep table)
    GET    /jobs/<id>            one job's status
    GET    /jobs/<id>/result     terminal payload (records, rank digest;
                                 for sweep parents the sweep table);
                                 409 while the job is still in flight
    GET    /jobs/<id>/trace      Perfetto-loadable Chrome trace of a
                                 terminal traced job (404 when the spec
                                 had trace off; 409 while in flight)
    DELETE /jobs/<id>            cancel (only a PENDING job can be)

Errors are JSON too: ``{"error": "..."}`` with a 4xx status.  The
server never imports beyond the stdlib — the paper's "holistic system
benchmark" framing means the harness must not drag in a web stack the
platforms under test would not share.
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.api.scenarios import BUILTIN_SCENARIOS, ScenarioRegistry
from repro.api.spec import RunSpec, SweepSpec
from repro.service.service import BenchmarkService, UnknownJobError

#: Keys a ``{"scenario": ..., "sweep": {...}}`` grid object may carry.
_SWEEP_GRID_KEYS = {"scales", "backends", "repeats"}

#: PUT /artifacts body cap — far above any real K0/K1 entry at service
#: scales, small enough that a hostile upload cannot balloon memory.
_MAX_ARTIFACT_BYTES = 512 * 1024 * 1024

logger = logging.getLogger("repro.service.http")


class BenchmarkHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the shared service + registry."""

    #: Per-request threads must not outlive a shutdown mid-job-poll.
    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: BenchmarkService,
        registry: Optional[ScenarioRegistry] = None,
    ) -> None:
        super().__init__(address, BenchmarkRequestHandler)
        self.service = service
        self.registry = registry if registry is not None else BUILTIN_SCENARIOS


class BenchmarkRequestHandler(BaseHTTPRequestHandler):
    """Translate HTTP verbs/paths into service calls."""

    server: BenchmarkHTTPServer
    #: Advertised in responses; bump with the JSON shape.
    server_version = "repro-serve/1.0"

    # -- plumbing ------------------------------------------------------
    def log_message(self, format: str, *args: object) -> None:
        logger.debug("%s - %s", self.address_string(), format % args)

    def _reply(self, status: int, doc: Dict[str, object]) -> None:
        payload = json.dumps(doc, sort_keys=True, default=str).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _reply_text(self, status: int, text: str, content_type: str) -> None:
        payload = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _error(self, status: int, message: str) -> None:
        self._reply(status, {"error": message})

    def _read_body(self) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        doc = json.loads(raw.decode("utf-8"))
        if not isinstance(doc, dict):
            raise ValueError("request body must be a JSON object")
        return doc

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib handler API)
        service = self.server.service
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        try:
            if parts == ["healthz"]:
                jobs = service.jobs()
                doc = {
                    "status": "ok",
                    "worker_kind": service.worker_kind,
                    "worker_transport": getattr(
                        service._workers, "transport", "inline"
                    ),
                    "jobs": len(jobs),
                    "in_flight": sum(
                        1 for j in jobs
                        if j["state"] in ("pending", "running")
                    ),
                    "queue_depth": service.queue_depth(),
                    "workers": service.workers_health(),
                }
                stats = service._workers.stats()
                if "workers_connected" in stats:
                    doc["workers_connected"] = stats["workers_connected"]
                    address = service.worker_address
                    if address is not None:
                        doc["worker_listen"] = list(address)
                self._reply(200, doc)
            elif parts == ["metrics"]:
                self._reply_text(
                    200, service.metrics_text(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif parts and parts[0] == "artifacts":
                self._get_artifacts(parts[1:])
            elif parts == ["scenarios"]:
                self._reply(200, {
                    "scenarios": [
                        {"name": name, "description": description}
                        for name, description in self.server.registry.describe()
                    ]
                })
            elif parts == ["jobs"]:
                self._reply(200, {"jobs": service.jobs()})
            elif len(parts) == 2 and parts[0] == "jobs":
                self._reply(200, service.status(parts[1]))
            elif len(parts) == 3 and parts[:1] == ["jobs"] and parts[2] == "result":
                status = service.status(parts[1])
                if status["state"] in ("pending", "running"):
                    self._error(
                        409, f"job {parts[1]} is {status['state']}; poll "
                             f"GET /jobs/{parts[1]} until terminal"
                    )
                else:
                    self._reply(200, service.result_doc(parts[1]))
            elif len(parts) == 3 and parts[:1] == ["jobs"] and parts[2] == "trace":
                status = service.status(parts[1])
                if status["state"] in ("pending", "running"):
                    self._error(
                        409, f"job {parts[1]} is {status['state']}; poll "
                             f"GET /jobs/{parts[1]} until terminal"
                    )
                else:
                    trace = service.job_trace(parts[1])
                    if trace is None:
                        self._error(
                            404, f"job {parts[1]} recorded no trace "
                                 f"(submit with \"trace\": true)"
                        )
                    else:
                        self._reply(200, trace)
            else:
                self._error(404, f"no route for GET {self.path}")
        except UnknownJobError as exc:
            self._error(404, str(exc.args[0] if exc.args else exc))

    # -- cross-host artifact sync --------------------------------------
    def _artifact_cache(self):
        """The service's shared cache, or ``None`` (no ``cache_dir``)."""
        from repro.core.artifacts import ArtifactCache

        cache_dir = self.server.service.cache_dir
        if cache_dir is None:
            return None
        return ArtifactCache(cache_dir)

    def _artifact_target(self, parts):
        """Validate ``/artifacts/<kind>/<key>`` path parts."""
        from repro.core.artifacts import ArtifactCache

        if len(parts) != 2:
            raise ValueError(
                "artifact routes are GET /artifacts or "
                "GET|PUT /artifacts/<kind>/<key>"
            )
        kind, key = parts
        if kind not in ArtifactCache.KINDS:
            raise ValueError(
                f"kind must be one of {ArtifactCache.KINDS}, got {kind!r}"
            )
        if not key or not all(c in "0123456789abcdef" for c in key):
            raise ValueError(f"key must be lowercase hex, got {key!r}")
        return kind, key

    def _get_artifacts(self, parts) -> None:
        service = self.server.service
        cache = self._artifact_cache()
        if cache is None:
            self._error(
                404, "no artifact cache configured (serve with "
                     "--cache-dir to enable cross-host sync)"
            )
            return
        if not parts:
            self._reply(200, {"entries": [
                {"kind": entry.kind, "key": entry.key,
                 "num_bytes": entry.num_bytes}
                for entry in cache.entries()
            ]})
            return
        try:
            kind, key = self._artifact_target(parts)
        except ValueError as exc:
            self._error(400, str(exc))
            return
        data = cache.export_entry(kind, key)
        if data is None:
            service.metrics.record_artifact_sync("get", "miss")
            self._error(404, f"no {kind} entry with key {key}")
            return
        service.metrics.record_artifact_sync("get", "hit")
        self.send_response(200)
        self.send_header("Content-Type", "application/x-tar")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def do_PUT(self) -> None:  # noqa: N802
        service = self.server.service
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if not parts or parts[0] != "artifacts":
            self._error(404, f"no route for PUT {self.path}")
            return
        cache = self._artifact_cache()
        if cache is None:
            self._error(
                404, "no artifact cache configured (serve with "
                     "--cache-dir to enable cross-host sync)"
            )
            return
        try:
            kind, key = self._artifact_target(parts[1:])
        except ValueError as exc:
            self._error(400, str(exc))
            return
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            self._error(400, "PUT /artifacts requires a tar body")
            return
        if length > _MAX_ARTIFACT_BYTES:
            service.metrics.record_artifact_sync("put", "rejected")
            self._error(
                413, f"artifact body of {length} bytes exceeds the "
                     f"{_MAX_ARTIFACT_BYTES}-byte limit"
            )
            return
        data = self.rfile.read(length)
        if cache.import_entry(kind, key, data):
            service.metrics.record_artifact_sync("put", "stored")
            self._reply(200, {"stored": True, "kind": kind, "key": key})
        else:
            service.metrics.record_artifact_sync("put", "rejected")
            self._error(
                400, "artifact archive was malformed or unsafe "
                     "(must be a tar of regular entry-relative files "
                     "with a manifest.json)"
            )

    def do_POST(self) -> None:  # noqa: N802
        if [p for p in self.path.split("?")[0].split("/") if p] != ["jobs"]:
            self._error(404, f"no route for POST {self.path}")
            return
        try:
            body = self._read_body()
        except (ValueError, json.JSONDecodeError) as exc:
            self._error(400, f"bad request body: {exc}")
            return
        spec = sweep = None
        try:
            if "sweep" in body:
                sweep = self._parse_sweep(body)
            elif "scenario" in body:
                spec = self.server.registry.resolve(
                    str(body["scenario"]), **self._overrides(body)
                )
            elif "spec" in body:
                spec = RunSpec.from_dict(body["spec"])
            else:
                raise ValueError(
                    "body must carry 'spec' (a RunSpec document), "
                    "'scenario' (+ optional 'overrides'), or 'sweep' "
                    "(a SweepSpec document, or a grid object next to "
                    "'scenario')"
                )
        except (KeyError, ValueError, TypeError) as exc:
            self._error(400, str(exc.args[0] if exc.args else exc))
            return
        try:
            if sweep is not None:
                job_id = self.server.service.submit_sweep(sweep)
            else:
                job_id = self.server.service.submit(spec)
        except ValueError as exc:  # e.g. no capable backend in the grid
            self._error(400, str(exc.args[0] if exc.args else exc))
            return
        except RuntimeError as exc:  # service closed
            self._error(503, str(exc))
            return
        self._reply(202, {"job_id": job_id, **self.server.service.status(job_id)})

    def _overrides(self, body: Dict[str, object]) -> Dict[str, object]:
        overrides = body.get("overrides") or {}
        if not isinstance(overrides, dict):
            raise ValueError("'overrides' must be an object")
        return overrides

    def _parse_sweep(self, body: Dict[str, object]) -> SweepSpec:
        """Build the SweepSpec from a POST body's ``sweep`` member.

        Two shapes: a full SweepSpec document (strict-parsed), or —
        when ``scenario`` rides along — a grid object
        (``scales``/``backends``/``repeats``) swept over the scenario's
        spec as the base.
        """
        sweep_doc = body["sweep"]
        if not isinstance(sweep_doc, dict):
            raise ValueError("'sweep' must be an object")
        if "scenario" not in body:
            for stray in ("overrides", "spec"):
                if stray in body:
                    raise ValueError(
                        f"'{stray}' does not combine with a full "
                        f"SweepSpec document (it would be silently "
                        f"ignored); put the fields in the sweep's "
                        f"'base', or sweep a 'scenario' instead"
                    )
            return SweepSpec.from_dict(sweep_doc)
        if "spec" in body:
            raise ValueError(
                "'spec' does not combine with 'scenario' + 'sweep' (it "
                "would be silently ignored); sweep either a scenario "
                "or a full SweepSpec document with the spec as 'base'"
            )
        unknown = sorted(set(sweep_doc) - _SWEEP_GRID_KEYS)
        if unknown:
            raise ValueError(
                f"unknown sweep grid field(s) {unknown} (with 'scenario' "
                f"the sweep object takes {sorted(_SWEEP_GRID_KEYS)})"
            )
        overrides = self._overrides(body)
        if "repeats" in overrides:
            raise ValueError(
                "with a sweep grid, put 'repeats' inside 'sweep' — the "
                "sweep owns the repeat axis; an override would be "
                "silently discarded"
            )
        # Same rule for the grid axes themselves: every cell replaces
        # them, so an override there could only mislead.  'backend' is
        # legitimate when the grid omits 'backends' (it then becomes
        # the single swept backend).
        if "scale" in overrides:
            raise ValueError(
                "with a sweep grid, 'scale' is swept — put the values "
                "in sweep['scales']; an override would be silently "
                "discarded"
            )
        if "backend" in overrides and "backends" in sweep_doc:
            raise ValueError(
                "'backend' in overrides conflicts with "
                "sweep['backends'] — the grid replaces it per cell"
            )
        resolved = self.server.registry.resolve(
            str(body["scenario"]), **overrides
        )
        # The sweep owns the repeat axis; a scenario's own repeats
        # (e.g. cache-warm's best-of-3) becomes the grid default so
        # its measurement discipline is preserved, not silently reset.
        base = resolved.with_overrides(repeats=1)
        # Each omitted axis defaults to the scenario's own value, so a
        # grid can sweep one axis and inherit the other.
        return SweepSpec(
            base=base,
            scales=tuple(sweep_doc.get("scales", (base.scale,))),
            backends=tuple(sweep_doc.get("backends", (base.backend,))),
            repeats=int(sweep_doc.get("repeats", resolved.repeats)),
        )

    def do_DELETE(self) -> None:  # noqa: N802
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if len(parts) != 2 or parts[0] != "jobs":
            self._error(404, f"no route for DELETE {self.path}")
            return
        try:
            cancelled = self.server.service.cancel(parts[1])
        except UnknownJobError as exc:
            self._error(404, str(exc.args[0] if exc.args else exc))
            return
        self._reply(200 if cancelled else 409, {
            "job_id": parts[1],
            "cancelled": cancelled,
            **self.server.service.status(parts[1]),
        })


def make_server(
    service: BenchmarkService,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    registry: Optional[ScenarioRegistry] = None,
) -> BenchmarkHTTPServer:
    """Bind (but do not start) a server; ``port=0`` picks a free port.

    The caller owns the loop: ``server.serve_forever()`` inline, or in a
    thread for tests (see :func:`serve_in_thread`).
    """
    return BenchmarkHTTPServer((host, port), service, registry)


def serve_in_thread(
    service: BenchmarkService, **kwargs: object
) -> Tuple[BenchmarkHTTPServer, threading.Thread]:
    """Start a server on a daemon thread (test/embedding helper)."""
    server = make_server(service, **kwargs)  # type: ignore[arg-type]
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve", daemon=True
    )
    thread.start()
    return server, thread


def run_server(
    *,
    host: str = "127.0.0.1",
    port: int = 8734,
    workers: int = 2,
    worker_kind: str = "thread",
    cache_dir: Optional[Path] = None,
    store_path: Optional[Path] = None,
    compact: bool = False,
    worker_listen: Optional[Tuple[str, int]] = None,
    heartbeat_timeout: float = 10.0,
) -> int:
    """``repro-pipeline serve`` body: serve until interrupted.

    Prints the bound address (stdout, one line, parse-friendly) so
    scripts using ``--port 0`` can discover the ephemeral port.  With
    ``worker_kind="remote"`` a second line (``workers on HOST:PORT``)
    announces the TCP port ``repro-pipeline worker --connect`` agents
    should dial, and the HTTP address is advertised to them as the
    artifact-sync base.

    With a ``store_path``, startup replays the store (finished jobs
    come back verbatim; interrupted ones re-queue) and ``compact=True``
    compacts it first plus periodically while serving.  On ``^C`` the
    shutdown path terminates ``worker_kind="process"`` children and
    marks their jobs FAILED in the store — never left RUNNING for the
    next replay to resurrect.
    """
    service = BenchmarkService(
        workers=workers,
        worker_kind=worker_kind,
        cache_dir=cache_dir,
        store_path=store_path,
        compact_on_start=compact,
        compact_every=1000 if compact else None,
        worker_listen=worker_listen,
        heartbeat_timeout=heartbeat_timeout,
    )
    server = make_server(service, host=host, port=port)
    bound_host, bound_port = server.server_address[:2]
    print(f"serving on http://{bound_host}:{bound_port}", flush=True)
    worker_bind = service.worker_address
    if worker_bind is not None:
        print(f"workers on {worker_bind[0]}:{worker_bind[1]}", flush=True)
        # Registering agents learn the artifact-sync base in their
        # `registered` reply; only useful when a cache_dir exists, but
        # advertising it unconditionally is harmless (agents without a
        # local cache ignore it).
        service.set_artifact_base(f"http://{bound_host}:{bound_port}")
    # SIGTERM (what `kill`, systemd, and container runtimes send) must
    # take the same graceful path as ^C — otherwise worker processes
    # leak and RUNNING jobs are left in the store for the next replay
    # to resurrect as zombies.  Signal handlers can only be installed
    # from the main thread; an embedder running run_server elsewhere
    # just keeps the process's existing SIGTERM disposition.
    import signal
    import threading as _threading

    def _sigterm(_signum: int, _frame: object) -> None:
        raise KeyboardInterrupt

    previous = None
    in_main_thread = (
        _threading.current_thread() is _threading.main_thread()
    )
    if in_main_thread:
        previous = signal.signal(signal.SIGTERM, _sigterm)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if in_main_thread:
            signal.signal(signal.SIGTERM, previous)
        server.server_close()
        service.close(wait=False)
    return 0
