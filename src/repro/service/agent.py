"""The worker half of the distributed worker plane.

:class:`WorkerAgent` is the body of ``repro worker --connect
HOST:PORT``: a long-lived process (or, in tests, a thread) that dials
the service's :class:`~repro.service.remote.RemoteWorkerPool` listener,
registers, and serves ``run`` frames with exactly the execution body
local workers use (:func:`~repro.service.worker.run_spec_job`) — so a
remote worker's result document is byte-identical to a thread or
process worker's for the same spec.

Around that shared body the agent owns the *distributed* concerns:

* **Heartbeats** — a sender thread beats every ``heartbeat_interval``
  seconds (the interval is assigned by the pool at registration) so
  the pool can tell a slow worker from a dead one.  A worker that
  stops beating past the pool's deadline is lost server-side: its
  socket closes, its job requeues, and any result it later produces
  has no channel to arrive on — the no-double-completion guarantee.
* **Reconnect** — a lost connection (service restart, network blip,
  server-side deadline) drops the session and re-dials with a delay;
  the pool accepts the re-registration as a fresh worker session.
* **Per-host artifact sync** — the agent keeps its *own* cache root
  and, when the pool advertises an ``artifact_base``, pulls warm K0/K1
  entries for each spec before running (``GET /artifacts``) and pushes
  fresh ones after (``PUT /artifacts``); content-addressed keys make
  the transplants exact.  Sync failures degrade to a cold cache.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from pathlib import Path
from typing import Dict, Optional

from repro.core.trace import graft_span
from repro.service.framing import FrameChannel, FrameError
from repro.service.worker import run_spec_job

#: Grafted worker-side span ids (negative: clear of collector ids, and
#: below the service's -1..-9 block).
_SPAN_WORKER_JOB = -20
_SPAN_ARTIFACT_SYNC = -21


class WorkerAgent:
    """One remote worker: connect, register, heartbeat, run jobs.

    Parameters
    ----------
    host / port:
        The service's ``--listen-workers`` address.
    cache_dir:
        This host's artifact-cache root (``None`` disables caching and
        artifact sync for this worker).
    worker_id:
        Stable identity in logs//healthz; defaults to ``<hostname>-<pid>``.
    heartbeat_interval:
        Override the pool-assigned interval (tests use this to simulate
        a worker that is alive but not beating).
    reconnect_delay:
        Seconds between redial attempts after a lost connection.
    max_reconnects:
        Give up after this many consecutive failed/lost connections
        (``None``: keep trying until :meth:`stop`).
    artifact_sync:
        Master switch for the GET/PUT cache sync.
    job_delay:
        Test/chaos hook: sleep this long before executing each job —
        makes "SIGKILL mid-job" and "slow but alive" scenarios
        deterministic.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        cache_dir: Optional[Path] = None,
        worker_id: Optional[str] = None,
        heartbeat_interval: Optional[float] = None,
        reconnect_delay: float = 1.0,
        max_reconnects: Optional[int] = None,
        artifact_sync: bool = True,
        job_delay: float = 0.0,
        quiet: bool = False,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self.heartbeat_override = heartbeat_interval
        self.reconnect_delay = float(reconnect_delay)
        self.max_reconnects = max_reconnects
        self.artifact_sync = bool(artifact_sync)
        self.job_delay = float(job_delay)
        self.quiet = quiet
        self.jobs_completed = 0
        self.jobs_failed = 0
        self._stop = threading.Event()
        self._channel: Optional[FrameChannel] = None
        self._busy = False

    # ------------------------------------------------------------------
    def _log(self, message: str) -> None:
        if not self.quiet:
            print(f"[worker {self.worker_id}] {message}", flush=True)

    def stop(self) -> None:
        """Ask the agent loop to exit (thread-embedded agents/tests)."""
        self._stop.set()
        channel = self._channel
        if channel is not None:
            channel.close()

    # ------------------------------------------------------------------
    def run(self) -> int:
        """Serve until a ``shutdown`` frame, :meth:`stop`, or the
        reconnect budget runs out.  Returns a process exit code."""
        failures = 0
        while not self._stop.is_set():
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=10.0
                )
            except OSError as exc:
                failures += 1
                if (
                    self.max_reconnects is not None
                    and failures > self.max_reconnects
                ):
                    self._log(
                        f"giving up after {failures} failed connections "
                        f"({type(exc).__name__})"
                    )
                    return 1
                self._log(
                    f"connect to {self.host}:{self.port} failed "
                    f"({type(exc).__name__}); retrying in "
                    f"{self.reconnect_delay}s"
                )
                if self._stop.wait(self.reconnect_delay):
                    break
                continue
            sock.settimeout(None)
            outcome = self._session(sock)
            if outcome == "shutdown":
                self._log("shutdown received; exiting")
                return 0
            if self._stop.is_set():
                break
            failures += 1
            if (
                self.max_reconnects is not None
                and failures > self.max_reconnects
            ):
                self._log(f"giving up after {failures} lost connections")
                return 1
            self._log(
                f"connection lost ({outcome}); reconnecting in "
                f"{self.reconnect_delay}s"
            )
            if self._stop.wait(self.reconnect_delay):
                break
        self._log("stopped")
        return 0

    # ------------------------------------------------------------------
    def _session(self, sock: socket.socket) -> str:
        """One connection's lifetime; returns why it ended."""
        channel = FrameChannel(sock)
        self._channel = channel
        session_live = threading.Event()
        session_live.set()
        try:
            channel.send({
                "type": "register",
                "worker_id": self.worker_id,
                "host": socket.gethostname(),
                "pid": os.getpid(),
            })
            while True:
                try:
                    doc = channel.recv()
                except FrameError as exc:
                    return f"torn frame: {exc}"
                except OSError as exc:
                    return f"socket error: {type(exc).__name__}"
                if doc is None:
                    return "closed by service"
                kind = doc.get("type")
                if kind == "registered":
                    self._start_heartbeats(channel, session_live, doc)
                    self._artifact_base = (
                        doc.get("artifact_base")
                        if self.artifact_sync else None
                    )
                    self._log(
                        f"registered as {doc.get('worker_id')} "
                        f"(heartbeat every "
                        f"{self._heartbeat_interval(doc):.2g}s)"
                    )
                elif kind == "run":
                    # Inline on the session thread: one job at a time
                    # per worker (the pool dispatches that way), and
                    # the heartbeat thread keeps liveness flowing while
                    # the job computes.
                    try:
                        self._serve_job(channel, doc)
                    except (OSError, FrameError) as exc:
                        return f"result send failed: {type(exc).__name__}"
                elif kind == "shutdown":
                    return "shutdown"
                # Unknown frames are ignored (forward compatibility).
        except (OSError, FrameError) as exc:
            return f"{type(exc).__name__}: {exc}"
        finally:
            session_live.clear()
            self._channel = None
            channel.close()

    def _heartbeat_interval(self, registered_doc: Dict[str, object]) -> float:
        if self.heartbeat_override is not None:
            return float(self.heartbeat_override)
        interval = registered_doc.get("heartbeat_interval")
        return float(interval) if isinstance(interval, (int, float)) else 2.0

    def _start_heartbeats(
        self,
        channel: FrameChannel,
        session_live: threading.Event,
        registered_doc: Dict[str, object],
    ) -> None:
        interval = self._heartbeat_interval(registered_doc)

        def beat() -> None:
            while session_live.is_set() and not self._stop.is_set():
                time.sleep(interval)
                if not session_live.is_set():
                    return
                try:
                    channel.send({"type": "heartbeat", "busy": self._busy})
                except (OSError, FrameError):
                    return  # session is dying; the recv loop reports it

        threading.Thread(
            target=beat, name="repro-worker-heartbeat", daemon=True
        ).start()

    # ------------------------------------------------------------------
    def _serve_job(
        self, channel: FrameChannel, doc: Dict[str, object]
    ) -> None:
        seq = doc.get("seq")
        job_id = doc.get("job_id")
        spec_doc = doc.get("spec")
        t_received = time.time()
        self._busy = True
        try:
            if self.job_delay:
                time.sleep(self.job_delay)
            payload = self._execute(spec_doc)
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as exc:  # noqa: BLE001 - marshalled to pool
            self.jobs_failed += 1
            reply: Dict[str, object] = {
                "type": "result", "seq": seq, "ok": False,
                "error_type": type(exc).__name__, "error": str(exc),
            }
        else:
            self.jobs_completed += 1
            self._graft_worker_spans(payload, t_received, job_id)
            reply = {
                "type": "result", "seq": seq, "ok": True,
                "payload": payload,
            }
        finally:
            self._busy = False
        channel.send(reply)

    def _execute(self, spec_doc) -> Dict[str, object]:
        """The shared worker body, bracketed by artifact sync."""
        from repro.api.spec import RunSpec

        sync_summary = None
        base = getattr(self, "_artifact_base", None)
        spec: Optional[RunSpec] = None
        if base and self.cache_dir is not None:
            from repro.core.artifacts import ArtifactCache
            from repro.service.artifact_sync import sync_before_run

            try:
                spec = RunSpec.from_dict(spec_doc)
                t_sync = time.time()
                sync_summary = sync_before_run(
                    ArtifactCache(self.cache_dir), base, spec
                )
                sync_summary["seconds"] = time.time() - t_sync
            except Exception:
                sync_summary = None  # sync must never fail the job
        payload = run_spec_job(
            spec_doc,
            str(self.cache_dir) if self.cache_dir is not None else None,
        )
        if sync_summary is not None and spec is not None:
            from repro.core.artifacts import ArtifactCache
            from repro.service.artifact_sync import sync_after_run

            try:
                pushed = sync_after_run(
                    ArtifactCache(self.cache_dir), base, spec,
                    sync_summary,
                )
            except Exception:
                pushed = []
            payload["artifact_sync"] = {
                "fetched": sync_summary.get("fetched", []),
                "local": sync_summary.get("local", []),
                "pushed": pushed,
                "seconds": sync_summary.get("seconds", 0.0),
            }
        return payload

    def _graft_worker_spans(
        self,
        payload: Dict[str, object],
        t_received: float,
        job_id: Optional[str],
    ) -> None:
        """Worker-side intervals onto the run trace (when one exists)."""
        trace_doc = payload.get("trace")
        if not isinstance(trace_doc, dict):
            return
        proc = f"worker:{self.worker_id}"
        graft_span(
            trace_doc, name="worker:job", span_id=_SPAN_WORKER_JOB,
            begin_epoch=t_received, end_epoch=time.time(),
            cat="worker", proc=proc, thread="agent",
            args={"job_id": job_id, "worker_id": self.worker_id},
        )
        sync = payload.get("artifact_sync")
        if isinstance(sync, dict) and sync.get("seconds"):
            graft_span(
                trace_doc, name="worker:artifact-sync",
                span_id=_SPAN_ARTIFACT_SYNC, parent_id=_SPAN_WORKER_JOB,
                begin_epoch=t_received,
                end_epoch=t_received + float(sync["seconds"]),
                cat="worker", proc=proc, thread="agent",
                args={
                    "fetched": len(sync.get("fetched", [])),
                    "pushed": len(sync.get("pushed", [])),
                },
            )


def run_worker(
    connect: str,
    *,
    cache_dir: Optional[Path] = None,
    worker_id: Optional[str] = None,
    heartbeat_interval: Optional[float] = None,
    reconnect_delay: float = 1.0,
    max_reconnects: Optional[int] = None,
    artifact_sync: bool = True,
    job_delay: float = 0.0,
) -> int:
    """``repro worker`` body: parse HOST:PORT, serve until shutdown.

    SIGTERM takes the same clean-exit path as ``^C`` so container
    runtimes and test harnesses can stop agents without tripping the
    reconnect machinery.
    """
    import signal

    host, _, port_text = connect.rpartition(":")
    if not host:
        host, port_text = "127.0.0.1", connect
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"--connect takes HOST:PORT, got {connect!r}"
        ) from None
    agent = WorkerAgent(
        host, port,
        cache_dir=cache_dir,
        worker_id=worker_id,
        heartbeat_interval=heartbeat_interval,
        reconnect_delay=reconnect_delay,
        max_reconnects=max_reconnects,
        artifact_sync=artifact_sync,
        job_delay=job_delay,
    )

    def _sigterm(_signum: int, _frame: object) -> None:
        agent.stop()

    in_main_thread = (
        threading.current_thread() is threading.main_thread()
    )
    previous = None
    if in_main_thread:
        previous = signal.signal(signal.SIGTERM, _sigterm)
    try:
        return agent.run()
    except KeyboardInterrupt:
        agent.stop()
        return 0
    finally:
        if in_main_thread:
            signal.signal(signal.SIGTERM, previous)
