"""Worker-side job execution: spec documents in, result documents out.

The worker pool ships work to workers as JSON-safe :class:`RunSpec`
documents (they are environment-free and hashable) and receives back
the same records/rank-digest documents the JSONL job store persists —
never live Python objects.  That one discipline is what makes thread
and process workers interchangeable: :func:`run_spec_job` is the single
execution body for both kinds, so a ``worker_kind="process"`` service
produces byte-for-byte the result documents a thread-pooled one does.

:func:`worker_main` is the process-worker entry point: a loop over a
``multiprocessing`` pipe speaking ``("run", spec_doc, cache_dir)`` /
``("shutdown",)`` requests and ``("ok", payload)`` /
``("error", type_name, message)`` replies.  It is a module-level
function so the pool can use the ``spawn`` start method (safe to mix
with the service's HTTP threads, unlike ``fork``).
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Dict, Optional

from repro.api.runner import RunOutcome, execute_spec
from repro.api.spec import RunSpec


def outcome_payload(outcome: RunOutcome) -> Dict[str, object]:
    """JSON-safe result document for one executed spec.

    Carries the per-kernel records, the bit-exact rank digest
    (:func:`repro.api.runner.rank_sha256`), per-repeat wall times, and
    — when the spec asked for it — the eigenvector validation verdicts.
    This is exactly the payload the job store's ``succeeded`` event
    persists, which is what lets replay restore a finished job without
    re-running it.
    """
    from repro.core.results import _json_safe

    doc: Dict[str, object] = {
        "records": [asdict(r) for r in outcome.records],
        "rank_sha256": outcome.rank_digest,
    }
    rank = outcome.rank
    if rank is not None:
        doc["rank_summary"] = {
            "size": int(rank.size),
            "sum": float(rank.sum()),
            "argmax": int(rank.argmax()) if rank.size else -1,
        }
    doc["wall_seconds"] = [r.wall_seconds for r in outcome.results]
    validations = [
        _json_safe(r.validation)
        for r in outcome.results
        if r.validation is not None
    ]
    if validations:
        doc["validation"] = validations
    last = outcome.result
    if last.trace is not None:
        doc["trace"] = _json_safe(last.trace)
    doc["observability"] = _observability_summary(outcome)
    return doc


def _observability_summary(outcome: RunOutcome) -> Dict[str, object]:
    """Counters the service's ``/metrics`` endpoint accumulates per job:
    artifact-cache behaviour and shared-memory savings, summed over all
    repeats (per-kernel seconds ride in ``records`` already)."""
    cache_hits = 0
    cache_misses = 0
    shm_bytes_saved = 0
    for result in outcome.results:
        for kernel in result.kernels:
            probe = kernel.details.get("artifact_cache")
            if probe == "hit":
                cache_hits += 1
            elif probe == "miss":
                cache_misses += 1
            shm_bytes_saved += int(kernel.details.get("shm_bytes_saved", 0))
    return {
        "cache_hits": cache_hits,
        "cache_misses": cache_misses,
        "shm_bytes_saved": shm_bytes_saved,
    }


def run_spec_job(
    spec_doc: Dict[str, object], cache_dir: Optional[str]
) -> Dict[str, object]:
    """Execute one spec document and return its result document.

    The shared worker body: thread workers call it in-process (and keep
    the live :class:`RunOutcome` alongside), process workers call it in
    the child and ship only the returned document back over the pipe.
    """
    payload, _outcome = run_spec_job_with_outcome(spec_doc, cache_dir)
    return payload


def run_spec_job_with_outcome(
    spec_doc: Dict[str, object], cache_dir: Optional[str]
):
    """As :func:`run_spec_job`, also returning the live outcome."""
    from pathlib import Path

    spec = RunSpec.from_dict(spec_doc)
    outcome = execute_spec(
        spec, cache_dir=Path(cache_dir) if cache_dir else None
    )
    return outcome_payload(outcome), outcome


def worker_main(conn) -> None:
    """Process-worker loop: serve run requests until shutdown or EOF.

    Exceptions never cross the pipe as pickles — only their type name
    and message — so the parent cannot be poisoned by an unpicklable
    error, and the service formats failures identically for thread and
    process workers.

    The worker ignores SIGINT: a terminal ``^C`` signals the whole
    foreground process group, and the *service* owns the shutdown
    protocol (terminate → EOF → ``WorkerCrashError``, which replay
    treats as retryable).  A KeyboardInterrupt that slips through
    anyway (or SystemExit) kills the worker rather than being
    marshalled as a job failure — a job interrupted by shutdown must
    never be durably FAILED as if its own code raised.
    """
    import signal

    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break  # parent died or closed the pipe
        if not message or message[0] == "shutdown":
            break
        _, spec_doc, cache_dir = message
        try:
            payload = run_spec_job(spec_doc, cache_dir)
        except (KeyboardInterrupt, SystemExit):
            raise  # die; the parent sees EOF and retries the job
        except BaseException as exc:  # noqa: BLE001 - marshalled to parent
            try:
                conn.send(("error", type(exc).__name__, str(exc)))
            except (BrokenPipeError, OSError):
                break
        else:
            try:
                conn.send(("ok", payload))
            except (BrokenPipeError, OSError):
                break
    try:
        conn.close()
    except OSError:
        pass
