"""Worker pools: where benchmark jobs actually execute.

The :class:`~repro.service.service.BenchmarkService` schedules jobs on
a small thread pool; each scheduler thread hands the job's spec
*document* to a worker pool and blocks for the result *document*
(see :mod:`repro.service.worker` for the document shapes).  Two pools
implement that contract:

* :class:`ThreadWorkerPool` — runs the job on the scheduler thread
  itself (the historical behaviour; kernels are numpy/file-I/O bound
  and release the GIL).  It additionally returns the live
  :class:`~repro.api.runner.RunOutcome` so in-process callers keep
  rank-vector access.
* :class:`ProcessWorkerPool` — a fixed set of long-lived worker
  *processes* (``forkserver`` start method where available, else
  ``spawn`` — either is safe beside the service's HTTP threads; plain
  ``fork`` never is), each driven over a pipe.  Workers are spawned lazily on
  first use and reused across jobs; a worker that dies mid-job is
  replaced and the job fails with :class:`WorkerCrashError`.
  :meth:`ProcessWorkerPool.terminate` kills every child immediately —
  the ``^C`` path, so in-flight jobs fail fast instead of outliving the
  service as zombies.

A third pool, :class:`~repro.service.remote.RemoteWorkerPool`
(``worker_kind="remote"``), lives in :mod:`repro.service.remote`: it
speaks the same spec-document-in / result-document-out contract over
TCP to ``repro worker --connect`` agents on other hosts, with
heartbeat-based liveness in place of pipe EOF.

Specs cross the process boundary as JSON documents and results come
back as the record/rank-digest documents the job store persists, so a
process-pooled service is bit-identical (rank digests, records) to a
thread-pooled one — asserted by ``tests/unit/test_worker_pool.py``
(and a remote-pooled one by ``tests/unit/test_remote_pool.py``).
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
from typing import Dict, List, Optional, Tuple

from repro.api.runner import RunOutcome
from repro.service.worker import run_spec_job_with_outcome, worker_main

#: Accepted ``worker_kind`` values for the service/CLI.  ``"remote"``
#: dispatches over TCP to ``repro worker --connect`` agents (see
#: :mod:`repro.service.remote`).
WORKER_KINDS = ("thread", "process", "remote")


class WorkerCrashError(RuntimeError):
    """A worker process died (or was terminated) mid-job."""


class RemoteJobError(RuntimeError):
    """The job raised inside a worker process.

    Carries the original exception's type name so the service can
    format the failure exactly as a thread worker's would be
    (``"{type}: {message}"``).
    """

    def __init__(self, error_type: str, message: str) -> None:
        super().__init__(message)
        self.error_type = error_type


class ThreadWorkerPool:
    """Run jobs on the calling (scheduler) thread."""

    kind = "thread"
    transport = "inline"

    def __init__(self, workers: int) -> None:
        del workers  # concurrency is the scheduler pool's; nothing to own

    def run_spec(
        self,
        spec_doc: Dict[str, object],
        cache_dir: Optional[str],
        *,
        job_id: Optional[str] = None,
    ) -> Tuple[Dict[str, object], Optional[RunOutcome]]:
        """Execute in-process; payload plus the live outcome."""
        del job_id  # provenance labelling is the remote pool's concern
        return run_spec_job_with_outcome(spec_doc, cache_dir)

    def stats(self) -> Dict[str, int]:
        """Worker lifecycle counters; threads never spawn or crash."""
        return {"workers_spawned": 0, "workers_crashed": 0}

    def workers_view(self) -> List[Dict[str, object]]:
        """No pool-owned workers; the service reports its scheduler
        threads' in-flight jobs instead."""
        return []

    def shutdown(self, wait: bool = True) -> None:
        """Nothing to stop — job threads belong to the scheduler."""

    def terminate(self) -> None:
        """Threads cannot be killed; in-flight jobs run to completion."""


class _WorkerHandle:
    """One long-lived worker process plus the parent end of its pipe."""

    def __init__(self, ctx, index: int) -> None:
        self.conn, child_conn = ctx.Pipe()
        # NOT a daemon: a spec selecting parallel_executor="mp" spawns
        # rank processes *inside* the worker, which multiprocessing
        # forbids for daemonic processes — daemon=True would break the
        # thread/process parity contract for those specs.  Orphan
        # safety comes from the pipe instead: when the service process
        # dies, the worker's recv() sees EOF and the loop exits.
        self.process = ctx.Process(
            target=worker_main,
            args=(child_conn,),
            name=f"repro-worker-{index}",
            daemon=False,
        )
        self.process.start()
        child_conn.close()  # the parent keeps only its own end

    def run(
        self, spec_doc: Dict[str, object], cache_dir: Optional[str]
    ) -> Dict[str, object]:
        try:
            self.conn.send(("run", spec_doc, cache_dir))
            reply = self.conn.recv()
        except (EOFError, BrokenPipeError, OSError) as exc:
            raise WorkerCrashError(
                f"worker {self.process.name} (pid {self.process.pid}) died "
                f"mid-job: {type(exc).__name__}"
            ) from None
        if reply[0] == "ok":
            return reply[1]
        _tag, error_type, message = reply
        raise RemoteJobError(error_type, message)

    def stop(self, timeout: float = 5.0) -> None:
        """Polite shutdown; escalates to terminate if the worker hangs."""
        try:
            self.conn.send(("shutdown",))
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=timeout)
        try:
            self.conn.close()
        except OSError:
            pass

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.terminate()


class ProcessWorkerPool:
    """A fixed-size pool of reusable worker processes.

    Parameters
    ----------
    workers:
        Worker-process count (one in-flight job per worker).
    start_method:
        ``multiprocessing`` start method.  Default: ``forkserver``
        where available (POSIX), else ``spawn`` — never plain ``fork``:
        the service runs HTTP and scheduler threads, and forking a
        threaded process is undefined behaviour waiting to happen.
        Both non-fork methods re-import the caller's ``__main__`` in
        the worker, so embedding scripts need the standard
        ``if __name__ == "__main__":`` guard (and stdin/REPL-driven
        code cannot host a process pool — the CLI entry points are
        guarded).  Workers are long-lived either way, so interpreter
        start-up is paid once per worker, not per job.
    """

    kind = "process"
    transport = "pipe"

    def __init__(
        self, workers: int, *, start_method: Optional[str] = None
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = (
                "forkserver" if "forkserver" in available else "spawn"
            )
        self._ctx = multiprocessing.get_context(start_method)
        self._lock = threading.Lock()
        self._handles: list = []
        self._next_index = 0
        self._terminated = False
        # Lifecycle counters for the service's /metrics endpoint.
        self._spawned = 0
        self._crashed = 0
        # Tokens, not processes: a None token means "spawn lazily on
        # first use", so a thread-kind-sized test suite never pays for
        # interpreters it does not run jobs on.
        self._idle: "queue.Queue[Optional[_WorkerHandle]]" = queue.Queue()
        for _ in range(workers):
            self._idle.put(None)

    # ------------------------------------------------------------------
    def _checkout(self) -> _WorkerHandle:
        handle = self._idle.get()
        with self._lock:
            if self._terminated:
                # Put the token back for symmetry and refuse the job.
                self._idle.put(handle)
                raise WorkerCrashError("worker pool is terminated")
            if handle is not None and handle.process.is_alive():
                return handle
            if handle is not None:  # died unnoticed; forget the corpse
                try:
                    self._handles.remove(handle)
                except ValueError:
                    pass
            index = self._next_index
            self._next_index += 1
        # Spawn outside the lock: interpreter start-up takes hundreds
        # of milliseconds, and holding the lock would serialize
        # first-use spawns and block terminate() for the duration.
        try:
            fresh = _WorkerHandle(self._ctx, index)
        except Exception as exc:
            # Spawning can fail when the multiprocessing machinery
            # itself is dying (e.g. the forkserver caught the
            # terminal's ^C).  That is a worker-infrastructure death,
            # not a job failure — it must be retryable on the next
            # start.
            self._idle.put(None)
            raise WorkerCrashError(
                f"could not start a worker process: "
                f"{type(exc).__name__}: {exc}"
            ) from None
        with self._lock:
            if self._terminated:  # terminate() raced the spawn
                fresh.kill()
                self._idle.put(None)
                raise WorkerCrashError("worker pool is terminated")
            self._handles.append(fresh)
            self._spawned += 1
        return fresh

    def _checkin(self, handle: _WorkerHandle, *, dead: bool = False) -> None:
        with self._lock:
            if dead:
                try:
                    self._handles.remove(handle)
                except ValueError:
                    pass
                handle.kill()
                handle = None  # respawn lazily next checkout
                self._crashed += 1
        self._idle.put(handle)

    def stats(self) -> Dict[str, int]:
        """Worker lifecycle counters (spawns include crash respawns)."""
        with self._lock:
            return {
                "workers_spawned": self._spawned,
                "workers_crashed": self._crashed,
            }

    def workers_view(self) -> List[Dict[str, object]]:
        """No per-worker health rows: pipe workers have no heartbeat
        (EOF is their only liveness signal), so the service's scheduler
        view covers them."""
        return []

    # ------------------------------------------------------------------
    def run_spec(
        self,
        spec_doc: Dict[str, object],
        cache_dir: Optional[str],
        *,
        job_id: Optional[str] = None,
    ) -> Tuple[Dict[str, object], Optional[RunOutcome]]:
        """Ship one spec to a worker; payload only (the rank vector
        stays in the worker — its digest rides in the payload)."""
        del job_id  # provenance labelling is the remote pool's concern
        handle = self._checkout()
        try:
            payload = handle.run(spec_doc, cache_dir)
        except RemoteJobError:
            self._checkin(handle)
            raise
        except BaseException:
            # WorkerCrashError — or anything unexpected (a malformed
            # reply, an unpickling failure): the worker's state is
            # unknown, so discard it.  Either way the slot token MUST
            # return to the idle queue, or the pool shrinks by one
            # worker forever and eventually deadlocks checkout.
            self._checkin(handle, dead=True)
            raise
        self._checkin(handle)
        return payload, None

    def shutdown(self, wait: bool = True) -> None:
        """Stop idle workers politely; ``wait=False`` escalates."""
        with self._lock:
            self._terminated = True
            handles = list(self._handles)
            self._handles.clear()
        for handle in handles:
            if wait:
                handle.stop()
            else:
                handle.kill()

    def terminate(self) -> None:
        """Kill every worker process immediately (the ``^C`` path).

        Scheduler threads blocked in :meth:`run_spec` wake with
        :class:`WorkerCrashError` and the service marks their jobs
        FAILED — never left RUNNING for a replay to resurrect.
        """
        with self._lock:
            self._terminated = True
            handles = list(self._handles)
        for handle in handles:
            handle.kill()


def make_worker_pool(kind: str, workers: int, **remote_options):
    """Build the pool for a ``worker_kind`` value (with a clear error).

    ``remote_options`` (``host``/``port``/``heartbeat_timeout``/
    ``heartbeat_interval``/``register_timeout``/``artifact_base``) are
    forwarded to :class:`~repro.service.remote.RemoteWorkerPool` and
    refused for the local kinds, where they could only be silently
    ignored configuration.
    """
    if kind == "remote":
        from repro.service.remote import RemoteWorkerPool

        return RemoteWorkerPool(workers, **remote_options)
    if remote_options:
        raise ValueError(
            f"options {sorted(remote_options)} apply only to "
            f"worker_kind='remote', not {kind!r}"
        )
    if kind == "thread":
        return ThreadWorkerPool(workers)
    if kind == "process":
        return ProcessWorkerPool(workers)
    raise ValueError(
        f"worker_kind must be one of {WORKER_KINDS}, got {kind!r}"
    )
